#!/usr/bin/env python3
"""Bench trajectory regression gate.

Compares two `gee-bench-v1` reports (old, new) and fails — exit 1 —
when any request type's p99 latency regressed by more than the allowed
ratio (default 1.25, i.e. >25% slower), or when a gated type reports a
nonzero `error_rate` in the NEW run (latency percentiles over errored
requests are meaningless, and a server that starts refusing work looks
*faster*). The BENCH_*.json files checked into the repo root form a
trajectory, one per PR; CI runs this gate on the two newest so a PR
that lands a tail-latency regression fails loudly instead of silently
bending the curve.

Usage:
    bench_gate.py OLD.json NEW.json [--max-ratio 1.25] [--min-count 50]
    bench_gate.py --dir REPO_ROOT   [--max-ratio 1.25] [--min-count 50]

With --dir the two highest-numbered BENCH_<N>.json files are compared
(N-1 as old, N as new); fewer than two trajectory points is a pass,
not an error, so the gate can be wired in before the history exists.

Types with fewer than --min-count samples on either side are skipped:
a p99 estimated from a handful of requests (e.g. the 0.5 Hz `server`
metrics-poll samples) is noise, and gating on noise trains people to
ignore the gate.
"""

import argparse
import json
import re
import sys
from pathlib import Path


def load(path):
    with open(path) as f:
        report = json.load(f)
    schema = report.get("schema")
    if schema != "gee-bench-v1":
        sys.exit(f"bench_gate: {path}: unsupported schema {schema!r}")
    return report


def trajectory_pair(root):
    """The two highest-N BENCH_<N>.json files under root, oldest first."""
    points = []
    for p in Path(root).glob("BENCH_*.json"):
        m = re.fullmatch(r"BENCH_(\d+)\.json", p.name)
        if m:
            points.append((int(m.group(1)), p))
    points.sort()
    return [p for _, p in points[-2:]]


def gate(old_path, new_path, max_ratio, min_count):
    old, new = load(old_path), load(new_path)
    old_types, new_types = old["per_type"], new["per_type"]
    failures, compared = [], 0
    for kind in sorted(set(old_types) & set(new_types)):
        o, n = old_types[kind], new_types[kind]
        if min(o["count"], n["count"]) < min_count:
            print(
                f"  {kind:<12} skipped (counts {o['count']}/{n['count']}"
                f" below --min-count {min_count})"
            )
            continue
        compared += 1
        # A type that errors in the new run fails outright: its latency
        # numbers only describe the requests that still succeeded.
        error_rate = n.get("error_rate", 0.0)
        if error_rate > 0:
            print(
                f"  {kind:<12} error_rate {error_rate:.4f}"
                f" ({n['count']} samples)  FAIL"
            )
            failures.append((kind, f"error_rate {error_rate:.4f}"))
            continue
        ratio = n["p99_us"] / o["p99_us"] if o["p99_us"] > 0 else float("inf")
        verdict = "FAIL" if ratio > max_ratio else "ok"
        print(
            f"  {kind:<12} p99 {o['p99_us']:>10.1f}us -> {n['p99_us']:>10.1f}us"
            f"  ({ratio:.2f}x)  {verdict}"
        )
        if ratio > max_ratio:
            failures.append((kind, f"p99 {ratio:.2f}x"))
    if compared == 0:
        sys.exit("bench_gate: no request type had enough samples to compare")
    if failures:
        worst = ", ".join(f"{k} {why}" for k, why in failures)
        sys.exit(
            f"bench_gate: regression in {old_path} -> {new_path}"
            f" (p99 limit {max_ratio:.2f}x, error_rate limit 0): {worst}"
        )
    print(f"bench_gate: ok ({compared} type(s) within {max_ratio:.2f}x)")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("reports", nargs="*", help="OLD.json NEW.json")
    ap.add_argument("--dir", help="compare the two newest BENCH_<N>.json here")
    ap.add_argument("--max-ratio", type=float, default=1.25)
    ap.add_argument("--min-count", type=int, default=50)
    args = ap.parse_args()

    if args.dir:
        if args.reports:
            ap.error("--dir and explicit report paths are mutually exclusive")
        pair = trajectory_pair(args.dir)
        if len(pair) < 2:
            print(f"bench_gate: <2 trajectory points in {args.dir}; nothing to gate")
            return
        old_path, new_path = pair
    elif len(args.reports) == 2:
        old_path, new_path = args.reports
    else:
        ap.error("pass OLD.json NEW.json, or --dir REPO_ROOT")

    print(f"bench_gate: {old_path} -> {new_path}")
    gate(old_path, new_path, args.max_ratio, args.min_count)


if __name__ == "__main__":
    main()
