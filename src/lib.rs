//! # gee-repro — Edge-Parallel Graph Encoder Embedding in Rust
//!
//! Facade crate for the full reproduction of *"Edge-Parallel Graph Encoder
//! Embedding"* (Lubonja, Shen, Priebe, Burns — 2024, arXiv:2402.04403).
//! Re-exports every workspace crate under one roof and hosts the runnable
//! examples.
//!
//! ## Quick start
//!
//! ```
//! use gee_repro::prelude::*;
//!
//! // A small random graph with 10% random labels, K = 5.
//! let el = gee_gen::erdos_renyi_gnm(1_000, 8_000, 42);
//! let labels = Labels::from_options_with_k(
//!     &gee_gen::random_labels(1_000, LabelSpec { num_classes: 5, labeled_fraction: 0.1 }, 7),
//!     5,
//! );
//! // The paper's parallel embedding:
//! let g = CsrGraph::from_edge_list(&el);
//! let z = gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic);
//! assert_eq!(z.num_vertices(), 1_000);
//! assert_eq!(z.dim(), 5);
//! ```
//!
//! ## Serving
//!
//! The [`serve`] subsystem (`gee-serve`) turns the pipeline into a
//! long-lived, queryable service: a [`serve::Registry`] owns named graphs
//! with epoch-versioned embedding snapshots, a [`serve::ShardLayout`]
//! partitions vertices so recompute and kNN scans run shard-parallel, and
//! a [`serve::Engine`] answers typed requests (`Classify`, `Similar`,
//! `EmbedRow`, `ApplyUpdates`, `Stats`) — coalescing batches of reads
//! against one consistent snapshot while writes stream through
//! [`DynamicGee`](gee_core::DynamicGee) and publish new epochs. See
//! `examples/serving_pipeline.rs` for the end-to-end flow and the
//! `serve-throughput` bench binary for queries/sec vs shard count.
//!
//! ### Copy-on-write epochs, pinning, and back-pressure
//!
//! A [`serve::Snapshot`] is a set of per-shard [`serve::ShardBlock`]s
//! published **copy-on-write**: an update batch re-materializes only the
//! shards it dirtied (edge ops → their endpoints' shards; a label move →
//! every shard's rows but one shard's labels, because class counts
//! rescale whole columns) and structurally shares the rest with the
//! parent epoch. Two policies on [`serve::RegistryConfig`] govern the
//! epoch lifecycle:
//!
//! * [`serve::HistoryPolicy`] keeps the `N` newest epochs in a ring, and
//!   every read request takes an optional `at_epoch` pin (or the `*_at`
//!   methods on `Engine`/`Client`): a pinned read answers against
//!   exactly that retained epoch — time-travel, byte-stable for as long
//!   as the epoch is retained — and a pin outside the ring fails typed
//!   as [`serve::ServeError::EpochEvicted`] (code 13) naming the
//!   retained range. CoW sharing makes retention cheap: consecutive
//!   epochs share every untouched block.
//! * [`serve::BackpressurePolicy`] bounds update batches in flight per
//!   graph: writers beyond the bound are rejected before taking any
//!   lock with [`serve::ServeError::Overloaded`] (code 14) — guaranteed
//!   unapplied and unlogged, so a retry is always safe. Reads are never
//!   throttled; `Registry::hold_write_slot` doubles as a write fence.
//!
//! The concurrency stress suite (`crates/serve/tests/concurrency.rs`)
//! proves snapshots stay internally consistent, reader-observed epochs
//! are monotone, and every published epoch equals a sequential replay;
//! the CoW property suite (`crates/serve/tests/cow_property.rs`) proves
//! CoW publication element-wise equal to from-scratch rebuilds with
//! exactly the untouched blocks shared.
//!
//! ### Approximate search (IVF)
//!
//! Past a few hundred thousand vertices the exact `Similar`/`Classify`
//! scans stop holding up, so the engine can answer from per-shard
//! **IVF indexes** ([`serve::IvfIndex`], [`serve::SearchPolicy`]): each
//! shard block lazily builds and caches a k-means coarse quantizer over
//! its own rows, and a query ranks every shard's centroids globally and
//! scans only the `nprobe` nearest inverted lists. CoW publication means
//! an update batch re-indexes only the shards it dirtied — clean shards
//! share the parent epoch's cached index by pointer — and the build is
//! deterministic in block content, so crash recovery reproduces the same
//! index and the same answers. Approximation stays honest: recall is
//! continuously measured against the exact scan as an oracle
//! (`crates/serve/tests/ann_recall.rs`, plus recall columns in the
//! `serve_throughput` bench — at 100k vertices × 8 shards, ANN `Similar`
//! runs ~15x faster at recall ≈ 0.997), small shards and oversized
//! `top`/`k` fall back to the exact scan automatically, and
//! [`serve::SearchPolicy::Exact`] per request (`gee query --exact`) is
//! an escape hatch no server default can override. On the command line:
//! `gee serve --index ivf --nprobe N` and `gee query --nprobe N |
//! --exact true`.
//!
//! ### Wire protocol (v5)
//!
//! The serve types double as a versioned network contract
//! ([`serve::wire`]): frames are compact JSON (serde's externally-tagged
//! enums, exact 64-bit integers), length-prefixed with a big-endian `u32`
//! on TCP, and exchanged over any [`serve::Transport`] — loopback-free
//! in-process [`serve::duplex`] or [`serve::TcpTransport`]. A connection
//! opens with a `Hello` handshake that negotiates the protocol version
//! (currently [`serve::PROTOCOL_VERSION`] = 5; v1–v4 are still
//! spoken — the v2 `at_epoch` pin, v3 `search` override, v4 `Metrics`
//! request, and v5 `replication` report block are additive extensions
//! whose absence encodes byte-identically to older frames), then carries pipelined
//! request batches; failures travel as typed [`serve::ServeError`] values
//! with stable numeric [`serve::ErrorCode`]s. A [`serve::Server`] feeds
//! decoded batches to `Engine::execute_batch`, and the blocking
//! [`serve::Client`] mirrors `Engine`'s methods one-for-one, so remote
//! answers are provably `==` in-process answers —
//! `examples/network_serving.rs` demonstrates exactly that, and the
//! `wire_overhead` bench binary measures in-process vs duplex vs
//! loopback-TCP throughput. On the command line: `gee serve --graph G
//! --listen ADDR` and `gee query --connect ADDR ...`.
//!
//! ### Durable serving
//!
//! With [`serve::Durability::Wal`] a registry survives process death:
//! every registration and update batch is committed to an append-only,
//! CRC-checksummed write-ahead log ([`serve::wal`]) before in-memory
//! state changes, and checkpoints ([`serve::checkpoint`]) of the full
//! writer state periodically compact the log. Recovery replays
//! checkpoint + WAL tail to answers **bit-identical** to the
//! uninterrupted process; corruption surfaces as typed
//! [`serve::ServeError::Corrupt`], never a panic.
//! `examples/durable_serving.rs` crashes and recovers a serving
//! pipeline end-to-end; the `durability_overhead` bench binary measures
//! the fsync cost and the recovery speedup a checkpoint buys. On the
//! command line: `gee serve --data-dir DIR ...` and `gee recover
//! --data-dir DIR`.
//!
//! ### Replication
//!
//! The WAL doubles as a replication stream: a leader attaches a
//! [`serve::ReplicationListener`] that ships committed log records —
//! raw, CRC-framed, in commit order — to any number of followers, and
//! a [`serve::Follower`] pulls that stream into its **own** durable
//! log and replays it through the same dirty-tracking apply path
//! recovery uses, so every epoch a follower publishes is
//! **fingerprint-identical** to the leader's. A follower that starts
//! empty (or falls behind the leader's compaction horizon) bootstraps
//! from a checkpoint mid-stream; one that crashes resumes from its own
//! durable high-water LSN. While trailing, a follower serves the full
//! read surface — `Classify`/`Similar`/`EmbedRow`/`Stats`/`Metrics`,
//! `at_epoch` pins, ANN policies — and rejects writes with
//! [`serve::ServeError::ReadOnlyReplica`] (code 15) naming the leader.
//! Lag (epochs and LSNs) and ship counters surface through the v5
//! `replication` block on `Stats`/`Metrics`
//! ([`serve::ReplicationReport`]). Corruption on the stream — torn
//! frames, bit flips, LSN discontinuities — surfaces typed as
//! `Corrupt` and is never applied
//! (`crates/serve/tests/replication_frames.rs`); convergence under
//! writer churn, crash-resume, and leader restart are pinned by
//! `crates/serve/tests/replication.rs`. On the command line:
//! `gee serve --data-dir DIR --replicate ADDR` on the leader and
//! `gee serve --follow ADDR --data-dir DIR2 --listen ADDR2` on the
//! replica; `gee recover` prints the WAL high-water and latest
//! checkpoint LSNs (and stored leader epoch) of any durable directory.
//!
//! ### Promotion & fencing
//!
//! When a leader dies, any caught-up follower can take over:
//! [`serve::Follower::promote`] stops the pull loop at the durable
//! high-water LSN, mints the next **leader epoch** — a monotonically
//! increasing fencing token, durably persisted (checkpoint header plus
//! a dedicated `leader-epoch` file) and recovered on open — flips the
//! registry out of read-only replica mode, and optionally warms a
//! fresh [`serve::ReplicationListener`] so surviving followers can
//! re-point. The epoch rides the v2 replication-stream handshake in
//! both directions: a follower refuses to apply anything from a leader
//! older than the highest epoch it has durably seen, and a leader
//! greeted by a follower that has seen a *newer* epoch fences itself —
//! writes fail typed with [`serve::ServeError::StaleLeader`] (code 16)
//! and the `fenced` flag surfaces in [`serve::ReplicationReport`].
//! Split-brain is thereby impossible: at most one epoch's leader can
//! ever take writes that followers accept, pinned end to end by
//! `crates/serve/tests/replication.rs`. On the command line: `gee
//! promote --data-dir DIR [--replicate ADDR]` promotes an offline
//! directory, and `gee serve --follow ADDR --promote-file PATH`
//! promotes a live replica in place when `PATH` appears.
//!
//! ### Benchmarking & observability
//!
//! Two halves close the loop between "the server runs" and "the server
//! is fast, and we can prove it":
//!
//! * **Server metrics** — the protocol-v4 `Metrics` request
//!   ([`serve::MetricsReport`], `Engine::metrics` / `Client::metrics`,
//!   `gee query --metrics true`) returns the counters every serving
//!   registry maintains atomically on the hot path: per-request-type
//!   counts and log2-bucketed latency histograms
//!   ([`serve::HistogramReport`]), batch-coalesce sizes, `Overloaded`
//!   rejections, epoch-history depth, WAL fsyncs, and IVF build/hit
//!   counters. `Metrics` and `Stats` describe the same snapshot and the
//!   same counters — `crates/serve/tests/metrics_consistency.rs` pins
//!   that they never disagree, even under writer churn.
//! * **Workload simulation** — the `gee-loadgen` crate ([`loadgen`])
//!   drives a live server over the ordinary wire protocol: `gee bench
//!   --connect ADDR --mix read=90,write=5,timetravel=3,ann=2 --clients N`
//!   runs N closed-loop (or `--qps`-paced open-loop) client threads with
//!   a deterministic seeded request mix, interleaves server-side metrics
//!   samples into the per-request CSV, and streams the result through
//!   single-pass analytics ([`loadgen::Analysis`], P² quantile
//!   estimation — no reservoir) into a `BENCH_*.json` report
//!   (`gee bench-report` re-runs the same analytics over a saved CSV).
//!   The bench binaries (`serve_throughput`, `wire_overhead`) emit
//!   through the same `gee-bench-v1` schema via `--json PATH`, so every
//!   number lands in one comparable trajectory format. Determinism is
//!   pinned by `crates/loadgen/tests/deterministic.rs`: a seeded run's
//!   request-type sequence is exactly replayable.
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! binaries that regenerate each table and figure of the paper.

pub use gee_algos as algos;
pub use gee_community as community;
pub use gee_core as core;
pub use gee_eval as eval;
pub use gee_gen as gen;
pub use gee_graph as graph;
pub use gee_interp as interp;
pub use gee_ligra as ligra;
pub use gee_loadgen as loadgen;
pub use gee_serve as serve;

/// Most-used items in one import.
pub mod prelude {
    pub use gee_core;
    pub use gee_core::{
        AtomicsMode, DynamicGee, Embedding, GeeOptions, Implementation, Labels, Variant,
    };
    pub use gee_gen::{self, LabelSpec, RmatParams, SbmParams, WsParams};
    pub use gee_graph::{CsrGraph, Edge, EdgeList, GraphBuilder};
    pub use gee_ligra::{with_threads, BucketOrder, Buckets, VertexSubset};
    pub use gee_loadgen::{Analysis as BenchAnalysis, BenchConfig, Mix as BenchMix};
    pub use gee_serve::{
        BackpressurePolicy, Client as ServeClient, Durability, Engine as ServeEngine, Envelope,
        ErrorCode, Follower, HistoryPolicy, MetricsReport, Promotion, Registry, RegistryConfig,
        ReplicationListener, ReplicationReport, Request, Response, SearchPolicy, ServeError,
        Server as ServeServer, SyncPolicy, Update,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_quickstart_compiles_and_runs() {
        let el = gee_gen::erdos_renyi_gnm(100, 500, 1);
        let labels = Labels::from_options_with_k(
            &gee_gen::random_labels(
                100,
                LabelSpec {
                    num_classes: 3,
                    labeled_fraction: 0.2,
                },
                2,
            ),
            3,
        );
        let z = gee_core::embed(
            &el,
            &labels,
            Implementation::LigraParallel,
            GeeOptions::default(),
        );
        assert_eq!(z.dim(), 3);
    }
}
