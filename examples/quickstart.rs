//! Quickstart: embed a random graph with all four GEE implementations and
//! confirm they agree.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::time::Instant;

use gee_repro::prelude::*;

fn main() {
    // The paper's configuration at toy scale: K = 50 classes, 10% of
    // vertices labeled uniformly at random.
    let n = 200_000;
    let m = 2_000_000;
    println!("generating Erdős–Rényi graph: n = {n}, s = {m}");
    let el = gee_gen::erdos_renyi_gnm(n, m, 42);
    let labels =
        Labels::from_options_with_k(&gee_gen::random_labels(n, LabelSpec::default(), 7), 50);
    println!("labeled vertices: {} / {n}", labels.num_labeled());

    let mut reference: Option<Embedding> = None;
    for (name, imp) in [
        ("serial reference (Algorithm 1)", Implementation::Reference),
        ("optimized serial (Numba analog)", Implementation::Optimized),
        ("GEE-Ligra, 1 thread", Implementation::LigraSerial),
        (
            "GEE-Ligra, all threads (Algorithm 2)",
            Implementation::LigraParallel,
        ),
    ] {
        let t0 = Instant::now();
        let z = gee_core::embed(&el, &labels, imp, GeeOptions::default());
        let dt = t0.elapsed();
        println!(
            "{name:<40} {dt:>10.2?}   Z is {}×{}",
            z.num_vertices(),
            z.dim()
        );
        match &reference {
            None => reference = Some(z),
            Some(r) => {
                r.assert_close(&z, 1e-9);
                println!("{:<40} matches the reference ✓", "");
            }
        }
    }

    // Peek at one labeled vertex's embedding row.
    let (v, c) = labels
        .iter_labeled()
        .next()
        .expect("some vertex is labeled");
    let z = reference.unwrap();
    let row = z.row(v);
    let top = row
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap();
    println!("\nvertex {v} (class {c}): strongest embedding coordinate is class {top}");
    println!("row head: {:?}", &row[..8.min(row.len())]);
}
