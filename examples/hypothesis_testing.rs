//! Statistical inference on GEE embeddings: two-sample energy-distance
//! tests between vertex groups of an SBM — the "hypothesis testing"
//! downstream task §I of the paper motivates.
//!
//! Vertices of *different* blocks must reject the same-distribution null;
//! two halves of the *same* block must not.
//!
//! ```text
//! cargo run --release --example hypothesis_testing
//! ```

use gee_core::serial_optimized;
use gee_eval::energy_test;
use gee_repro::prelude::*;

fn main() {
    // A 3-block SBM with clear community structure.
    let params = SbmParams::balanced(3, 400, 0.08, 0.005);
    let g = gee_gen::sbm(&params, 17);
    let n = g.edges.num_vertices();
    println!(
        "SBM: {} blocks × 400 vertices, {} directed edges",
        3,
        g.edges.num_edges()
    );

    // Semi-supervised labels from 15% of the ground truth.
    let labels = Labels::from_options_with_k(&gee_gen::subsample_labels(&g.truth, 0.15, 23), 3);
    let mut z = serial_optimized::embed(&g.edges, &labels);
    z.normalize_rows();

    // Collect embedded rows per block (unlabeled vertices only, so the
    // test sees positions inferred purely from graph structure).
    let rows_of = |block: u32| -> Vec<Vec<f64>> {
        (0..n as u32)
            .filter(|&v| g.truth[v as usize] == block && labels.get(v).is_none())
            .take(150)
            .map(|v| z.row(v).to_vec())
            .collect()
    };
    let block0 = rows_of(0);
    let block1 = rows_of(1);

    let across = energy_test(&block0, &block1, 300, 41);
    println!(
        "block 0 vs block 1: statistic = {:.4}, p = {:.4}  →  {}",
        across.statistic,
        across.p_value,
        if across.rejects_at(0.01) {
            "REJECT (different latent positions) ✓"
        } else {
            "no rejection ✗"
        }
    );
    assert!(across.rejects_at(0.01), "different blocks must separate");

    let (first_half, second_half) = block0.split_at(block0.len() / 2);
    let within = energy_test(first_half, second_half, 300, 43);
    println!(
        "block 0 first half vs second half: statistic = {:.4}, p = {:.4}  →  {}",
        within.statistic,
        within.p_value,
        if within.rejects_at(0.01) {
            "rejected (unexpected) ✗"
        } else {
            "no rejection (same distribution) ✓"
        }
    );
    assert!(!within.rejects_at(0.01), "same block must not separate");
}
