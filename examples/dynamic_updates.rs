//! Incremental GEE: maintain an embedding while the graph and the labels
//! change, and compare against recomputing from scratch.
//!
//! ```text
//! cargo run --release --example dynamic_updates
//! ```

use std::time::Instant;

use gee_core::dynamic::DynamicGee;
use gee_core::serial_optimized;
use gee_repro::prelude::*;

fn main() {
    let n = 100_000;
    let m = 1_000_000;
    let k = 20;
    println!("base graph: Erdős–Rényi n = {n}, s = {m}, K = {k}");
    let el = gee_gen::erdos_renyi_gnm(n, m, 11);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(
            n,
            LabelSpec {
                num_classes: k,
                labeled_fraction: 0.1,
            },
            5,
        ),
        k,
    );

    let t0 = Instant::now();
    let mut dg = DynamicGee::new(&el, &labels);
    println!("dynamic state initialized in {:.2?}", t0.elapsed());

    // A burst of mixed updates: edge churn plus label drift.
    let updates = 50_000u32;
    let t1 = Instant::now();
    for i in 0..updates {
        let u = i.wrapping_mul(2_654_435_761) % n as u32;
        let v = (u ^ i.wrapping_mul(40_503)) % n as u32;
        match i % 3 {
            0 => dg.insert_edge(u, v, 1.0),
            1 => {
                // Churn: insert then remove, netting zero.
                dg.insert_edge(v, u, 2.0);
                assert!(dg.remove_edge(v, u, 2.0));
            }
            _ => dg.set_label(u, Some(i % k as u32)),
        }
    }
    let delta_time = t1.elapsed();
    println!(
        "{updates} updates applied incrementally in {delta_time:.2?} ({:.1} ns/update)",
        delta_time.as_nanos() as f64 / f64::from(updates)
    );

    // Full recompute for the same final state.
    let t2 = Instant::now();
    let fresh = serial_optimized::embed(&dg.edge_list(), &dg.labels());
    let recompute_time = t2.elapsed();
    println!("full recompute of the final state: {recompute_time:.2?}");

    fresh.assert_close(&dg.embedding(), 1e-9);
    println!("incremental embedding matches the recompute ✓");
    println!(
        "incremental path amortizes one recompute over ≈{} updates",
        (f64::from(updates) * recompute_time.as_secs_f64() / delta_time.as_secs_f64()).round()
    );
}
