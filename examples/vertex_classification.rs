//! Vertex classification — the "subsequent inference task" GEE exists for
//! (§I): embed with 10% known labels, classify the other 90% by k-NN in
//! embedding space, and compare against direct label propagation on the
//! graph.
//!
//! ```text
//! cargo run --release --example vertex_classification
//! ```

use gee_repro::algos::label_propagation;
use gee_repro::eval::{accuracy, knn_classify};
use gee_repro::prelude::*;

fn main() {
    let k = 6;
    let sbm = gee_gen::sbm(&SbmParams::balanced(k, 300, 0.12, 0.005), 2024);
    let n = sbm.edges.num_vertices();
    let g = CsrGraph::from_edge_list(&sbm.edges);
    println!("SBM: {k} classes × 300, {} directed edges", g.num_edges());

    let seeds = gee_gen::subsample_labels(&sbm.truth, 0.10, 7);
    let labels = Labels::from_options_with_k(&seeds, k);
    println!("seeds: {} labeled of {n}", labels.num_labeled());

    // Split: labeled vertices train, the rest are queries.
    let train: Vec<(u32, u32)> = labels.iter_labeled().collect();
    let queries: Vec<u32> = (0..n as u32).filter(|&v| labels.get(v).is_none()).collect();
    let truth_queries: Vec<u32> = queries.iter().map(|&v| sbm.truth[v as usize]).collect();

    // Method 1: GEE embedding + k-NN.
    let t0 = std::time::Instant::now();
    let mut z = gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic);
    z.normalize_rows();
    let predicted = knn_classify(z.as_slice(), z.dim(), &train, &queries, 5);
    let gee_time = t0.elapsed();
    let gee_acc = accuracy(&predicted, &truth_queries);
    println!(
        "\nGEE + 5-NN            : accuracy {:.3} in {gee_time:.2?}",
        gee_acc
    );

    // Method 2: argmax of the embedding row (zero extra cost).
    let argmax: Vec<u32> = queries
        .iter()
        .map(|&v| {
            z.row(v)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(c, _)| c as u32)
                .unwrap()
        })
        .collect();
    println!(
        "GEE row-argmax        : accuracy {:.3} (free with the embedding)",
        accuracy(&argmax, &truth_queries)
    );

    // Method 3: label propagation on the raw graph.
    let t0 = std::time::Instant::now();
    let propagated = label_propagation(&g, &seeds, 30);
    let lp_time = t0.elapsed();
    let lp_pred: Vec<u32> = queries
        .iter()
        .map(|&v| propagated[v as usize].unwrap_or(u32::MAX))
        .collect();
    println!(
        "label propagation     : accuracy {:.3} in {lp_time:.2?}",
        accuracy(&lp_pred, &truth_queries)
    );

    assert!(
        gee_acc > 0.8,
        "GEE classification should work on a separated SBM"
    );
    println!("\nGEE gives a reusable geometric representation; label propagation answers only this one query.");
}
