//! Network serving: drive `gee-serve` over the wire protocol and prove
//! the wire answers equal in-process execution.
//!
//! Two engines are built from identical inputs: one behind a TCP server,
//! one local. A scripted mixed read/write workload is executed both ways
//! — every response received over the wire must be `==` to the response
//! `Engine::execute_batch` computes in-process, and the encoded response
//! bytes must match byte-for-byte. A pipelined phase then shows many
//! batches in flight on one connection.
//!
//! ```text
//! cargo run --release --example network_serving
//! ```

use std::sync::Arc;
use std::time::Instant;

use gee_repro::prelude::*;
use gee_repro::serve::{wire, Client, Server};

/// Build one engine from the canonical inputs; called twice so the
/// served and oracle registries start bit-identical.
fn build_engine(blocks: usize, per_block: usize, shards: usize) -> ServeEngine {
    let sbm = gee_gen::sbm(&SbmParams::balanced(blocks, per_block, 0.02, 0.001), 42);
    let labels =
        Labels::from_options_with_k(&gee_gen::subsample_labels(&sbm.truth, 0.3, 7), blocks);
    let registry = Arc::new(Registry::new(shards));
    registry.register("social", &sbm.edges, &labels).unwrap();
    ServeEngine::new(registry)
}

/// The scripted workload: reads, epoch-publishing writes, and requests
/// that must fail with typed errors — all in one ordered stream.
fn workload(n: u32, blocks: usize) -> Vec<Vec<Envelope>> {
    (0..8u32)
        .map(|round| {
            let v = |i: u32| (round * 131 + i * 17) % n;
            vec![
                Envelope::new("social", Request::classify((0..20).map(v).collect(), 5)),
                Envelope::new("social", Request::similar(v(0), 10)),
                Envelope::new("social", Request::embed_row(v(1))),
                Envelope::new(
                    "social",
                    Request::ApplyUpdates {
                        updates: vec![
                            Update::InsertEdge {
                                u: v(2),
                                v: v(3),
                                w: 1.5,
                            },
                            Update::SetLabel {
                                v: v(4),
                                label: Some(round % blocks as u32),
                            },
                        ],
                    },
                ),
                Envelope::new("social", Request::classify(vec![v(2), v(3)], 5)),
                Envelope::new("social", Request::stats()),
                // Typed failures must cross the wire unchanged too.
                Envelope::new("social", Request::similar(v(5), 0)),
                Envelope::new("nowhere", Request::stats()),
            ]
        })
        .collect()
}

fn main() {
    let (blocks, per_block, shards) = (6, 2_000, 4);
    let server_engine = Arc::new(build_engine(blocks, per_block, shards));
    let local_engine = build_engine(blocks, per_block, shards);
    let n = (blocks * per_block) as u32;

    // -- Stand the server up on an ephemeral loopback port.
    let handle = Server::listen(server_engine, "127.0.0.1:0", None).expect("bind loopback");
    println!(
        "server listening on {} (wire protocol v{})",
        handle.addr(),
        gee_repro::serve::PROTOCOL_VERSION
    );
    let mut client = Client::connect(handle.addr()).expect("connect + handshake");
    println!("client handshake negotiated v{}", client.protocol_version());

    // -- Phase 1: batch-by-batch equivalence, checked to the byte.
    let batches = workload(n, blocks);
    let requests: usize = batches.iter().map(Vec::len).sum();
    let mut wire_bytes = 0usize;
    let t0 = Instant::now();
    for (i, batch) in batches.iter().enumerate() {
        let over_wire = client.execute_batch(batch.clone()).expect("wire execution");
        let in_process = local_engine.execute_batch(batch.clone());
        assert_eq!(
            over_wire, in_process,
            "batch {i}: wire answers must equal in-process"
        );
        let encoded = wire::encode(&over_wire);
        assert_eq!(
            encoded,
            wire::encode(&in_process),
            "batch {i}: responses must be byte-identical on the wire"
        );
        wire_bytes += encoded.len();
    }
    println!(
        "phase 1: {requests} requests in {} batches over TCP == in-process, \
         byte-for-byte ({wire_bytes} response bytes, {:.2?})",
        batches.len(),
        t0.elapsed()
    );

    // -- Phase 2: pipelining — all batches in flight before any reply.
    let batches = workload(n, blocks); // same script, continues the epoch history identically
    let t1 = Instant::now();
    let over_wire = client
        .pipeline(batches.clone())
        .expect("pipelined execution");
    let pipelined = t1.elapsed();
    let in_process: Vec<_> = batches
        .iter()
        .map(|b| local_engine.execute_batch(b.clone()))
        .collect();
    assert_eq!(
        over_wire, in_process,
        "pipelined answers must equal in-process"
    );
    println!(
        "phase 2: {} pipelined batches in {pipelined:.2?}, still == in-process",
        over_wire.len()
    );

    // -- The servers agree on final state: same epoch, same stats.
    let remote_stats = client.stats("social").expect("stats over wire");
    let local_stats = local_engine.stats("social").expect("stats in-process");
    assert_eq!(
        remote_stats, local_stats,
        "served state must converge identically"
    );
    println!(
        "final state: epoch {}, {} queries served, {} updates applied — identical on both sides",
        remote_stats.epoch, remote_stats.queries_served, remote_stats.updates_applied
    );

    client.goodbye().expect("clean goodbye");
    handle.shutdown();
    println!("wire round-trip proven: TCP responses == Engine::execute_batch ✓");
}
