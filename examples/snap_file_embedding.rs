//! File-based workflow: load a SNAP-format edge file (the paper's data
//! source), symmetrize, embed, and write the embedding + a binary graph
//! cache. Creates its own small sample file so it runs out of the box —
//! point `--` arguments at a real SNAP download to use your own data:
//!
//! ```text
//! cargo run --release --example snap_file_embedding -- path/to/soc-pokec.txt
//! ```

use std::io::{BufReader, BufWriter, Write};

use gee_repro::graph::io::{binary, snap};
use gee_repro::graph::stats::graph_stats;
use gee_repro::prelude::*;

fn main() {
    let arg = std::env::args().nth(1);
    let tmp = std::env::temp_dir().join("gee_snap_sample.txt");
    let path = match &arg {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            // Synthesize a small SNAP-style file (sparse ids, comments).
            let el = gee_gen::rmat(12, 40_000, RmatParams::default(), 5);
            let mut f = BufWriter::new(std::fs::File::create(&tmp).expect("create sample"));
            writeln!(f, "# Synthetic SNAP-format sample (RMAT scale 12)").unwrap();
            writeln!(f, "# FromNodeId\tToNodeId").unwrap();
            for e in el.edges() {
                // Sparse ids: multiply by 7 to leave gaps like real SNAP files.
                writeln!(f, "{}\t{}", e.u as u64 * 7, e.v as u64 * 7).unwrap();
            }
            println!(
                "no input given — wrote a synthetic sample to {}",
                tmp.display()
            );
            tmp.clone()
        }
    };

    let file = std::fs::File::open(&path).expect("open input");
    let el = snap::read(
        BufReader::new(file),
        snap::SnapOptions {
            symmetrize: true,
            drop_self_loops: true,
        },
    )
    .expect("parse SNAP file");
    println!(
        "loaded {}: n = {}, s = {} (after symmetrize)",
        path.display(),
        el.num_vertices(),
        el.num_edges()
    );

    let g = CsrGraph::from_edge_list(&el);
    let s = graph_stats(&g);
    println!(
        "degree: avg {:.1}, max {}, isolated {}",
        s.avg_degree, s.max_degree, s.isolated
    );

    // Paper configuration: K = 50, 10% labeled.
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(el.num_vertices(), LabelSpec::default(), 9),
        50,
    );
    let t0 = std::time::Instant::now();
    let z = gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic);
    println!(
        "embedded in {:.2?} → Z is {}×{}",
        t0.elapsed(),
        z.num_vertices(),
        z.dim()
    );

    // Cache the CSR for fast reload.
    let cache = std::env::temp_dir().join("gee_snap_sample.csr");
    binary::write(
        BufWriter::new(std::fs::File::create(&cache).expect("create cache")),
        &g,
    )
    .expect("write cache");
    let reloaded = binary::read(BufReader::new(
        std::fs::File::open(&cache).expect("open cache"),
    ))
    .expect("read cache");
    assert_eq!(reloaded.num_edges(), g.num_edges());
    println!("binary CSR cache round-tripped at {}", cache.display());

    // Write the first rows of the embedding as CSV.
    let out = std::env::temp_dir().join("gee_embedding_head.csv");
    let mut f = BufWriter::new(std::fs::File::create(&out).expect("create csv"));
    for v in 0..10.min(z.num_vertices() as u32) {
        let row: Vec<String> = z.row(v).iter().take(8).map(|x| format!("{x:.4}")).collect();
        writeln!(f, "{v},{}", row.join(",")).unwrap();
    }
    println!("first embedding rows written to {}", out.display());
}
