//! Unsupervised / iterative GEE clustering (no labels at all): random
//! labels → embed → k-means → relabel, repeated to convergence, compared
//! against Louvain and Leiden on the same graph.
//!
//! ```text
//! cargo run --release --example unsupervised_clustering
//! ```

use gee_repro::community::{leiden, louvain, LeidenOptions, LouvainOptions};
use gee_repro::core::unsupervised::{cluster, UnsupervisedOptions};
use gee_repro::eval::adjusted_rand_index;
use gee_repro::prelude::*;

fn main() {
    let k = 5;
    let params = SbmParams::balanced(k, 200, 0.1, 0.004);
    println!(
        "SBM: {} blocks × 200 vertices, p_in = 0.1, p_out = 0.004",
        k
    );
    let sbm = gee_gen::sbm(&params, 77);
    let g = CsrGraph::from_edge_list(&sbm.edges);
    println!(
        "{} vertices, {} directed edges\n",
        g.num_vertices(),
        g.num_edges()
    );

    // Iterative GEE.
    let t0 = std::time::Instant::now();
    let r = cluster(&g, UnsupervisedOptions::new(k, 11));
    let gee_time = t0.elapsed();
    let gee_ari = adjusted_rand_index(&r.assignment, &sbm.truth);
    println!(
        "iterative GEE : ARI {gee_ari:.3}  ({} rounds, converged ARI {:.3}, {:?})",
        r.rounds, r.final_ari, gee_time
    );

    // Louvain.
    let t0 = std::time::Instant::now();
    let lp = louvain(&g, LouvainOptions::default());
    let louvain_time = t0.elapsed();
    println!(
        "Louvain       : ARI {:.3}  ({} communities, {:?})",
        adjusted_rand_index(lp.membership(), &sbm.truth),
        lp.num_communities(),
        louvain_time
    );

    // Leiden.
    let t0 = std::time::Instant::now();
    let dp = leiden(&g, LeidenOptions::default());
    let leiden_time = t0.elapsed();
    println!(
        "Leiden        : ARI {:.3}  ({} communities, {:?})",
        adjusted_rand_index(dp.membership(), &sbm.truth),
        dp.num_communities(),
        leiden_time
    );

    println!(
        "\nall three unsupervised pipelines should recover the planted partition (ARI ≈ 1); \
         iterative GEE does it with {} edge passes.",
        r.rounds
    );
}
