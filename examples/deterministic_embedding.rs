//! Bit-reproducible parallel GEE: the atomic kernel's output depends on
//! the scheduler's addition order; the deterministic kernel's does not.
//!
//! ```text
//! cargo run --release --example deterministic_embedding
//! ```

use std::time::Instant;

use gee_core::{deterministic, serial_reference};
use gee_repro::prelude::*;

fn main() {
    let n = 100_000;
    let m = 1_500_000;
    println!("graph: Erdős–Rényi n = {n}, s = {m}, K = 50");
    let el = gee_gen::erdos_renyi_gnm(n, m, 3);
    let labels =
        Labels::from_options_with_k(&gee_gen::random_labels(n, LabelSpec::default(), 9), 50);

    let t0 = Instant::now();
    let reference = serial_reference::embed(&el, &labels);
    println!("serial reference: {:?}", t0.elapsed());

    let g = CsrGraph::from_edge_list(&el);
    let t1 = Instant::now();
    let atomic = gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic);
    println!("atomic writeAdd kernel: {:?}", t1.elapsed());

    let t2 = Instant::now();
    let _det = deterministic::embed(el.num_vertices(), el.edges(), &labels);
    println!("deterministic sort-reduce kernel: {:?}", t2.elapsed());

    // The atomic kernel is correct to FP-reordering tolerance…
    reference.assert_close(&atomic, 1e-9);
    let atomic_drift = reference.max_abs_diff(&atomic);
    // …while the deterministic kernel is bit-exact at any thread count.
    for threads in [1, 2, 4] {
        let z = with_threads(threads, || {
            deterministic::embed(el.num_vertices(), el.edges(), &labels)
        });
        assert_eq!(
            z.as_slice(),
            reference.as_slice(),
            "bit mismatch at {threads} threads"
        );
    }
    println!("atomic kernel drift from serial: {atomic_drift:.3e} (FP reordering)");
    println!("deterministic kernel: bit-identical to serial at 1, 2 and 4 threads ✓");
}
