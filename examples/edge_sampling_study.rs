//! How much of the graph does GEE actually need? Embed on Bernoulli
//! edge samples of decreasing rate and measure how clustering quality
//! degrades — sub-linear-cost embedding via the sampling transform.
//!
//! ```text
//! cargo run --release --example edge_sampling_study
//! ```

use gee_core::serial_optimized;
use gee_eval::{adjusted_rand_index, kmeans_best_of, KMeansOptions};
use gee_graph::transform::sample_edges;
use gee_repro::prelude::*;

fn main() {
    let k = 5usize;
    let params = SbmParams::balanced(k, 400, 0.12, 0.004);
    let sbm = gee_gen::sbm(&params, 71);
    let n = sbm.edges.num_vertices();
    let labels = Labels::from_options_with_k(&gee_gen::subsample_labels(&sbm.truth, 0.1, 73), k);
    println!(
        "SBM: {k} blocks × 400 vertices, {} edges, 10% supervision",
        sbm.edges.num_edges()
    );
    println!("{:>8} {:>10} {:>8}", "sample p", "edges used", "ARI");

    for p in [1.0, 0.5, 0.25, 0.1, 0.05, 0.02] {
        let sampled = sample_edges(&sbm.edges, p, 79);
        let mut z = serial_optimized::embed(&sampled, &labels);
        z.normalize_rows();
        let clustering = kmeans_best_of(z.as_slice(), n, k, KMeansOptions::new(k, 81), 5);
        let ari = adjusted_rand_index(&clustering.assignment, &sbm.truth);
        println!("{p:>8.2} {:>10} {ari:>8.3}", sampled.num_edges());
    }
    println!("\nexpected shape: ARI degrades gracefully as p shrinks, then collapses once");
    println!("the sampled graph's average degree is too small to carry class signal.");
}
