//! Durable serving: crash a WAL-backed registry and prove recovery is
//! bit-identical.
//!
//! A durable engine registers a graph and streams update batches; every
//! batch is committed to the write-ahead log (fsync before apply) and
//! periodically compacted into a checkpoint. The process then "crashes"
//! (the registry is dropped with no clean shutdown, and a torn
//! half-record of an unacknowledged batch is smeared onto the log tail,
//! exactly as a kill mid-append would leave it). Recovery = latest
//! checkpoint + WAL tail replay; the recovered engine must answer
//! `Classify` / `Similar` / `EmbedRow` / `Stats` **byte-identically** —
//! compared on encoded wire frames — to an oracle engine that applied
//! the same batches and never stopped.
//!
//! ```text
//! cargo run --release --example durable_serving
//! ```

use std::sync::Arc;
use std::time::Instant;

use gee_repro::prelude::*;
use gee_repro::serve::wire::{self, ServerFrame};
use gee_repro::serve::{Durability, Registry, SyncPolicy};

const GRAPH: &str = "social";
const BATCHES: usize = 12;

fn fixture() -> (EdgeList, Labels) {
    let sbm = gee_gen::sbm(&SbmParams::balanced(3, 60, 0.15, 0.01), 42);
    let labels = Labels::from_options_with_k(&gee_gen::subsample_labels(&sbm.truth, 0.4, 7), 3);
    (sbm.edges, labels)
}

fn batch(b: u32, n: u32) -> Vec<Update> {
    let v = |i: u32| (b * 97 + i * 13) % n;
    vec![
        Update::InsertEdge {
            u: v(0),
            v: v(1),
            w: 1.0 + f64::from(b % 4) * 0.5,
        },
        Update::SetLabel {
            v: v(2),
            label: Some(b % 3),
        },
        Update::RemoveEdge {
            u: v(0),
            v: v(1),
            w: 777.0, // never present: a committed no-op
        },
    ]
}

/// The read suite both engines answer; `Stats` runs on its own so the
/// query counter it reports is deterministic.
fn answers(engine: &ServeEngine, n: u32) -> Vec<u8> {
    let mut results = engine.execute_batch(vec![
        Envelope::new(GRAPH, Request::classify((0..n).collect(), 5)),
        Envelope::new(GRAPH, Request::similar(7, 10)),
        Envelope::new(GRAPH, Request::embed_row(n / 2)),
        Envelope::new(GRAPH, Request::embed_row(n + 1)), // typed error
    ]);
    results.push(engine.execute(GRAPH, Request::stats()));
    wire::encode(&ServerFrame::Batch { id: 0, results })
}

fn main() {
    let data_dir = std::env::temp_dir().join(format!(
        "gee_durable_serving_{}_{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    let durability = || Durability::Wal {
        dir: data_dir.clone(),
        sync: SyncPolicy::Always,
        checkpoint_every: 5,
    };
    let (el, labels) = fixture();
    let n = el.num_vertices() as u32;

    // -- Serve durably, then crash. ------------------------------------
    let t0 = Instant::now();
    {
        let engine = ServeEngine::open(4, durability()).expect("fresh data dir opens");
        engine
            .registry()
            .register(GRAPH, &el, &labels)
            .expect("registration commits to the WAL");
        for b in 0..BATCHES as u32 {
            let (applied, epoch) = engine
                .apply_updates(GRAPH, batch(b, n))
                .expect("committed batch");
            assert_eq!(epoch, u64::from(b) + 1);
            assert!(applied >= 2);
        }
        println!(
            "served {BATCHES} durable batches (fsync each, checkpoint every 5) in {:.2?}",
            t0.elapsed()
        );
        // No clean shutdown: the engine is dropped mid-flight.
    }
    // Smear a torn half-record onto the log tail — what a kill during an
    // unacknowledged append leaves behind.
    let wal_tail = std::fs::read_dir(&data_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.to_string_lossy().contains("wal-"))
        .max()
        .expect("a WAL segment exists");
    let mut bytes = std::fs::read(&wal_tail).unwrap();
    bytes.extend_from_slice(&[0x2A, 0x00, 0x00, 0x00, 0xDE, 0xAD]); // len=42, torn after 2 CRC bytes
    std::fs::write(&wal_tail, &bytes).unwrap();
    println!(
        "crashed: dropped the engine and tore the WAL tail ({} bytes)",
        6
    );

    // -- Recover and verify bit-identical serving. ----------------------
    let t1 = Instant::now();
    let recovered = ServeEngine::open(4, durability()).expect("recovery succeeds");
    println!(
        "recovered from checkpoint + WAL tail in {:.2?}",
        t1.elapsed()
    );

    let oracle = {
        let registry = Arc::new(Registry::new(4));
        registry.register(GRAPH, &el, &labels).unwrap();
        let engine = ServeEngine::new(registry);
        for b in 0..BATCHES as u32 {
            engine.apply_updates(GRAPH, batch(b, n)).unwrap();
        }
        engine
    };
    let stats = recovered
        .registry()
        .snapshot(GRAPH)
        .expect("graph recovered");
    assert_eq!(stats.epoch, BATCHES as u64, "all committed epochs survive");
    let recovered_bytes = answers(&recovered, n);
    let oracle_bytes = answers(&oracle, n);
    assert_eq!(
        recovered_bytes, oracle_bytes,
        "recovered answers must equal the uninterrupted oracle byte-for-byte"
    );
    println!(
        "recovered engine at epoch {} answers {} response bytes byte-identical to the oracle ✓",
        stats.epoch,
        recovered_bytes.len()
    );

    // -- A second recovery proves idempotence. --------------------------
    drop(recovered);
    let again = ServeEngine::open(4, durability()).expect("recovery is repeatable");
    assert_eq!(answers(&again, n), oracle_bytes);
    println!("second recovery is idempotent ✓");

    std::fs::remove_dir_all(&data_dir).ok();
    println!("durable serving pipeline complete");
}
