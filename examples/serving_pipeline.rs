//! End-to-end serving: register a graph with the `gee-serve` engine,
//! answer batched classification/similarity queries from epoch snapshots,
//! stream updates through the incremental write path, and verify the
//! served state against a from-scratch recompute.
//!
//! ```text
//! cargo run --release --example serving_pipeline
//! ```

use std::sync::Arc;
use std::time::Instant;

use gee_repro::prelude::*;

fn main() {
    // A stochastic block model stands in for a social graph with
    // community structure; 30% of vertices arrive labeled.
    let blocks = 8;
    let per_block = 5_000;
    let sbm = gee_gen::sbm(&SbmParams::balanced(blocks, per_block, 0.01, 0.0005), 42);
    let n = sbm.edges.num_vertices();
    let labels =
        Labels::from_options_with_k(&gee_gen::subsample_labels(&sbm.truth, 0.3, 7), blocks);
    println!(
        "workload: SBM with {blocks} blocks × {per_block} vertices, {} edges, {} labeled",
        sbm.edges.num_edges(),
        labels.num_labeled()
    );

    // -- Register: epoch 0 is materialized shard-parallel. The registry
    // retains the 4 newest epochs for time-travel reads; epochs are
    // published copy-on-write, so retention costs only the dirty blocks.
    let shards = 8;
    let registry = Arc::new(
        Registry::with_config(RegistryConfig {
            default_shards: shards,
            history: HistoryPolicy::keep(4),
            ..RegistryConfig::default()
        })
        .unwrap(),
    );
    let t0 = Instant::now();
    registry.register("social", &sbm.edges, &labels).unwrap();
    println!(
        "registered \"social\" across {shards} shards in {:.2?}",
        t0.elapsed()
    );
    let engine = ServeEngine::new(registry.clone());

    // -- A mixed read batch: classification + similarity + raw rows.
    let queries: Vec<u32> = (0..n as u32).step_by(97).collect();
    let batch = vec![
        Envelope::new("social", Request::classify(queries.clone(), 5)),
        Envelope::new("social", Request::similar(0, 10)),
        Envelope::new("social", Request::embed_row(123)),
        Envelope::new("social", Request::stats()),
    ];
    let t1 = Instant::now();
    let answers = engine.execute_batch(batch);
    let read_time = t1.elapsed();
    let Ok(Response::Classes(classes)) = &answers[0] else {
        panic!("classify failed")
    };
    let truth_sample: Vec<u32> = queries.iter().map(|&v| sbm.truth[v as usize]).collect();
    let acc = gee_repro::eval::accuracy(classes, &truth_sample);
    println!(
        "read batch ({} classify + similar + row + stats) in {read_time:.2?}; \
         classification accuracy vs planted blocks: {acc:.3}",
        queries.len()
    );
    let Ok(Response::Neighbors(neighbors)) = &answers[1] else {
        panic!("similar failed")
    };
    let same = neighbors
        .iter()
        .filter(|&&(v, _)| sbm.truth[v as usize] == sbm.truth[0])
        .count();
    println!("vertex 0's 10 nearest neighbors: {same}/10 share its block");

    // -- Stream updates through the DynamicGee write path.
    let num_updates = 30_000u32;
    let mut updates = Vec::with_capacity(num_updates as usize);
    for i in 0..num_updates {
        let u = i.wrapping_mul(2_654_435_761) % n as u32;
        let v = (u ^ i.wrapping_mul(40_503)) % n as u32;
        match i % 4 {
            0 | 1 => updates.push(Update::InsertEdge { u, v, w: 1.0 }),
            2 => updates.push(Update::SetLabel {
                v: u,
                label: Some(i % blocks as u32),
            }),
            _ => updates.push(Update::SetLabel { v, label: None }),
        }
    }
    let t2 = Instant::now();
    for chunk in updates.chunks(1_000) {
        let r = engine.execute(
            "social",
            Request::ApplyUpdates {
                updates: chunk.to_vec(),
            },
        );
        assert!(r.is_ok());
    }
    let write_time = t2.elapsed();
    println!(
        "{num_updates} updates applied in {} epoch-publishing batches in {write_time:.2?} \
         ({:.1} µs/update amortized)",
        updates.len().div_ceil(1_000),
        write_time.as_micros() as f64 / f64::from(num_updates)
    );

    // -- Verify the served embedding equals a from-scratch recompute.
    let t3 = Instant::now();
    let mut oracle = DynamicGee::new(&sbm.edges, &labels);
    for u in &updates {
        match *u {
            Update::InsertEdge { u, v, w } => oracle.insert_edge(u, v, w),
            Update::RemoveEdge { u, v, w } => {
                oracle.remove_edge(u, v, w);
            }
            Update::SetLabel { v, label } => oracle.set_label(v, label),
        }
    }
    let fresh = gee_repro::core::serial_optimized::embed(&oracle.edge_list(), &oracle.labels());
    let snap = registry.snapshot("social").expect("registered");
    fresh.assert_close(&snap.to_embedding(), 1e-10);
    println!(
        "served epoch {} matches a from-scratch recompute ✓ (verified in {:.2?})",
        snap.epoch,
        t3.elapsed()
    );

    let Ok(Response::Stats(report)) = engine.execute("social", Request::stats()) else {
        panic!("stats failed")
    };
    println!(
        "final stats: epoch {} (retained from {}), {} queries served, {} updates applied",
        report.epoch, report.oldest_epoch, report.queries_served, report.updates_applied
    );

    // -- Copy-on-write publication: a single-shard edge batch republishes
    // one ShardBlock and structurally shares the other S-1.
    let parent = registry.snapshot("social").unwrap();
    engine
        .execute(
            "social",
            Request::ApplyUpdates {
                updates: vec![Update::InsertEdge { u: 1, v: 2, w: 1.0 }],
            },
        )
        .unwrap();
    let child = registry.snapshot("social").unwrap();
    let shared = child
        .blocks()
        .iter()
        .zip(parent.blocks())
        .filter(|(a, b)| Arc::ptr_eq(a, b))
        .count();
    println!(
        "single-shard update: epoch {} shares {shared}/{shards} blocks with epoch {} ✓",
        child.epoch, parent.epoch
    );

    // -- Time travel: pin a read to the parent epoch while the head moves.
    let then = engine
        .embed_row_at("social", 123, Some(parent.epoch))
        .unwrap();
    let now = engine.embed_row("social", 123).unwrap();
    println!(
        "pinned read at epoch {}: row 123 frozen ({} dims); unpinned reads follow epoch {} \
         (rows {}identical)",
        parent.epoch,
        then.len(),
        child.epoch,
        if then == now { "" } else { "not " }
    );
    // A pin the ring has evicted fails typed, naming the retained range.
    match engine.embed_row_at("social", 123, Some(0)) {
        Err(ServeError::EpochEvicted { oldest, newest, .. }) => {
            println!("epoch 0 is evicted (code 13); retained range is {oldest}..={newest} ✓")
        }
        other => panic!("expected EpochEvicted, got {other:?}"),
    }
}
