//! Out-of-core embedding: write a graph to the streaming binary edge
//! format, then embed it from disk in bounded-memory chunks — the paper's
//! memory-efficiency angle (§I) taken to its logical end.
//!
//! ```text
//! cargo run --release --example streaming_embedding
//! ```

use std::io::{BufReader, BufWriter};

use gee_repro::core::streaming::{embed_stream, ChunkMode};
use gee_repro::graph::io::edge_stream::{self, EdgeStreamReader};
use gee_repro::prelude::*;

fn main() {
    let n = 500_000;
    let m = 8_000_000;
    println!("generating R-MAT graph: ~{n} vertices, {m} edges");
    let el = gee_gen::rmat(19, m, RmatParams::default(), 13);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(el.num_vertices(), LabelSpec::default(), 5),
        50,
    );

    // Spill the edges to disk (16 bytes per edge).
    let path = std::env::temp_dir().join("gee_stream_demo.edges");
    let t0 = std::time::Instant::now();
    edge_stream::write(
        BufWriter::new(std::fs::File::create(&path).expect("create")),
        &el,
    )
    .expect("write stream");
    let bytes = std::fs::metadata(&path).expect("stat").len();
    println!(
        "wrote {} ({:.1} MiB) in {:.2?}",
        path.display(),
        bytes as f64 / (1024.0 * 1024.0),
        t0.elapsed()
    );

    // In-memory baseline.
    let t0 = std::time::Instant::now();
    let expected = gee_repro::core::serial_optimized::embed(&el, &labels);
    println!("in-memory serial pass: {:.2?}", t0.elapsed());

    // Streamed passes at two chunk sizes, serial and parallel kernels.
    for (chunk, mode, what) in [
        (
            1 << 16,
            ChunkMode::Serial,
            "streamed serial, 64k-edge chunks",
        ),
        (
            1 << 20,
            ChunkMode::Parallel,
            "streamed parallel, 1M-edge chunks",
        ),
    ] {
        let t0 = std::time::Instant::now();
        let mut reader =
            EdgeStreamReader::new(BufReader::new(std::fs::File::open(&path).expect("open")))
                .expect("header");
        let z = embed_stream(&mut reader, &labels, chunk, mode).expect("stream embed");
        let dt = t0.elapsed();
        expected.assert_close(&z, 1e-9);
        println!("{what}: {dt:.2?} — matches the in-memory result ✓");
    }
    println!(
        "\nresident set during the streamed pass: Z ({} MiB) + projection + one chunk — \
         the edge list itself never needs to fit in memory.",
        el.num_vertices() * 50 * 8 / (1024 * 1024)
    );
}
