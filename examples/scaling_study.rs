//! Mini strong-scaling study (the shape of the paper's Figure 3) on an
//! R-MAT social-graph stand-in: embed with 1, 2, 4, … threads and report
//! speedup and parallel efficiency.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use std::time::Instant;

use gee_repro::prelude::*;

fn main() {
    let m = 4_000_000;
    let scale = 18; // 262k vertices
    println!("generating R-MAT graph: scale {scale}, {m} edges (social-network parameters)");
    let el = gee_gen::rmat(scale, m, RmatParams::default(), 11);
    let g = CsrGraph::from_edge_list(&el);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(el.num_vertices(), LabelSpec::default(), 3),
        50,
    );

    let max_threads = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(8);
    let mut threads = 1;
    let mut t1 = 0.0f64;
    println!(
        "\n{:>8} {:>12} {:>9} {:>11}",
        "threads", "runtime", "speedup", "efficiency"
    );
    while threads <= max_threads {
        // Median of 3.
        let mut times = Vec::new();
        for _ in 0..3 {
            let t0 = Instant::now();
            let z = with_threads(threads, || {
                gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic)
            });
            times.push(t0.elapsed().as_secs_f64());
            assert_eq!(z.dim(), 50);
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let t = times[1];
        if threads == 1 {
            t1 = t;
        }
        println!(
            "{threads:>8} {:>11.1}ms {:>8.2}× {:>10.0}%",
            t * 1e3,
            t1 / t,
            100.0 * t1 / t / threads as f64
        );
        threads *= 2;
    }
    println!("\npaper reference: 11× on 24 cores; the curve flattens as the workload becomes memory-bound.");
}
