//! The §II pipeline end-to-end: detect communities with Leiden, use them
//! as GEE's `Y` labels, embed, cluster the embedding, and score against
//! the planted ground truth — plus a comparison with the spectral
//! embedding baseline GEE converges toward.
//!
//! ```text
//! cargo run --release --example community_pipeline
//! ```

use gee_repro::prelude::*;

use gee_repro::community::{leiden, modularity, LeidenOptions};
use gee_repro::eval::{
    adjusted_rand_index, kmeans, spectral_embedding, KMeansOptions, SpectralOptions,
};

fn main() {
    // Planted-partition graph: 4 blocks of 250 vertices.
    let k = 4;
    let params = SbmParams::balanced(k, 250, 0.08, 0.005);
    println!(
        "generating SBM: {} vertices, p_in = 0.08, p_out = 0.005",
        params.num_vertices()
    );
    let sbm = gee_gen::sbm(&params, 99);
    let g = CsrGraph::from_edge_list(&sbm.edges);
    let n = g.num_vertices();
    println!("edges (directed encoding): {}", g.num_edges());

    // 1. Unsupervised labels from Leiden (the label source §II names).
    let partition = leiden(&g, LeidenOptions::default());
    let q = modularity(
        &g,
        &gee_repro::community::Partition::from_membership(partition.membership()),
        1.0,
    );
    println!(
        "\nLeiden: {} communities, modularity {q:.3}, ARI vs truth {:.3}",
        partition.num_communities(),
        adjusted_rand_index(partition.membership(), &sbm.truth)
    );

    // 2. Use the Leiden communities as Y and embed with GEE-Ligra.
    let labels = Labels::from_full(partition.membership());
    let z = gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic);
    println!("GEE embedding: {}×{}", z.num_vertices(), z.dim());

    // 3. Cluster the embedding and compare with the planted truth.
    let mut zn = z.clone();
    zn.normalize_rows();
    let km = kmeans(zn.as_slice(), n, k, KMeansOptions::new(k, 5));
    let ari_gee = adjusted_rand_index(&km.assignment, &sbm.truth);
    println!("k-means on GEE embedding: ARI vs truth = {ari_gee:.3}");

    // 4. Spectral baseline (what GEE is proven to converge toward).
    let spec = spectral_embedding(
        &g,
        SpectralOptions {
            k,
            iterations: 100,
            seed: 3,
            scale_by_eigenvalues: true,
        },
    );
    let km_s = kmeans(&spec, n, k, KMeansOptions::new(k, 5));
    let ari_spec = adjusted_rand_index(&km_s.assignment, &sbm.truth);
    println!("k-means on spectral embedding: ARI vs truth = {ari_spec:.3}");

    println!(
        "\nsummary: GEE recovers the planted structure at {:.0}% of the spectral baseline's ARI \
         in a single edge pass (spectral needs ~100 SpMV sweeps).",
        100.0 * ari_gee / ari_spec.max(1e-9)
    );
    assert!(
        ari_gee > 0.8,
        "GEE should recover a strongly separated SBM (got ARI {ari_gee:.3})"
    );
}
