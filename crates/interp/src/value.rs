//! Boxed dynamic values with run-time type dispatch — the cost structure
//! of CPython objects, minus the reference-count cycles.

use std::cell::RefCell;
use std::rc::Rc;

/// A dynamically-typed value. Lists are heap-allocated and shared through
/// `Rc<RefCell<…>>`, so every element access goes through a pointer
/// indirection and a borrow check — deliberately mirroring `PyObject*`
/// costs.
#[derive(Debug, Clone)]
pub enum Value {
    /// Unit/none.
    None,
    /// Boxed integer.
    Int(i64),
    /// Boxed double.
    Float(f64),
    /// Shared mutable list.
    List(Rc<RefCell<Vec<Value>>>),
}

/// Run-time type errors, like CPython's `TypeError`/`IndexError`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// Operation applied to incompatible operand types.
    BadOperand {
        /// Operation name.
        op: &'static str,
        /// Offending type name.
        got: &'static str,
    },
    /// Index out of bounds or not an integer.
    BadIndex,
}

impl std::fmt::Display for TypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TypeError::BadOperand { op, got } => {
                write!(f, "unsupported operand type for {op}: {got}")
            }
            TypeError::BadIndex => write!(f, "bad list index"),
        }
    }
}

impl std::error::Error for TypeError {}

impl Value {
    /// Type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::None => "none",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::List(_) => "list",
        }
    }

    /// Build a list value.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Rc::new(RefCell::new(items)))
    }

    /// Numeric coercion to f64 (ints promote, like CPython arithmetic).
    pub fn as_f64(&self) -> Result<f64, TypeError> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            other => Err(TypeError::BadOperand {
                op: "float()",
                got: other.type_name(),
            }),
        }
    }

    /// Integer coercion (floats must be integral).
    pub fn as_i64(&self) -> Result<i64, TypeError> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Float(f) if f.fract() == 0.0 => Ok(*f as i64),
            _ => Err(TypeError::BadIndex),
        }
    }

    /// Dynamic addition with int/float promotion.
    pub fn add(&self, other: &Value) -> Result<Value, TypeError> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_add(*b))),
            (a, b) => Ok(Value::Float(a.as_f64()? + b.as_f64()?)),
        }
    }

    /// Dynamic subtraction.
    pub fn sub(&self, other: &Value) -> Result<Value, TypeError> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_sub(*b))),
            (a, b) => Ok(Value::Float(a.as_f64()? - b.as_f64()?)),
        }
    }

    /// Dynamic multiplication.
    pub fn mul(&self, other: &Value) -> Result<Value, TypeError> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_mul(*b))),
            (a, b) => Ok(Value::Float(a.as_f64()? * b.as_f64()?)),
        }
    }

    /// Truthiness, CPython-style.
    pub fn truthy(&self) -> bool {
        match self {
            Value::None => false,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::List(l) => !l.borrow().is_empty(),
        }
    }

    /// `self[index]` with dynamic index coercion.
    pub fn get_item(&self, index: &Value) -> Result<Value, TypeError> {
        match self {
            Value::List(l) => {
                let i = index.as_i64()?;
                let b = l.borrow();
                if i < 0 || i as usize >= b.len() {
                    return Err(TypeError::BadIndex);
                }
                Ok(b[i as usize].clone())
            }
            other => Err(TypeError::BadOperand {
                op: "getitem",
                got: other.type_name(),
            }),
        }
    }

    /// `self[index] = value`.
    pub fn set_item(&self, index: &Value, value: Value) -> Result<(), TypeError> {
        match self {
            Value::List(l) => {
                let i = index.as_i64()?;
                let mut b = l.borrow_mut();
                if i < 0 || i as usize >= b.len() {
                    return Err(TypeError::BadIndex);
                }
                b[i as usize] = value;
                Ok(())
            }
            other => Err(TypeError::BadOperand {
                op: "setitem",
                got: other.type_name(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_promotion() {
        assert!(matches!(
            Value::Int(2).add(&Value::Int(3)).unwrap(),
            Value::Int(5)
        ));
        match Value::Int(2).add(&Value::Float(0.5)).unwrap() {
            Value::Float(f) => assert_eq!(f, 2.5),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn mul_and_sub() {
        match Value::Float(3.0).mul(&Value::Int(4)).unwrap() {
            Value::Float(f) => assert_eq!(f, 12.0),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            Value::Int(5).sub(&Value::Int(7)).unwrap(),
            Value::Int(-2)
        ));
    }

    #[test]
    fn list_get_set() {
        let l = Value::list(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(l.get_item(&Value::Int(1)).unwrap().as_i64().unwrap(), 2);
        l.set_item(&Value::Int(0), Value::Float(9.5)).unwrap();
        assert_eq!(l.get_item(&Value::Int(0)).unwrap().as_f64().unwrap(), 9.5);
    }

    #[test]
    fn index_errors() {
        let l = Value::list(vec![Value::Int(1)]);
        assert_eq!(l.get_item(&Value::Int(5)).unwrap_err(), TypeError::BadIndex);
        assert_eq!(
            l.get_item(&Value::Int(-1)).unwrap_err(),
            TypeError::BadIndex
        );
        assert!(Value::Int(3).get_item(&Value::Int(0)).is_err());
    }

    #[test]
    fn type_errors_on_none() {
        assert!(Value::None.as_f64().is_err());
        assert!(Value::None.add(&Value::Int(1)).is_err());
    }

    #[test]
    fn truthiness() {
        assert!(!Value::None.truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(-1).truthy());
        assert!(Value::Float(0.1).truthy());
        assert!(!Value::list(vec![]).truthy());
    }

    #[test]
    fn shared_list_semantics() {
        let l = Value::list(vec![Value::Int(0)]);
        let alias = l.clone();
        alias.set_item(&Value::Int(0), Value::Int(7)).unwrap();
        assert_eq!(l.get_item(&Value::Int(0)).unwrap().as_i64().unwrap(), 7);
    }
}
