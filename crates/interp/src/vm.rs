//! A stack-based bytecode VM with per-instruction dispatch — the cost
//! model of the CPython evaluation loop.

use crate::value::{TypeError, Value};

/// Bytecode instruction set (a small subset of CPython's).
#[derive(Debug, Clone)]
pub enum Instr {
    /// Push `constants[i]`.
    Const(usize),
    /// Push `locals[i]`.
    Load(usize),
    /// Pop into `locals[i]`.
    Store(usize),
    /// Pop index, pop container, push `container[index]`.
    GetItem,
    /// Pop value, pop index, pop container, do `container[index] = value`.
    SetItem,
    /// Pop b, pop a, push `a + b`.
    Add,
    /// Pop b, pop a, push `a - b`.
    Sub,
    /// Pop b, pop a, push `a * b`.
    Mul,
    /// Pop b, pop a, push `Int(a < b)`.
    Lt,
    /// Pop b, pop a, push `Int(a >= b)`.
    Ge,
    /// Pop; jump to target if falsy.
    JumpIfFalse(usize),
    /// Unconditional jump.
    Jump(usize),
    /// Stop execution.
    Halt,
}

/// Number of distinct opcodes (histogram width).
pub const NUM_OPCODES: usize = 13;

impl Instr {
    /// Dense opcode index for histogram accounting.
    #[inline]
    pub fn opcode(&self) -> usize {
        match self {
            Instr::Const(_) => 0,
            Instr::Load(_) => 1,
            Instr::Store(_) => 2,
            Instr::GetItem => 3,
            Instr::SetItem => 4,
            Instr::Add => 5,
            Instr::Sub => 6,
            Instr::Mul => 7,
            Instr::Lt => 8,
            Instr::Ge => 9,
            Instr::JumpIfFalse(_) => 10,
            Instr::Jump(_) => 11,
            Instr::Halt => 12,
        }
    }

    /// Mnemonic for the opcode index.
    pub fn opcode_name(opcode: usize) -> &'static str {
        [
            "CONST",
            "LOAD",
            "STORE",
            "GET_ITEM",
            "SET_ITEM",
            "ADD",
            "SUB",
            "MUL",
            "LT",
            "GE",
            "JUMP_IF_FALSE",
            "JUMP",
            "HALT",
        ][opcode]
    }
}

/// VM execution errors.
#[derive(Debug)]
pub enum VmError {
    /// Dynamic type error from a value operation.
    Type(TypeError),
    /// Pop from empty stack (malformed program).
    StackUnderflow,
    /// Jump or constant/local index out of range.
    BadProgram(&'static str),
}

impl From<TypeError> for VmError {
    fn from(e: TypeError) -> Self {
        VmError::Type(e)
    }
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::Type(e) => write!(f, "type error: {e}"),
            VmError::StackUnderflow => write!(f, "stack underflow"),
            VmError::BadProgram(m) => write!(f, "bad program: {m}"),
        }
    }
}

impl std::error::Error for VmError {}

/// A bytecode program: instructions plus a constant pool.
#[derive(Debug, Clone)]
pub struct Program {
    /// Instruction sequence.
    pub code: Vec<Instr>,
    /// Constant pool.
    pub constants: Vec<Value>,
}

/// The virtual machine: value stack + locals, one dispatch per instruction.
pub struct Vm {
    stack: Vec<Value>,
    /// Local variable slots.
    pub locals: Vec<Value>,
    /// Instructions retired (for cost accounting in tests/benches).
    pub instructions_executed: u64,
    /// Retired-instruction histogram by [`Instr::opcode`].
    pub op_counts: [u64; NUM_OPCODES],
}

impl Vm {
    /// A VM with `num_locals` local slots initialized to `None`.
    pub fn new(num_locals: usize) -> Self {
        Vm {
            stack: Vec::with_capacity(64),
            locals: vec![Value::None; num_locals],
            instructions_executed: 0,
            op_counts: [0; NUM_OPCODES],
        }
    }

    /// Retired opcode counts as `(mnemonic, count)`, heaviest first.
    pub fn op_histogram(&self) -> Vec<(&'static str, u64)> {
        let mut hist: Vec<(&'static str, u64)> = self
            .op_counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(op, &c)| (Instr::opcode_name(op), c))
            .collect();
        hist.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        hist
    }

    fn pop(&mut self) -> Result<Value, VmError> {
        self.stack.pop().ok_or(VmError::StackUnderflow)
    }

    /// Run `program` to `Halt` (or error).
    pub fn run(&mut self, program: &Program) -> Result<(), VmError> {
        let code = &program.code;
        let consts = &program.constants;
        let mut pc = 0usize;
        loop {
            let instr = code.get(pc).ok_or(VmError::BadProgram("pc out of range"))?;
            self.instructions_executed += 1;
            self.op_counts[instr.opcode()] += 1;
            pc += 1;
            match instr {
                Instr::Const(i) => {
                    let v = consts
                        .get(*i)
                        .ok_or(VmError::BadProgram("const index"))?
                        .clone();
                    self.stack.push(v);
                }
                Instr::Load(i) => {
                    let v = self
                        .locals
                        .get(*i)
                        .ok_or(VmError::BadProgram("local index"))?
                        .clone();
                    self.stack.push(v);
                }
                Instr::Store(i) => {
                    let v = self.pop()?;
                    let slot = self
                        .locals
                        .get_mut(*i)
                        .ok_or(VmError::BadProgram("local index"))?;
                    *slot = v;
                }
                Instr::GetItem => {
                    let idx = self.pop()?;
                    let cont = self.pop()?;
                    self.stack.push(cont.get_item(&idx)?);
                }
                Instr::SetItem => {
                    let val = self.pop()?;
                    let idx = self.pop()?;
                    let cont = self.pop()?;
                    cont.set_item(&idx, val)?;
                }
                Instr::Add => {
                    let b = self.pop()?;
                    let a = self.pop()?;
                    self.stack.push(a.add(&b)?);
                }
                Instr::Sub => {
                    let b = self.pop()?;
                    let a = self.pop()?;
                    self.stack.push(a.sub(&b)?);
                }
                Instr::Mul => {
                    let b = self.pop()?;
                    let a = self.pop()?;
                    self.stack.push(a.mul(&b)?);
                }
                Instr::Lt => {
                    let b = self.pop()?;
                    let a = self.pop()?;
                    self.stack
                        .push(Value::Int(i64::from(a.as_f64()? < b.as_f64()?)));
                }
                Instr::Ge => {
                    let b = self.pop()?;
                    let a = self.pop()?;
                    self.stack
                        .push(Value::Int(i64::from(a.as_f64()? >= b.as_f64()?)));
                }
                Instr::JumpIfFalse(t) => {
                    let c = self.pop()?;
                    if !c.truthy() {
                        pc = *t;
                    }
                }
                Instr::Jump(t) => pc = *t,
                Instr::Halt => return Ok(()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_program() {
        // locals[0] = (2 + 3) * 4
        let p = Program {
            code: vec![
                Instr::Const(0),
                Instr::Const(1),
                Instr::Add,
                Instr::Const(2),
                Instr::Mul,
                Instr::Store(0),
                Instr::Halt,
            ],
            constants: vec![Value::Int(2), Value::Int(3), Value::Int(4)],
        };
        let mut vm = Vm::new(1);
        vm.run(&p).unwrap();
        assert_eq!(vm.locals[0].as_i64().unwrap(), 20);
    }

    #[test]
    fn loop_sums_one_to_ten() {
        // i = 1; acc = 0; while i < 11 { acc += i; i += 1 }
        let p = Program {
            code: vec![
                Instr::Const(0), // 1
                Instr::Store(0), // i
                Instr::Const(1), // 0
                Instr::Store(1), // acc
                // loop head @4
                Instr::Load(0),
                Instr::Const(2), // 11
                Instr::Lt,
                Instr::JumpIfFalse(16),
                Instr::Load(1),
                Instr::Load(0),
                Instr::Add,
                Instr::Store(1),
                Instr::Load(0),
                Instr::Const(0), // 1
                Instr::Add,
                Instr::Store(0),
                // ^ jump target fix below
                Instr::Halt,
            ],
            constants: vec![Value::Int(1), Value::Int(0), Value::Int(11)],
        };
        // Insert back-jump before Halt.
        let mut p = p;
        p.code.insert(16, Instr::Jump(4));
        // JumpIfFalse target shifts to 17.
        p.code[7] = Instr::JumpIfFalse(17);
        let mut vm = Vm::new(2);
        vm.run(&p).unwrap();
        assert_eq!(vm.locals[1].as_i64().unwrap(), 55);
    }

    #[test]
    fn list_mutation_via_bytecode() {
        let p = Program {
            code: vec![
                Instr::Load(0),  // list
                Instr::Const(0), // index 0
                Instr::Const(1), // value 42
                Instr::SetItem,
                Instr::Halt,
            ],
            constants: vec![Value::Int(0), Value::Int(42)],
        };
        let mut vm = Vm::new(1);
        vm.locals[0] = Value::list(vec![Value::Int(0)]);
        vm.run(&p).unwrap();
        assert_eq!(
            vm.locals[0]
                .get_item(&Value::Int(0))
                .unwrap()
                .as_i64()
                .unwrap(),
            42
        );
    }

    #[test]
    fn stack_underflow_detected() {
        let p = Program {
            code: vec![Instr::Add, Instr::Halt],
            constants: vec![],
        };
        assert!(matches!(Vm::new(0).run(&p), Err(VmError::StackUnderflow)));
    }

    #[test]
    fn counts_instructions() {
        let p = Program {
            code: vec![Instr::Const(0), Instr::Store(0), Instr::Halt],
            constants: vec![Value::Int(1)],
        };
        let mut vm = Vm::new(1);
        vm.run(&p).unwrap();
        assert_eq!(vm.instructions_executed, 3);
    }

    #[test]
    fn histogram_tracks_opcodes() {
        let p = Program {
            code: vec![
                Instr::Const(0),
                Instr::Const(0),
                Instr::Add,
                Instr::Store(0),
                Instr::Halt,
            ],
            constants: vec![Value::Int(1)],
        };
        let mut vm = Vm::new(1);
        vm.run(&p).unwrap();
        let hist = vm.op_histogram();
        assert_eq!(hist[0], ("CONST", 2));
        assert!(hist.contains(&("ADD", 1)));
        assert!(hist.contains(&("HALT", 1)));
        assert_eq!(
            hist.iter().map(|&(_, c)| c).sum::<u64>(),
            vm.instructions_executed
        );
    }

    #[test]
    fn opcode_indices_are_dense_and_named() {
        for op in 0..NUM_OPCODES {
            assert!(!Instr::opcode_name(op).is_empty());
        }
        assert_eq!(Instr::Halt.opcode(), NUM_OPCODES - 1);
    }

    #[test]
    fn type_error_propagates() {
        let p = Program {
            code: vec![
                Instr::Const(0),
                Instr::Const(0),
                Instr::GetItem,
                Instr::Halt,
            ],
            constants: vec![Value::Int(1)],
        };
        assert!(matches!(Vm::new(0).run(&p), Err(VmError::Type(_))));
    }
}
