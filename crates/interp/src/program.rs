//! GEE Algorithm 1's edge loop, hand-assembled as bytecode, plus the
//! native↔boxed marshalling. This is the "GEE-Python" column of Table I.
//!
//! Fidelity notes:
//! * The projection setup (`W`) runs natively — the real reference
//!   implementation builds `W` with vectorized NumPy ops, and the paper
//!   attributes the Python cost to the *edge loop*.
//! * Every edge iteration executes ~45 VM instructions, each with dynamic
//!   dispatch, boxed operand pops/pushes, and `Rc<RefCell>`-guarded list
//!   access — the same cost species CPython pays per bytecode.

use gee_core::{Embedding, Labels, Projection};
use gee_graph::EdgeList;

use crate::value::Value;
use crate::vm::{Instr, Program, Vm};

// Local variable slots of the GEE bytecode program.
const EU: usize = 0; // edge sources: list[int]
const EV: usize = 1; // edge destinations: list[int]
const EW: usize = 2; // edge weights: list[float]
const Y: usize = 3; // labels: list[int], -1 = unknown
const COEFF: usize = 4; // projection coefficients: list[float]
const Z: usize = 5; // embedding, flattened n*k: list[float]
const K: usize = 6; // embedding dimension: int
const S: usize = 7; // edge count: int
const I: usize = 8; // loop counter
const U: usize = 9;
const V: usize = 10;
const W: usize = 11;
const YV: usize = 12;
const YU: usize = 13;
const IDX: usize = 14;
const NUM_LOCALS: usize = 15;

/// Tiny assembler with labels and back-patching.
struct Asm {
    code: Vec<Instr>,
}

impl Asm {
    fn new() -> Self {
        Asm { code: Vec::new() }
    }
    fn emit(&mut self, i: Instr) -> &mut Self {
        self.code.push(i);
        self
    }
    fn here(&self) -> usize {
        self.code.len()
    }
    /// Emit a jump with a placeholder target; returns the patch site.
    fn emit_jump_if_false(&mut self) -> usize {
        self.code.push(Instr::JumpIfFalse(usize::MAX));
        self.code.len() - 1
    }
    fn patch(&mut self, site: usize, target: usize) {
        match &mut self.code[site] {
            Instr::JumpIfFalse(t) | Instr::Jump(t) => *t = target,
            other => panic!("patching non-jump {other:?}"),
        }
    }
}

/// Assemble the edge-loop bytecode. Constants: [0] = Int(0), [1] = Int(1).
fn assemble() -> Program {
    use Instr::*;
    let mut a = Asm::new();
    // i = 0
    a.emit(Const(0)).emit(Store(I));
    let loop_head = a.here();
    // while i < s
    a.emit(Load(I)).emit(Load(S)).emit(Lt);
    let exit_patch = a.emit_jump_if_false();
    // u = eu[i]; v = ev[i]; w = ew[i]
    a.emit(Load(EU)).emit(Load(I)).emit(GetItem).emit(Store(U));
    a.emit(Load(EV)).emit(Load(I)).emit(GetItem).emit(Store(V));
    a.emit(Load(EW)).emit(Load(I)).emit(GetItem).emit(Store(W));
    // yv = y[v]; if yv >= 0 { z[u*k+yv] += coeff[v]*w }
    a.emit(Load(Y)).emit(Load(V)).emit(GetItem).emit(Store(YV));
    a.emit(Load(YV)).emit(Const(0)).emit(Ge);
    let skip1 = a.emit_jump_if_false();
    a.emit(Load(U))
        .emit(Load(K))
        .emit(Mul)
        .emit(Load(YV))
        .emit(Add)
        .emit(Store(IDX));
    a.emit(Load(Z)).emit(Load(IDX)); // SetItem operands: container, index, …
    a.emit(Load(Z)).emit(Load(IDX)).emit(GetItem); // old value
    a.emit(Load(COEFF)).emit(Load(V)).emit(GetItem); // coeff[v]
    a.emit(Load(W)).emit(Mul).emit(Add); // old + coeff[v]*w
    a.emit(SetItem);
    let after1 = a.here();
    a.patch(skip1, after1);
    // yu = y[u]; if yu >= 0 { z[v*k+yu] += coeff[u]*w }
    a.emit(Load(Y)).emit(Load(U)).emit(GetItem).emit(Store(YU));
    a.emit(Load(YU)).emit(Const(0)).emit(Ge);
    let skip2 = a.emit_jump_if_false();
    a.emit(Load(V))
        .emit(Load(K))
        .emit(Mul)
        .emit(Load(YU))
        .emit(Add)
        .emit(Store(IDX));
    a.emit(Load(Z)).emit(Load(IDX));
    a.emit(Load(Z)).emit(Load(IDX)).emit(GetItem);
    a.emit(Load(COEFF)).emit(Load(U)).emit(GetItem);
    a.emit(Load(W)).emit(Mul).emit(Add);
    a.emit(SetItem);
    let after2 = a.here();
    a.patch(skip2, after2);
    // i += 1; goto loop_head
    a.emit(Load(I)).emit(Const(1)).emit(Add).emit(Store(I));
    a.emit(Jump(loop_head));
    let end = a.here();
    a.patch(exit_patch, end);
    a.emit(Halt);
    Program {
        code: a.code,
        constants: vec![Value::Int(0), Value::Int(1)],
    }
}

/// Run GEE through the bytecode interpreter. Semantics identical to
/// `gee_core::serial_reference::embed` (same edge order, same FP order) —
/// the tests assert bit-equality — only the execution substrate differs.
pub fn embed(el: &EdgeList, labels: &Labels) -> Embedding {
    assert_eq!(
        el.num_vertices(),
        labels.len(),
        "labels must cover every vertex"
    );
    let n = el.num_vertices();
    let k = labels.num_classes();
    let s = el.num_edges();
    // Native (NumPy-analog) projection setup.
    let proj = Projection::build_serial(labels);
    // Marshal everything into boxed lists.
    let mut vm = Vm::new(NUM_LOCALS);
    vm.locals[EU] = Value::list(el.edges().iter().map(|e| Value::Int(e.u as i64)).collect());
    vm.locals[EV] = Value::list(el.edges().iter().map(|e| Value::Int(e.v as i64)).collect());
    vm.locals[EW] = Value::list(el.edges().iter().map(|e| Value::Float(e.w)).collect());
    vm.locals[Y] = Value::list(
        labels
            .raw_slice()
            .iter()
            .map(|&y| Value::Int(y as i64))
            .collect(),
    );
    vm.locals[COEFF] = Value::list(proj.as_slice().iter().map(|&c| Value::Float(c)).collect());
    vm.locals[Z] = Value::list(vec![Value::Float(0.0); n * k]);
    vm.locals[K] = Value::Int(k as i64);
    vm.locals[S] = Value::Int(s as i64);
    let program = assemble();
    vm.run(&program).expect("GEE bytecode must execute cleanly");
    // Marshal Z back out.
    let z_list = match &vm.locals[Z] {
        Value::List(l) => l.borrow(),
        other => panic!("Z corrupted to {other:?}"),
    };
    let data: Vec<f64> = z_list
        .iter()
        .map(|v| v.as_f64().expect("Z holds floats"))
        .collect();
    Embedding::from_vec(n, k, data)
}

/// Instructions the VM executes per edge (for cost accounting).
pub fn instructions_per_edge(el: &EdgeList, labels: &Labels) -> f64 {
    if el.num_edges() == 0 {
        return 0.0;
    }
    run_for_stats(el, labels).instructions_executed as f64 / el.num_edges() as f64
}

/// Retired-opcode histogram of the edge loop, heaviest first — the
/// mechanistic breakdown behind the interpreter's 30–50× gap (mostly
/// LOAD/GET_ITEM dispatch and boxed-value traffic, not arithmetic).
pub fn edge_loop_op_histogram(el: &EdgeList, labels: &Labels) -> Vec<(&'static str, u64)> {
    run_for_stats(el, labels).op_histogram()
}

fn run_for_stats(el: &EdgeList, labels: &Labels) -> Vm {
    let mut vm = Vm::new(NUM_LOCALS);
    let proj = Projection::build_serial(labels);
    let n = el.num_vertices();
    let k = labels.num_classes();
    vm.locals[EU] = Value::list(el.edges().iter().map(|e| Value::Int(e.u as i64)).collect());
    vm.locals[EV] = Value::list(el.edges().iter().map(|e| Value::Int(e.v as i64)).collect());
    vm.locals[EW] = Value::list(el.edges().iter().map(|e| Value::Float(e.w)).collect());
    vm.locals[Y] = Value::list(
        labels
            .raw_slice()
            .iter()
            .map(|&y| Value::Int(y as i64))
            .collect(),
    );
    vm.locals[COEFF] = Value::list(proj.as_slice().iter().map(|&c| Value::Float(c)).collect());
    vm.locals[Z] = Value::list(vec![Value::Float(0.0); n * k]);
    vm.locals[K] = Value::Int(k as i64);
    vm.locals[S] = Value::Int(el.num_edges() as i64);
    vm.run(&assemble())
        .expect("GEE bytecode must execute cleanly");
    vm
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_core::serial_reference;
    use gee_gen::LabelSpec;
    use proptest::prelude::*;

    #[test]
    fn bit_identical_to_reference() {
        let el = gee_gen::erdos_renyi_gnm(80, 800, 3);
        let labels = Labels::from_options(&gee_gen::random_labels(
            80,
            LabelSpec {
                num_classes: 5,
                labeled_fraction: 0.4,
            },
            9,
        ));
        let a = serial_reference::embed(&el, &labels);
        let b = embed(&el, &labels);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn weighted_bit_identical() {
        use gee_graph::Edge;
        let edges: Vec<Edge> = (0..300u32)
            .map(|i| Edge::new(i % 25, (i * 3 + 1) % 25, 0.25 + (i % 9) as f64))
            .collect();
        let el = EdgeList::new(25, edges).unwrap();
        let labels = Labels::from_options(&gee_gen::full_labels(25, 4, 2));
        assert_eq!(
            serial_reference::embed(&el, &labels).as_slice(),
            embed(&el, &labels).as_slice()
        );
    }

    #[test]
    fn empty_graph() {
        let el = EdgeList::new(3, vec![]).unwrap();
        let labels = Labels::from_full(&[0, 1, 0]);
        let z = embed(&el, &labels);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn instruction_cost_is_interpreter_scale() {
        let el = gee_gen::erdos_renyi_gnm(50, 2000, 1);
        let labels = Labels::from_options(&gee_gen::full_labels(50, 3, 1));
        let per_edge = instructions_per_edge(&el, &labels);
        // Both branches taken: ~50 instructions/edge. Anything below ~20
        // would mean we're not actually paying interpreter costs.
        assert!(per_edge > 20.0, "suspiciously cheap: {per_edge} instr/edge");
    }

    #[test]
    fn op_histogram_is_dispatch_heavy() {
        let el = gee_gen::erdos_renyi_gnm(40, 1000, 2);
        let labels = Labels::from_options(&gee_gen::full_labels(40, 3, 2));
        let hist = edge_loop_op_histogram(&el, &labels);
        // Data movement (LOAD) must dominate arithmetic (ADD/MUL) — the
        // interpreter's cost is dispatch and boxing, not FLOPs.
        let count = |name: &str| {
            hist.iter()
                .find(|&&(n, _)| n == name)
                .map_or(0, |&(_, c)| c)
        };
        assert_eq!(hist[0].0, "LOAD");
        assert!(count("LOAD") > 2 * (count("ADD") + count("MUL")));
        assert!(count("GET_ITEM") > 0 && count("SET_ITEM") > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Property: the bytecode executor is bit-identical to the native
        /// reference for arbitrary inputs.
        #[test]
        fn prop_bit_identical(n in 2usize..30, seed in 0u64..200, frac in 0.0f64..1.0) {
            let el = gee_gen::erdos_renyi_gnm(n, n * 4, seed);
            let labels = Labels::from_options(&gee_gen::random_labels(
                n,
                LabelSpec { num_classes: 4, labeled_fraction: frac },
                seed,
            ));
            let a = serial_reference::embed(&el, &labels);
            let b = embed(&el, &labels);
            prop_assert_eq!(a.as_slice(), b.as_slice());
        }
    }
}
