//! An interpreted-style GEE executor — the cost model for the paper's
//! "GEE-Python" baseline.
//!
//! The paper's slowest column is the original GEE implementation in
//! CPython: every edge iteration pays bytecode dispatch, boxed float
//! allocation, dynamic type checks, and indexed container access through
//! virtual calls. Shipping CPython inside a Rust reproduction is neither
//! possible offline nor informative; instead this crate reproduces the
//! *mechanisms* that make interpreted code slow:
//!
//! * [`value::Value`] — tagged, heap-indirected dynamic values with
//!   run-time type dispatch on every operation;
//! * [`vm`] — a stack-based bytecode VM with one dispatch per operation;
//! * [`program`] — GEE Algorithm 1's edge loop hand-assembled as bytecode
//!   (the projection init stays native, mirroring the NumPy-vectorized `W`
//!   setup of the real reference implementation whose edge loop is the
//!   documented bottleneck).
//!
//! The measured gap between this executor and `gee_core::serial_optimized`
//! is reported in EXPERIMENTS.md next to the paper's Python/Numba ratio
//! (30–50×).

pub mod program;
pub mod value;
pub mod vm;

pub use program::{edge_loop_op_histogram, embed, instructions_per_edge};
