//! Workload simulator and latency analytics for the serving stack.
//!
//! `gee bench` lives here: a multi-client load generator that speaks the
//! ordinary wire protocol ([`gee_serve::Client`]) against a running
//! server, plus the single-pass analytics that turn its per-request CSV
//! into a `BENCH_*.json` trajectory point.
//!
//! The crate is split along the data flow:
//!
//! - [`mix`] — parse and sample a weighted request mix
//!   (`read=90,write=5,timetravel=3,ann=2`) with a deterministic,
//!   seedable RNG;
//! - [`clock`] — the one latency clock everything shares (also reused by
//!   the CLI's `query --timing`);
//! - [`run`] — the runner: N closed-loop (or rate-paced open-loop)
//!   client threads, one CSV [`Record`](run::Record) per request, and an
//!   optional metrics-polling thread interleaving protocol-v4 server
//!   samples into the same stream;
//! - [`stats`] — streaming five-number summaries and reservoir-free P²
//!   quantile estimates (p50/p99/p999) over those records, single pass,
//!   bounded memory — usable on a live stream or as the
//!   `gee bench-report` stdin→stdout CSV filter;
//! - [`report`] — the shared `BENCH_*.json` envelope (schema
//!   [`report::BENCH_SCHEMA`]) written by `gee bench` and by the bench
//!   bins' `--json` flag, so every emitter lands in one comparable
//!   format.
//!
//! Determinism: every random choice a client makes is drawn from RNGs
//! seeded as pure functions of `(seed, client index)`, so a run's
//! request-type sequence is exactly replayable — the property the
//! deterministic loadgen test pins.

pub mod clock;
pub mod mix;
pub mod report;
pub mod run;
pub mod stats;

pub use clock::elapsed_micros;
pub use mix::{Kind, Mix};
pub use report::{bench_envelope, write_json, BENCH_SCHEMA};
pub use run::{kind_rng, param_rng, run_bench, BenchConfig, BenchOutcome, Record, CSV_HEADER};
pub use stats::{Analysis, P2Quantile, StreamingSummary, TypeSummary};
