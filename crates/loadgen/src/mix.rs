//! Weighted request mixes: parse `read=90,write=5,timetravel=3,ann=2`,
//! sample deterministically.
//!
//! [`Mix::draw`] is public so a test can replay the exact request-type
//! sequence a runner client produced: the sequence is a pure function of
//! the seeded RNG, independent of request parameters and timing.

use rand::{rngs::StdRng, Rng};

/// One request category the load generator can issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// Unpinned read against the newest epoch (rotating
    /// classify/similar/embed-row/stats).
    Read,
    /// An `ApplyUpdates` batch (edge inserts, occasional relabels).
    Write,
    /// A read pinned (`at_epoch`) at the client's last-observed epoch.
    TimeTravel,
    /// A `Similar` query forced onto the IVF approximate path.
    Ann,
}

impl Kind {
    /// All kinds, in mix-string order.
    pub const ALL: [Kind; 4] = [Kind::Read, Kind::Write, Kind::TimeTravel, Kind::Ann];

    /// The mix-string / CSV name of this kind.
    pub fn name(self) -> &'static str {
        match self {
            Kind::Read => "read",
            Kind::Write => "write",
            Kind::TimeTravel => "timetravel",
            Kind::Ann => "ann",
        }
    }
}

/// A weighted request mix. Weights are relative (they need not sum to
/// 100); a kind absent from the mix string has weight 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mix {
    weights: [u32; 4],
    total: u32,
}

impl Mix {
    /// Parse `"read=90,write=5,timetravel=3,ann=2"`. Order is free,
    /// kinds may be omitted, but at least one weight must be positive
    /// and no kind may repeat.
    pub fn parse(s: &str) -> Result<Mix, String> {
        let mut weights = [0u32; 4];
        let mut seen = [false; 4];
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (name, value) = part
                .split_once('=')
                .ok_or_else(|| format!("mix term {part:?} is not name=weight"))?;
            let idx = Kind::ALL
                .iter()
                .position(|k| k.name() == name.trim())
                .ok_or_else(|| {
                    format!(
                        "unknown mix kind {:?} (want read|write|timetravel|ann)",
                        name.trim()
                    )
                })?;
            if seen[idx] {
                return Err(format!("mix kind {:?} given twice", name.trim()));
            }
            seen[idx] = true;
            weights[idx] = value
                .trim()
                .parse::<u32>()
                .map_err(|e| format!("mix weight {:?}: {e}", value.trim()))?;
        }
        Mix::from_weights(weights)
    }

    /// Build from `[read, write, timetravel, ann]` weights.
    pub fn from_weights(weights: [u32; 4]) -> Result<Mix, String> {
        let total: u32 = weights
            .iter()
            .try_fold(0u32, |acc, &w| acc.checked_add(w))
            .ok_or_else(|| "mix weights overflow".to_string())?;
        if total == 0 {
            return Err("mix has no positive weight".to_string());
        }
        Ok(Mix { weights, total })
    }

    /// The weight of one kind.
    pub fn weight(&self, kind: Kind) -> u32 {
        let idx = Kind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("kind in ALL");
        self.weights[idx]
    }

    /// Draw one kind, consuming exactly one `gen_range` step of `rng` —
    /// the determinism contract tests rely on to replay a client's
    /// sequence.
    pub fn draw(&self, rng: &mut StdRng) -> Kind {
        let mut ticket = rng.gen_range(0..self.total);
        for (i, &w) in self.weights.iter().enumerate() {
            if ticket < w {
                return Kind::ALL[i];
            }
            ticket -= w;
        }
        unreachable!("ticket < total = sum of weights")
    }
}

impl std::fmt::Display for Mix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (i, &w) in self.weights.iter().enumerate() {
            if w == 0 {
                continue;
            }
            if !first {
                write!(f, ",")?;
            }
            first = false;
            write!(f, "{}={}", Kind::ALL[i].name(), w)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn parses_and_round_trips() {
        let mix = Mix::parse("read=90,write=5,timetravel=3,ann=2").unwrap();
        assert_eq!(mix.weight(Kind::Read), 90);
        assert_eq!(mix.weight(Kind::Ann), 2);
        assert_eq!(mix.to_string(), "read=90,write=5,timetravel=3,ann=2");
        // Omitted kinds get weight 0; order is free.
        let mix = Mix::parse("ann=1, read=3").unwrap();
        assert_eq!(mix.weight(Kind::Write), 0);
        assert_eq!(mix.to_string(), "read=3,ann=1");
    }

    #[test]
    fn rejects_malformed_mixes() {
        assert!(Mix::parse("").is_err(), "no positive weight");
        assert!(Mix::parse("read=0,write=0").is_err(), "all zero");
        assert!(Mix::parse("red=9").is_err(), "unknown kind");
        assert!(Mix::parse("read=1,read=2").is_err(), "duplicate kind");
        assert!(Mix::parse("read").is_err(), "missing weight");
        assert!(Mix::parse("read=lots").is_err(), "non-numeric weight");
    }

    #[test]
    fn draw_is_deterministic_and_respects_weights() {
        let mix = Mix::parse("read=90,write=5,timetravel=3,ann=2").unwrap();
        let seq = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..2000).map(|_| mix.draw(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(seq(7), seq(7), "same seed, same sequence");
        assert_ne!(seq(7), seq(8), "different seed, different sequence");
        let counts = seq(7).iter().fold([0usize; 4], |mut acc, k| {
            acc[Kind::ALL.iter().position(|x| x == k).unwrap()] += 1;
            acc
        });
        assert!(counts[0] > 1600, "reads dominate a 90% mix: {counts:?}");
        assert!(
            counts[1] > 0 && counts[2] > 0 && counts[3] > 0,
            "{counts:?}"
        );
    }

    #[test]
    fn zero_weight_kind_is_never_drawn() {
        let mix = Mix::parse("read=1").unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..500).all(|_| mix.draw(&mut rng) == Kind::Read));
    }
}
