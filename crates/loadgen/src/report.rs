//! The shared `BENCH_*.json` envelope.
//!
//! Every benchmark emitter in the workspace — `gee bench`,
//! `gee bench-report`, and the bench bins' `--json` flag — writes the
//! same outer shape, so trajectory points across PRs stay comparable:
//!
//! ```json
//! {
//!   "bench": "serve_loadgen",
//!   "schema": "gee-bench-v1",
//!   "meta": { ... run parameters ... },
//!   "per_type": { "read": { "count": ..., "qps": ..., "p50_us": ...,
//!                           "p99_us": ..., "p999_us": ...,
//!                           "error_rate": ... }, ... }
//! }
//! ```
//!
//! Load-generation reports carry `per_type`; micro-benchmark emitters
//! (`serve_throughput --json`, `wire_overhead --json`) put their
//! measurements under `rows` instead, inside the same envelope.

use std::io::Write;
use std::path::Path;

use serde_json::Value;

use crate::stats::Analysis;

/// Schema tag every BENCH report carries.
pub const BENCH_SCHEMA: &str = "gee-bench-v1";

/// The common outer envelope: `bench` name, schema tag, run metadata.
/// Append payload fields (`per_type`, `rows`) with [`push_field`].
pub fn bench_envelope(bench: &str, meta: Value) -> Value {
    Value::Object(vec![
        ("bench".to_string(), Value::String(bench.to_string())),
        (
            "schema".to_string(),
            Value::String(BENCH_SCHEMA.to_string()),
        ),
        ("meta".to_string(), meta),
    ])
}

/// Append a field to a JSON object (panics on non-objects — envelope
/// misuse is a bug, not data).
pub fn push_field(report: &mut Value, key: &str, field: Value) {
    match report {
        Value::Object(pairs) => pairs.push((key.to_string(), field)),
        other => panic!("cannot push field {key:?} onto non-object {other:?}"),
    }
}

/// Render an [`Analysis`] as a full BENCH report with a `per_type`
/// payload (the `gee bench` / `gee bench-report` output shape).
pub fn analysis_report(bench: &str, meta: Value, analysis: &Analysis) -> Value {
    let mut per_type = Vec::new();
    for (kind, summary) in analysis.types() {
        let quantile = |q: &crate::stats::P2Quantile| Value::from(q.estimate().unwrap_or(0.0));
        per_type.push((
            kind.to_string(),
            Value::Object(vec![
                ("count".to_string(), Value::from(summary.latency_us.count)),
                ("qps".to_string(), Value::from(analysis.qps(summary))),
                ("p50_us".to_string(), quantile(&summary.p50)),
                ("p99_us".to_string(), quantile(&summary.p99)),
                ("p999_us".to_string(), quantile(&summary.p999)),
                ("error_rate".to_string(), Value::from(summary.error_rate())),
            ]),
        ));
    }
    let mut report = bench_envelope(bench, meta);
    push_field(&mut report, "per_type", Value::Object(per_type));
    report
}

/// Write a report pretty-printed (greppable by CI) with a trailing
/// newline.
pub fn write_json(path: impl AsRef<Path>, report: &Value) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    let text = serde_json::to_string_pretty(report).expect("reports always serialize");
    file.write_all(text.as_bytes())?;
    file.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{BenchOutcome, Record};
    use serde_json::json;

    #[test]
    fn envelope_has_the_pinned_shape() {
        let mut report = bench_envelope("wire_overhead", json!({"seed": 7}));
        push_field(&mut report, "rows", json!([{"batch": 1, "us": 12.5}]));
        assert_eq!(report["bench"].as_str(), Some("wire_overhead"));
        assert_eq!(report["schema"].as_str(), Some(BENCH_SCHEMA));
        assert_eq!(report["meta"]["seed"].as_u64(), Some(7));
        assert_eq!(report["rows"][0]["us"].as_f64(), Some(12.5));
    }

    #[test]
    fn analysis_report_carries_per_type_stats() {
        let mut analysis = Analysis::new();
        for i in 0..100u64 {
            analysis.ingest(&Record {
                start_us: i * 10,
                client: 0,
                kind: "read".to_string(),
                latency_us: 100 + i,
                outcome: if i == 99 {
                    BenchOutcome::Error
                } else {
                    BenchOutcome::Ok
                },
                epoch: 1,
                detail: String::new(),
            });
        }
        let report = analysis_report("serve_loadgen", json!({"clients": 2}), &analysis);
        let read = &report["per_type"]["read"];
        assert_eq!(read["count"].as_u64(), Some(100));
        assert_eq!(read["error_rate"].as_f64(), Some(0.01));
        let p50 = read["p50_us"].as_f64().unwrap();
        assert!((140.0..=160.0).contains(&p50), "median of 100..200: {p50}");
        assert!(read["qps"].as_f64().unwrap() > 0.0);
        // The report must survive an encode round trip.
        let bytes = serde_json::to_vec(&report).unwrap();
        assert_eq!(serde_json::from_slice::<Value>(&bytes).unwrap(), report);
    }
}
