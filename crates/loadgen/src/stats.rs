//! Single-pass latency analytics: streaming summaries and
//! reservoir-free quantiles.
//!
//! Everything here ingests records one at a time in bounded memory, so
//! the same code analyzes a live run and an arbitrarily large CSV piped
//! through `gee bench-report`. Quantiles use the P² algorithm (Jain &
//! Chlamtac 1985): five markers tracked with parabolic interpolation,
//! giving p50/p99/p999 estimates without storing samples. Below five
//! samples the estimator is exact (it still holds every sample).

use std::collections::HashMap;

use crate::run::{BenchOutcome, Record};

/// Streaming five-number scaffolding: count, min, max, sum (mean).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingSummary {
    pub count: u64,
    pub min: u64,
    pub max: u64,
    pub sum: u64,
}

impl StreamingSummary {
    pub fn new() -> StreamingSummary {
        StreamingSummary {
            count: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum = self.sum.saturating_add(value);
    }

    /// Mean observed value, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

impl Default for StreamingSummary {
    fn default() -> Self {
        Self::new()
    }
}

/// P² streaming estimator for one quantile `q`, O(1) memory.
///
/// The five markers track the minimum, the `q/2`, `q`, and `(1+q)/2`
/// quantiles, and the maximum; marker heights move by piecewise
/// parabolic (fallback linear) interpolation as observations arrive.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights; until five samples arrive this is the exact
    /// sample set instead.
    heights: [f64; 5],
    /// Actual marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Per-observation increments of the desired positions.
    rates: [f64; 5],
    count: u64,
}

impl P2Quantile {
    /// Estimator for quantile `q` in `[0, 1]`. The endpoints are exact:
    /// `q = 0.0` reports the minimum and `q = 1.0` the maximum (the
    /// extreme markers track them precisely), interior quantiles are P²
    /// estimates.
    pub fn new(q: f64) -> P2Quantile {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            rates: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// Ingest one observation.
    pub fn observe(&mut self, value: f64) {
        if self.count < 5 {
            self.heights[self.count as usize] = value;
            self.count += 1;
            if self.count == 5 {
                self.heights.sort_by(f64::total_cmp);
            }
            return;
        }
        self.count += 1;

        // Find the cell k with heights[k] <= value < heights[k+1],
        // stretching the extreme markers to cover outliers.
        let k = if value < self.heights[0] {
            self.heights[0] = value;
            0
        } else if value >= self.heights[4] {
            self.heights[4] = value;
            3
        } else {
            (0..4)
                .rfind(|&i| self.heights[i] <= value)
                .expect("value >= heights[0]")
        };
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.rates[i];
        }

        // Nudge the three interior markers toward their desired
        // positions, adjusting heights by the P² parabolic formula
        // (linear when the parabola would cross a neighbor).
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let ahead = self.positions[i + 1] - self.positions[i];
            let behind = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && ahead > 1.0) || (d <= -1.0 && behind < -1.0) {
                let d = d.signum();
                let parabolic = self.heights[i]
                    + d / (self.positions[i + 1] - self.positions[i - 1])
                        * ((self.positions[i] - self.positions[i - 1] + d)
                            * (self.heights[i + 1] - self.heights[i])
                            / ahead
                            + (self.positions[i + 1] - self.positions[i] - d)
                                * (self.heights[i] - self.heights[i - 1])
                                / -behind);
                self.heights[i] =
                    if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                        parabolic
                    } else {
                        // Linear fallback toward the neighbor in `d`'s
                        // direction.
                        let j = (i as f64 + d) as usize;
                        self.heights[i]
                            + d * (self.heights[j] - self.heights[i])
                                / (self.positions[j] - self.positions[i])
                    };
                self.positions[i] += d;
            }
        }
    }

    /// Current estimate, `None` when empty. Exact (nearest-rank) below
    /// five samples, P² marker height after (exact again at the `q = 0`
    /// and `q = 1` endpoints, which the extreme markers track).
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n @ 1..=4 => {
                let n = n as usize;
                let mut sorted = self.heights[..n].to_vec();
                sorted.sort_by(f64::total_cmp);
                // `ceil(q * n)` is 0 at q = 0.0 (the `rank - 1` index
                // would underflow) and f64 rounding could push it past
                // n; clamp to the valid rank range [1, n].
                let rank = ((self.q * n as f64).ceil() as usize).clamp(1, n);
                Some(sorted[rank - 1])
            }
            _ if self.q == 0.0 => Some(self.heights[0]),
            _ if self.q == 1.0 => Some(self.heights[4]),
            _ => Some(self.heights[2]),
        }
    }

    /// Observations ingested so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Per-request-type aggregation: summary, errors, and the three
/// quantiles the BENCH schema reports.
#[derive(Debug, Clone)]
pub struct TypeSummary {
    pub latency_us: StreamingSummary,
    pub errors: u64,
    pub p50: P2Quantile,
    pub p99: P2Quantile,
    pub p999: P2Quantile,
}

impl TypeSummary {
    pub fn new() -> TypeSummary {
        TypeSummary {
            latency_us: StreamingSummary::new(),
            errors: 0,
            p50: P2Quantile::new(0.5),
            p99: P2Quantile::new(0.99),
            p999: P2Quantile::new(0.999),
        }
    }

    fn observe(&mut self, latency_us: u64, outcome: BenchOutcome) {
        self.latency_us.observe(latency_us);
        if outcome == BenchOutcome::Error {
            self.errors += 1;
        }
        let v = latency_us as f64;
        self.p50.observe(v);
        self.p99.observe(v);
        self.p999.observe(v);
    }

    /// Fraction of requests that failed.
    pub fn error_rate(&self) -> f64 {
        if self.latency_us.count == 0 {
            0.0
        } else {
            self.errors as f64 / self.latency_us.count as f64
        }
    }
}

impl Default for TypeSummary {
    fn default() -> Self {
        Self::new()
    }
}

/// Single-pass analysis of a record stream: per-type summaries,
/// wall-clock span, and epoch-lag tracking.
///
/// Epoch lag measures staleness of the data plane as clients see it:
/// for each record, the gap between the newest epoch *any* record has
/// reported so far and this record's observed epoch. A lag of zero
/// means every client (and the server's own metrics endpoint) kept up
/// with the write frontier.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    per_type: HashMap<String, TypeSummary>,
    records: u64,
    first_start_us: u64,
    last_end_us: u64,
    max_epoch: u64,
    max_epoch_lag: u64,
}

impl Analysis {
    pub fn new() -> Analysis {
        Analysis {
            first_start_us: u64::MAX,
            ..Analysis::default()
        }
    }

    /// Ingest one record.
    pub fn ingest(&mut self, record: &Record) {
        self.records += 1;
        self.first_start_us = self.first_start_us.min(record.start_us);
        self.last_end_us = self
            .last_end_us
            .max(record.start_us.saturating_add(record.latency_us));
        if record.outcome == BenchOutcome::Ok {
            self.max_epoch_lag = self
                .max_epoch_lag
                .max(self.max_epoch.saturating_sub(record.epoch));
            self.max_epoch = self.max_epoch.max(record.epoch);
        }
        self.per_type
            .entry(record.kind.clone())
            .or_default()
            .observe(record.latency_us, record.outcome);
    }

    /// Ingest one CSV line, skipping the header row.
    pub fn ingest_csv_line(&mut self, line: &str) -> Result<(), String> {
        let line = line.trim_end_matches(['\n', '\r']);
        if line.is_empty() || line == crate::run::CSV_HEADER {
            return Ok(());
        }
        self.ingest(&Record::from_csv_row(line)?);
        Ok(())
    }

    /// Records ingested.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Wall-clock span covered by the records, in seconds (first
    /// request start to last reply).
    pub fn span_secs(&self) -> f64 {
        if self.records == 0 {
            return 0.0;
        }
        (self.last_end_us.saturating_sub(self.first_start_us)) as f64 / 1e6
    }

    /// Newest epoch observed across all records.
    pub fn max_epoch(&self) -> u64 {
        self.max_epoch
    }

    /// Worst staleness observed (see type docs).
    pub fn max_epoch_lag(&self) -> u64 {
        self.max_epoch_lag
    }

    /// The per-type summaries, sorted by type name.
    pub fn types(&self) -> Vec<(&str, &TypeSummary)> {
        let mut types: Vec<_> = self.per_type.iter().map(|(k, v)| (k.as_str(), v)).collect();
        types.sort_by_key(|(k, _)| *k);
        types
    }

    /// Throughput of one type over the whole-run span, requests/sec.
    pub fn qps(&self, summary: &TypeSummary) -> f64 {
        let span = self.span_secs();
        if span <= 0.0 {
            0.0
        } else {
            summary.latency_us.count as f64 / span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(kind: &str, start_us: u64, latency_us: u64, outcome: BenchOutcome) -> Record {
        Record {
            start_us,
            client: 0,
            kind: kind.to_string(),
            latency_us,
            outcome,
            epoch: 0,
            detail: String::new(),
        }
    }

    #[test]
    fn summary_tracks_extremes_and_mean() {
        let mut s = StreamingSummary::new();
        assert_eq!(s.mean(), None);
        for v in [10, 30, 20] {
            s.observe(v);
        }
        assert_eq!((s.count, s.min, s.max, s.sum), (3, 10, 30, 60));
        assert_eq!(s.mean(), Some(20.0));
    }

    #[test]
    fn p2_is_exact_below_five_samples() {
        let mut q = P2Quantile::new(0.5);
        assert_eq!(q.estimate(), None);
        q.observe(9.0);
        assert_eq!(q.estimate(), Some(9.0));
        q.observe(1.0);
        q.observe(5.0);
        assert_eq!(q.estimate(), Some(5.0), "median of {{1,5,9}}");
    }

    #[test]
    fn p2_median_converges_on_uniform_stream() {
        let mut q = P2Quantile::new(0.5);
        // A deterministic low-discrepancy sweep of [0, 1000).
        for i in 0..10_000u64 {
            q.observe((i * 613) as f64 % 1000.0);
        }
        let est = q.estimate().unwrap();
        assert!((est - 500.0).abs() < 25.0, "median estimate {est} off");
    }

    #[test]
    fn p2_tail_quantile_converges() {
        let mut q = P2Quantile::new(0.99);
        for i in 0..10_000u64 {
            q.observe((i * 613) as f64 % 1000.0);
        }
        let est = q.estimate().unwrap();
        assert!((est - 990.0).abs() < 20.0, "p99 estimate {est} off");
        assert_eq!(q.count(), 10_000);
    }

    #[test]
    fn p2_endpoint_quantiles_are_exact() {
        // q = 0.0 and q = 1.0 must not underflow the small-sample rank
        // and must stay exact (min/max) past the five-sample cutover.
        for (q, expect) in [(0.0, 0.0), (1.0, 999.0)] {
            let mut est = P2Quantile::new(q);
            assert_eq!(est.estimate(), None, "count 0 has no estimate");
            est.observe(7.0);
            assert_eq!(est.estimate(), Some(7.0), "count 1 is the sample");
            for i in 0..1000u64 {
                est.observe((i * 613) as f64 % 1000.0);
            }
            assert_eq!(est.estimate(), Some(expect), "q={q} is exact");
        }
    }

    #[test]
    fn p2_single_sample_serves_every_quantile() {
        for q in [0.0, 0.001, 0.5, 0.999, 1.0] {
            let mut est = P2Quantile::new(q);
            est.observe(42.0);
            assert_eq!(est.estimate(), Some(42.0), "q={q}");
        }
    }

    #[test]
    fn p2_handles_constant_stream() {
        let mut q = P2Quantile::new(0.999);
        for _ in 0..1000 {
            q.observe(42.0);
        }
        assert_eq!(q.estimate(), Some(42.0));
    }

    #[test]
    fn analysis_aggregates_per_type() {
        let mut a = Analysis::new();
        a.ingest(&record("read", 0, 100, BenchOutcome::Ok));
        a.ingest(&record("read", 50, 300, BenchOutcome::Ok));
        a.ingest(&record("write", 100, 900, BenchOutcome::Error));
        assert_eq!(a.records(), 3);
        assert_eq!(a.span_secs(), 0.001, "0 .. 100+900 µs");
        let types = a.types();
        assert_eq!(
            types.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            ["read", "write"]
        );
        let read = &types[0].1;
        assert_eq!(read.latency_us.count, 2);
        assert_eq!(read.errors, 0);
        assert_eq!(read.error_rate(), 0.0);
        let write = &types[1].1;
        assert_eq!(write.error_rate(), 1.0);
        assert_eq!(a.qps(read), 2000.0, "2 requests in 1ms span");
    }

    #[test]
    fn analysis_tracks_epoch_lag() {
        let mut a = Analysis::new();
        let with_epoch = |epoch| Record {
            epoch,
            ..record("read", 0, 1, BenchOutcome::Ok)
        };
        a.ingest(&with_epoch(5));
        a.ingest(&with_epoch(9));
        a.ingest(&with_epoch(7));
        assert_eq!(a.max_epoch(), 9);
        assert_eq!(a.max_epoch_lag(), 2, "7 observed after 9 was seen");
    }

    #[test]
    fn analysis_ingests_csv_with_header() {
        let mut a = Analysis::new();
        a.ingest_csv_line(crate::run::CSV_HEADER).unwrap();
        a.ingest_csv_line("0,0,read,120,ok,3,\n").unwrap();
        a.ingest_csv_line("").unwrap();
        assert!(a.ingest_csv_line("garbage").is_err());
        assert_eq!(a.records(), 1);
    }
}
