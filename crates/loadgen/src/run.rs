//! The load-generator runner: N client threads, one CSV record per
//! request, optional protocol-v4 metrics polling interleaved into the
//! same stream.
//!
//! The runner is generic over how clients are made (a `connect` closure
//! returning a handshaken [`Client`]), so the deterministic duplex test
//! and the real `gee bench --connect` TCP path drive the exact same
//! code. Each client owns two RNGs, both pure functions of
//! `(seed, client index)`:
//!
//! - the **kind** RNG decides the request-type sequence, consuming
//!   exactly one draw per request ([`Mix::draw`]) — so a test can
//!   replay the sequence with [`kind_rng`] and predict per-type counts
//!   exactly;
//! - the **param** RNG decides request parameters (vertices, weights,
//!   labels), keeping parameter entropy from perturbing the kind
//!   stream.
//!
//! Closed loop by default (next request as soon as the last returns);
//! [`BenchConfig::target_qps`] switches to open loop, pacing each
//! client on a fixed schedule so queue delay shows up as latency
//! instead of back-pressure on the arrival process.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use rand::{rngs::StdRng, Rng, SeedableRng};

use gee_serve::{Client, Request, Response, SearchPolicy, ServeError, Update};

use crate::clock::elapsed_micros;
use crate::mix::{Kind, Mix};

/// Seed-stream tags: the kind and param RNGs must never collide even
/// though both derive from the same `(seed, client)` pair.
const KIND_STREAM: u64 = 0x6b69_6e64_0000_0000;
const PARAM_STREAM: u64 = 0x7061_7261_0000_0000;

/// The request-kind RNG of client `client` in a run seeded `seed`.
/// Public so tests can replay a client's exact type sequence.
pub fn kind_rng(seed: u64, client: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ KIND_STREAM ^ client as u64)
}

/// The request-parameter RNG of client `client` in a run seeded `seed`.
pub fn param_rng(seed: u64, client: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ PARAM_STREAM ^ client as u64)
}

/// One load-generation run, fully specified.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Graph every request addresses.
    pub graph: String,
    /// Weighted request mix.
    pub mix: Mix,
    /// Concurrent client connections.
    pub clients: usize,
    /// Master seed; all randomness derives from `(seed, client)`.
    pub seed: u64,
    /// Stop after this wall-clock duration…
    pub duration: Option<Duration>,
    /// …or after each client issued exactly this many requests (the
    /// deterministic mode; at least one bound must be set, and the
    /// first reached wins).
    pub requests_per_client: Option<u64>,
    /// Open-loop mode: pace clients to this *total* arrival rate
    /// (requests/second across all clients). `None` is closed loop.
    pub target_qps: Option<f64>,
    /// Poll the server's protocol-v4 `Metrics` endpoint at this
    /// interval on a dedicated extra connection, interleaving `server`
    /// records into the stream.
    pub poll_metrics: Option<Duration>,
}

impl BenchConfig {
    /// A closed-loop config with everything but the bounds defaulted.
    pub fn new(graph: impl Into<String>, mix: Mix, clients: usize, seed: u64) -> BenchConfig {
        BenchConfig {
            graph: graph.into(),
            mix,
            clients,
            seed,
            duration: None,
            requests_per_client: None,
            target_qps: None,
            poll_metrics: None,
        }
    }
}

/// Did a request succeed?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchOutcome {
    Ok,
    Error,
}

impl BenchOutcome {
    pub fn name(self) -> &'static str {
        match self {
            BenchOutcome::Ok => "ok",
            BenchOutcome::Error => "error",
        }
    }
}

/// CSV header line for [`Record`] streams.
pub const CSV_HEADER: &str = "start_us,client,kind,latency_us,outcome,epoch,detail";

/// One request observation — a CSV row. Client rows carry a [`Kind`]
/// name in `kind`; rows from the metrics poller carry `"server"` and a
/// counter digest in `detail`.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Wall-clock request start, µs since the run began.
    pub start_us: u64,
    /// Issuing client index (the metrics poller is index
    /// `config.clients`).
    pub client: u32,
    /// `read` | `write` | `timetravel` | `ann` | `server`.
    pub kind: String,
    /// Round-trip latency in µs ([`elapsed_micros`]).
    pub latency_us: u64,
    pub outcome: BenchOutcome,
    /// The epoch the client had observed when the reply landed (server
    /// rows: the server's published epoch).
    pub epoch: u64,
    /// Error text or server-counter digest; empty for plain successes.
    pub detail: String,
}

impl Record {
    /// Encode as one CSV row (no quoting: `detail` is sanitized so the
    /// row always splits on exactly six commas).
    pub fn to_csv_row(&self) -> String {
        let detail = self.detail.replace([',', '\n', '\r'], ";");
        format!(
            "{},{},{},{},{},{},{}",
            self.start_us,
            self.client,
            self.kind,
            self.latency_us,
            self.outcome.name(),
            self.epoch,
            detail
        )
    }

    /// Parse one CSV row (the inverse of [`Record::to_csv_row`]).
    pub fn from_csv_row(row: &str) -> Result<Record, String> {
        let mut parts = row.splitn(7, ',');
        let mut field = |name: &str| {
            parts
                .next()
                .ok_or_else(|| format!("row {row:?}: missing field {name}"))
        };
        let parse_u64 = |name: &str, s: &str| {
            s.trim()
                .parse::<u64>()
                .map_err(|e| format!("row field {name}={s:?}: {e}"))
        };
        let start_us = parse_u64("start_us", field("start_us")?)?;
        let client = parse_u64("client", field("client")?)? as u32;
        let kind = field("kind")?.trim().to_string();
        let latency_us = parse_u64("latency_us", field("latency_us")?)?;
        let outcome = match field("outcome")?.trim() {
            "ok" => BenchOutcome::Ok,
            "error" => BenchOutcome::Error,
            other => return Err(format!("row outcome {other:?}: want ok|error")),
        };
        let epoch = parse_u64("epoch", field("epoch")?)?;
        let detail = field("detail")?.to_string();
        Ok(Record {
            start_us,
            client,
            kind,
            latency_us,
            outcome,
            epoch,
            detail,
        })
    }
}

/// What one client learned about the graph, updated as replies land.
struct ClientState {
    num_vertices: u32,
    dim: usize,
    num_labeled: usize,
    /// Newest epoch this client has observed (from unpinned `Stats` and
    /// `Applied` replies) — the pin target for time-travel reads.
    last_epoch: u64,
    reads_issued: u64,
    writes_issued: u64,
    travels_issued: u64,
}

impl ClientState {
    /// Pick a vertex uniformly.
    fn vertex(&self, rng: &mut StdRng) -> u32 {
        rng.gen_range(0..self.num_vertices.max(1))
    }

    /// Synthesize the next request of `kind` from the param RNG.
    fn synthesize(&mut self, kind: Kind, rng: &mut StdRng) -> Request {
        match kind {
            Kind::Read => {
                let turn = self.reads_issued;
                self.reads_issued += 1;
                match turn % 4 {
                    // Classification needs labeled rows; fall back to
                    // the embedding read on an unlabeled graph.
                    0 if self.num_labeled > 0 => {
                        Request::classify(vec![self.vertex(rng), self.vertex(rng)], 3)
                    }
                    0 | 2 => Request::embed_row(self.vertex(rng)),
                    1 => Request::similar(self.vertex(rng), 5),
                    // Every fourth read is `Stats`, keeping
                    // `last_epoch` fresh for time-travel pins.
                    _ => Request::stats(),
                }
            }
            Kind::Write => {
                let turn = self.writes_issued;
                self.writes_issued += 1;
                let update = if turn % 8 == 7 && self.dim > 0 {
                    Update::SetLabel {
                        v: self.vertex(rng),
                        label: Some(rng.gen_range(0..self.dim as u32)),
                    }
                } else {
                    let u = self.vertex(rng);
                    let mut v = self.vertex(rng);
                    if v == u {
                        v = (v + 1) % self.num_vertices.max(2);
                    }
                    Update::InsertEdge {
                        u,
                        v,
                        w: 1.0 + rng.gen::<f64>(),
                    }
                };
                Request::ApplyUpdates {
                    updates: vec![update],
                }
            }
            Kind::TimeTravel => {
                let turn = self.travels_issued;
                self.travels_issued += 1;
                let read = if turn % 2 == 0 {
                    Request::embed_row(self.vertex(rng))
                } else {
                    Request::stats()
                };
                read.pinned(self.last_epoch)
            }
            Kind::Ann => Request::similar(self.vertex(rng), 10).with_search(SearchPolicy::ann(8)),
        }
    }

    /// Fold a reply into the state. Pinned stats describe an old epoch
    /// and must not move `last_epoch` backwards.
    fn observe(&mut self, response: &Response) {
        match response {
            Response::Applied { epoch, .. } => self.last_epoch = self.last_epoch.max(*epoch),
            Response::Stats(report) => {
                self.last_epoch = self.last_epoch.max(report.epoch);
                self.num_vertices = report.num_vertices as u32;
                self.num_labeled = report.num_labeled;
                self.dim = report.dim;
            }
            _ => {}
        }
    }
}

/// Run one bench: spawn `config.clients` client threads (plus a metrics
/// poller if configured), drive the mix, and return every [`Record`]
/// sorted by start time. The `connect` closure is called once per
/// thread and must hand back a freshly handshaken [`Client`].
///
/// Errors are two-tier, mirroring the protocol: per-request failures
/// become `outcome = error` records and the run continues;
/// connection-level failures (transport loss, handshake refusal) abort
/// the run with the error.
pub fn run_bench<F>(config: &BenchConfig, connect: F) -> Result<Vec<Record>, ServeError>
where
    F: Fn() -> Result<Client, ServeError> + Sync,
{
    assert!(config.clients > 0, "bench needs at least one client");
    assert!(
        config.duration.is_some() || config.requests_per_client.is_some(),
        "bench needs a duration or a per-client request count"
    );
    let base = Instant::now();
    let deadline = config.duration.map(|d| base + d);
    let stop_polling = AtomicBool::new(false);
    let connect = &connect;
    let stop_polling = &stop_polling;

    let (mut records, poll_records) =
        std::thread::scope(|scope| -> Result<(Vec<Record>, Vec<Record>), ServeError> {
            let poller = config.poll_metrics.map(|interval| {
                scope.spawn(move || poll_metrics(config, connect, base, interval, stop_polling))
            });
            let clients: Vec<_> = (0..config.clients)
                .map(|i| scope.spawn(move || run_client(config, connect, base, deadline, i)))
                .collect();
            let mut records = Vec::new();
            let mut first_error = None;
            for handle in clients {
                match handle.join().expect("client thread must not panic") {
                    Ok(mut r) => records.append(&mut r),
                    Err(e) => first_error = first_error.or(Some(e)),
                }
            }
            stop_polling.store(true, Ordering::SeqCst);
            let poll_records = match poller {
                Some(handle) => handle.join().expect("poller thread must not panic")?,
                None => Vec::new(),
            };
            match first_error {
                Some(e) => Err(e),
                None => Ok((records, poll_records)),
            }
        })?;

    records.extend(poll_records);
    records.sort_by_key(|r| (r.start_us, r.client));
    Ok(records)
}

/// One client's request loop.
fn run_client(
    config: &BenchConfig,
    connect: &(impl Fn() -> Result<Client, ServeError> + Sync),
    base: Instant,
    deadline: Option<Instant>,
    client_index: usize,
) -> Result<Vec<Record>, ServeError> {
    let mut client = connect()?;
    let mut kinds = kind_rng(config.seed, client_index);
    let mut params = param_rng(config.seed, client_index);

    // Learn the graph's shape before the measured run (unrecorded).
    let report = client.stats(&config.graph)?;
    let mut state = ClientState {
        num_vertices: report.num_vertices as u32,
        dim: report.dim,
        num_labeled: report.num_labeled,
        last_epoch: report.epoch,
        reads_issued: 0,
        writes_issued: 0,
        travels_issued: 0,
    };

    // Open-loop pacing: each client fires on its own fixed grid, the
    // grids staggered so the aggregate arrival process is smooth.
    let pace = config.target_qps.map(|qps| {
        let interval = Duration::from_secs_f64(config.clients as f64 / qps.max(f64::MIN_POSITIVE));
        let offset = interval.mul_f64(client_index as f64 / config.clients as f64);
        (interval, base + offset)
    });

    let mut records = Vec::new();
    let mut issued = 0u64;
    loop {
        if let Some(n) = config.requests_per_client {
            if issued >= n {
                break;
            }
        }
        if let Some((interval, first)) = pace {
            let due = first + interval.mul_f64(issued as f64);
            if let Some(d) = deadline {
                if due >= d {
                    break;
                }
            }
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                break;
            }
        }

        let kind = config.mix.draw(&mut kinds);
        let request = state.synthesize(kind, &mut params);
        let start_us = elapsed_micros(base);
        let started = Instant::now();
        let result = client.execute(&config.graph, request);
        let latency_us = elapsed_micros(started);
        issued += 1;
        let (outcome, detail) = match &result {
            Ok(response) => {
                state.observe(response);
                (BenchOutcome::Ok, String::new())
            }
            // Typed per-request errors (unknown vertex, evicted epoch,
            // back-pressure) are data, not run failures.
            Err(e) => (BenchOutcome::Error, e.to_string()),
        };
        records.push(Record {
            start_us,
            client: client_index as u32,
            kind: kind.name().to_string(),
            latency_us,
            outcome,
            epoch: state.last_epoch,
            detail,
        });
    }
    let _ = client.goodbye();
    Ok(records)
}

/// The metrics poller: sample the protocol-v4 `Metrics` endpoint until
/// told to stop, emitting one `server` record per sample.
fn poll_metrics(
    config: &BenchConfig,
    connect: &(impl Fn() -> Result<Client, ServeError> + Sync),
    base: Instant,
    interval: Duration,
    stop: &AtomicBool,
) -> Result<Vec<Record>, ServeError> {
    let mut client = connect()?;
    let mut records = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        let start_us = elapsed_micros(base);
        let started = Instant::now();
        let result = client.metrics(&config.graph);
        let latency_us = elapsed_micros(started);
        let (outcome, epoch, detail) = match result {
            Ok(m) => (
                BenchOutcome::Ok,
                m.epoch,
                format!(
                    "queries={} updates={} overloaded={} wal_fsyncs={} \
                     ivf_builds={} ivf_hits={} history_depth={} ann_shards={}",
                    m.queries_served,
                    m.updates_applied,
                    m.overloaded,
                    m.wal_fsyncs,
                    m.ivf_builds,
                    m.ivf_hits,
                    m.history_depth,
                    m.ann_indexed_shards
                ),
            ),
            Err(e) => (BenchOutcome::Error, 0, e.to_string()),
        };
        records.push(Record {
            start_us,
            client: config.clients as u32,
            kind: "server".to_string(),
            latency_us,
            outcome,
            epoch,
            detail,
        });
        // Sleep in short slices so a finished run isn't held open for
        // the tail of a long interval.
        let wake = Instant::now() + interval;
        while Instant::now() < wake && !stop.load(Ordering::SeqCst) {
            std::thread::sleep(interval.min(Duration::from_millis(20)));
        }
    }
    let _ = client.goodbye();
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_csv_round_trips() {
        let record = Record {
            start_us: 123,
            client: 2,
            kind: "read".to_string(),
            latency_us: 456,
            outcome: BenchOutcome::Ok,
            epoch: 7,
            detail: String::new(),
        };
        assert_eq!(record.to_csv_row(), "123,2,read,456,ok,7,");
        assert_eq!(Record::from_csv_row(&record.to_csv_row()).unwrap(), record);
    }

    #[test]
    fn record_csv_sanitizes_detail() {
        let record = Record {
            start_us: 1,
            client: 0,
            kind: "write".to_string(),
            latency_us: 2,
            outcome: BenchOutcome::Error,
            epoch: 0,
            detail: "bad, very\nbad".to_string(),
        };
        let row = record.to_csv_row();
        assert_eq!(row, "1,0,write,2,error,0,bad; very;bad");
        let parsed = Record::from_csv_row(&row).unwrap();
        assert_eq!(parsed.detail, "bad; very;bad");
    }

    #[test]
    fn malformed_rows_are_rejected() {
        for bad in ["", "1,2,read", "x,0,read,1,ok,0,", "1,0,read,1,maybe,0,"] {
            assert!(Record::from_csv_row(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn kind_rng_is_a_pure_function_of_seed_and_client() {
        let draw = |seed, client| {
            let mix = Mix::parse("read=90,write=5,timetravel=3,ann=2").unwrap();
            let mut rng = kind_rng(seed, client);
            (0..100).map(|_| mix.draw(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(9, 0), draw(9, 0));
        assert_ne!(draw(9, 0), draw(9, 1), "clients draw distinct streams");
        assert_ne!(draw(9, 0), draw(10, 0), "seeds draw distinct streams");
    }
}
