//! The one latency clock: monotonic `Instant` deltas in microseconds.
//!
//! Every latency number this crate records — and the CLI's
//! `query --timing` — goes through [`elapsed_micros`], so client-side
//! measurements are comparable across tools by construction.

use std::time::Instant;

/// Microseconds elapsed since `start`, saturating at `u64::MAX`
/// (~585 millennia — a stuck clock, not a real latency).
pub fn elapsed_micros(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let start = Instant::now();
        let a = elapsed_micros(start);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = elapsed_micros(start);
        assert!(b >= a + 1_000, "2ms sleep must advance the clock: {a} {b}");
    }
}
