//! Determinism contract of the load generator: a seeded run over the
//! in-process duplex transport is exactly replayable.
//!
//! Two clients execute a fixed per-client request count against a real
//! `Server` (full wire protocol, real `Engine`); the test replays each
//! client's kind RNG to predict the per-type counts *exactly*, and pins
//! that the run sees monotone epochs and zero errors.

use std::collections::HashMap;
use std::sync::Arc;

use gee_core::Labels;
use gee_loadgen::run::{kind_rng, run_bench};
use gee_loadgen::{Analysis, BenchConfig, BenchOutcome, Mix};
use gee_serve::{duplex, Client, Engine, HistoryPolicy, Registry, RegistryConfig, Server};

const N: usize = 150;
const K: usize = 5;
const SEED: u64 = 20240607;
const CLIENTS: usize = 2;
const REQUESTS_PER_CLIENT: u64 = 200;

/// An engine with deep enough epoch history that pins at any observed
/// epoch stay resolvable for the whole run.
fn bench_engine() -> Arc<Engine> {
    let el = gee_gen::erdos_renyi_gnm(N, 1200, 77);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(
            N,
            gee_gen::LabelSpec {
                num_classes: K,
                labeled_fraction: 0.3,
            },
            5,
        ),
        K,
    );
    let reg = Registry::with_config(RegistryConfig {
        default_shards: 4,
        history: HistoryPolicy::keep(1024),
        ..RegistryConfig::default()
    })
    .expect("in-memory registry opens");
    reg.register("g", &el, &labels).unwrap();
    Arc::new(Engine::new(Arc::new(reg)))
}

fn config() -> BenchConfig {
    let mix = Mix::parse("read=80,write=10,timetravel=6,ann=4").unwrap();
    BenchConfig {
        requests_per_client: Some(REQUESTS_PER_CLIENT),
        ..BenchConfig::new("g", mix, CLIENTS, SEED)
    }
}

/// Run the bench over duplex transports against `engine`.
fn run(engine: &Arc<Engine>) -> Vec<gee_loadgen::Record> {
    run_bench(&config(), || {
        let (server_end, client_end) = duplex();
        let engine = engine.clone();
        std::thread::spawn(move || {
            let mut transport = server_end;
            let _ = Server::new(engine).serve_connection(&mut transport);
        });
        Client::over(client_end)
    })
    .expect("bench run completes")
}

#[test]
fn seeded_run_matches_replayed_kind_sequence_exactly() {
    let records = run(&bench_engine());
    assert_eq!(
        records.len(),
        CLIENTS * REQUESTS_PER_CLIENT as usize,
        "every request produces exactly one record"
    );

    // Replay each client's kind RNG: the per-client, per-type counts
    // must match the run exactly.
    let mix = config().mix;
    for client in 0..CLIENTS {
        let mut expected: HashMap<&str, u64> = HashMap::new();
        let mut rng = kind_rng(SEED, client);
        for _ in 0..REQUESTS_PER_CLIENT {
            *expected.entry(mix.draw(&mut rng).name()).or_default() += 1;
        }
        let mut observed: HashMap<&str, u64> = HashMap::new();
        for r in records.iter().filter(|r| r.client == client as u32) {
            *observed
                .entry(match r.kind.as_str() {
                    "read" => "read",
                    "write" => "write",
                    "timetravel" => "timetravel",
                    "ann" => "ann",
                    other => panic!("unexpected kind {other:?}"),
                })
                .or_default() += 1;
        }
        assert_eq!(observed, expected, "client {client} type counts");
        assert!(
            expected.len() == 4,
            "a 200-request draw must exercise all four kinds: {expected:?}"
        );
    }

    // Zero errors: every request kind is satisfiable (history is deep,
    // vertices are in range, the mix never pins an evicted epoch).
    let errors: Vec<_> = records
        .iter()
        .filter(|r| r.outcome == BenchOutcome::Error)
        .collect();
    assert!(errors.is_empty(), "unexpected errors: {errors:?}");

    // Monotone epochs per client: `last_epoch` never moves backwards.
    for client in 0..CLIENTS as u32 {
        let epochs: Vec<u64> = records
            .iter()
            .filter(|r| r.client == client)
            .map(|r| r.epoch)
            .collect();
        assert!(
            epochs.windows(2).all(|w| w[0] <= w[1]),
            "client {client} observed a non-monotone epoch sequence"
        );
    }
    // Writes actually advanced the graph.
    assert!(
        records.iter().map(|r| r.epoch).max().unwrap() > 0,
        "the write mix must advance the epoch"
    );
}

#[test]
fn analysis_of_a_clean_run_reports_zero_error_rate() {
    let records = run(&bench_engine());
    let mut analysis = Analysis::new();
    // Round-trip through CSV: the analysis path `gee bench-report`
    // uses must see exactly what the runner wrote.
    for r in &records {
        analysis.ingest_csv_line(&r.to_csv_row()).unwrap();
    }
    assert_eq!(analysis.records(), records.len() as u64);
    let types = analysis.types();
    assert_eq!(
        types.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
        ["ann", "read", "timetravel", "write"]
    );
    for (kind, summary) in types {
        assert_eq!(summary.error_rate(), 0.0, "{kind} must be error-free");
        assert!(summary.p50.estimate().is_some(), "{kind} has latencies");
        assert!(analysis.qps(summary) > 0.0, "{kind} has throughput");
    }
    assert!(analysis.span_secs() > 0.0);
}
