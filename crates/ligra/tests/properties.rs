//! Property-based tests of the engine: every traversal strategy visits the
//! same edge multiset, and primitives match their serial specifications.

use std::sync::atomic::{AtomicU64, Ordering};

use gee_graph::{CsrGraph, Edge, EdgeList, VertexId, Weight};
use gee_ligra::prim::{exclusive_scan, pack, pack_indices};
use gee_ligra::{edge_map, AtomicF64Vec, EdgeMapFn, EdgeMapOptions, TraversalKind, VertexSubset};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (2usize..50).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..150).prop_map(move |pairs| {
            let edges = pairs.into_iter().map(|(u, v)| Edge::unit(u, v)).collect();
            EdgeList::new_unchecked(n, edges)
        })
    })
}

/// Records a commutative fingerprint of visited edges (sum of hashes), so
/// visit *sets* can be compared across traversal orders.
struct Fingerprint {
    acc: AtomicU64,
}

impl Fingerprint {
    fn new() -> Self {
        Fingerprint {
            acc: AtomicU64::new(0),
        }
    }
    fn value(&self) -> u64 {
        self.acc.load(Ordering::Relaxed)
    }
}

fn edge_hash(s: u32, d: u32) -> u64 {
    let mut x = ((s as u64) << 32) | d as u64;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl EdgeMapFn for Fingerprint {
    fn update(&self, s: VertexId, d: VertexId, _w: Weight) -> bool {
        self.acc.fetch_add(edge_hash(s, d), Ordering::Relaxed);
        false
    }
    fn update_atomic(&self, s: VertexId, d: VertexId, w: Weight) -> bool {
        self.update(s, d, w)
    }
}

proptest! {
    /// Sparse, dense-forward, and dense-pull traversals of a full frontier
    /// visit exactly the same edge multiset.
    #[test]
    fn traversals_visit_same_edges(el in arb_graph()) {
        let mut g = CsrGraph::from_edge_list(&el);
        g.ensure_transpose();
        let n = g.num_vertices();
        let frontier = VertexSubset::full(n);
        let mut values = Vec::new();
        for kind in [TraversalKind::Sparse, TraversalKind::DenseForward, TraversalKind::DensePull] {
            let f = Fingerprint::new();
            edge_map(&g, &frontier, &f, EdgeMapOptions { kind, no_output: true });
            values.push(f.value());
        }
        prop_assert_eq!(values[0], values[1]);
        prop_assert_eq!(values[1], values[2]);
    }

    /// Partial frontiers: sparse and dense-forward agree.
    #[test]
    fn partial_frontier_agreement(el in arb_graph(), mask_seed in 0u64..1000) {
        let g = CsrGraph::from_edge_list(&el);
        let n = g.num_vertices();
        let ids: Vec<u32> = (0..n as u32).filter(|&v| (v as u64).wrapping_mul(mask_seed + 1).is_multiple_of(3)).collect();
        let frontier = VertexSubset::from_ids(n, ids);
        let f1 = Fingerprint::new();
        edge_map(&g, &frontier, &f1, EdgeMapOptions { kind: TraversalKind::Sparse, no_output: true });
        let f2 = Fingerprint::new();
        edge_map(&g, &frontier, &f2, EdgeMapOptions { kind: TraversalKind::DenseForward, no_output: true });
        prop_assert_eq!(f1.value(), f2.value());
    }

    /// Output frontiers match between strategies (as sets).
    #[test]
    fn output_frontiers_match(el in arb_graph()) {
        struct MarkAll;
        impl EdgeMapFn for MarkAll {
            fn update(&self, _s: u32, _d: u32, _w: f64) -> bool { true }
            fn update_atomic(&self, _s: u32, _d: u32, _w: f64) -> bool { true }
        }
        let g = CsrGraph::from_edge_list(&el);
        let n = g.num_vertices();
        let frontier = VertexSubset::full(n);
        let mut outs = Vec::new();
        for kind in [TraversalKind::Sparse, TraversalKind::DenseForward] {
            let next = edge_map(&g, &frontier, &MarkAll, EdgeMapOptions { kind, no_output: false });
            let mut ids = next.to_ids();
            ids.sort_unstable();
            outs.push(ids);
        }
        prop_assert_eq!(&outs[0], &outs[1]);
    }

    /// Scan matches the serial specification.
    #[test]
    fn scan_matches_serial(xs in proptest::collection::vec(0usize..100, 0..500)) {
        let (scan, total) = exclusive_scan(&xs);
        let mut acc = 0;
        for (i, &x) in xs.iter().enumerate() {
            prop_assert_eq!(scan[i], acc);
            acc += x;
        }
        prop_assert_eq!(total, acc);
    }

    /// pack == serial filter by flags.
    #[test]
    fn pack_matches_filter(items in proptest::collection::vec(0u32..1000, 0..300), seed in 0u64..100) {
        let flags: Vec<bool> = (0..items.len()).map(|i| !(i as u64 + seed).is_multiple_of(3)).collect();
        let packed = pack(&items, &flags);
        let expected: Vec<u32> = items
            .iter()
            .zip(&flags)
            .filter(|(_, &f)| f)
            .map(|(&x, _)| x)
            .collect();
        prop_assert_eq!(packed, expected);
    }

    /// pack_indices returns exactly the set positions, sorted.
    #[test]
    fn pack_indices_sorted_and_complete(flags in proptest::collection::vec(any::<bool>(), 0..400)) {
        let idx = pack_indices(&flags);
        prop_assert!(idx.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(idx.len(), flags.iter().filter(|&&b| b).count());
        prop_assert!(idx.iter().all(|&i| flags[i as usize]));
    }

    /// Concurrent fetch_add conserves the total.
    #[test]
    fn atomic_adds_conserve_total(cells in 1usize..32, ops in 1usize..5000) {
        use rayon::prelude::*;
        let v = AtomicF64Vec::zeros(cells);
        (0..ops).into_par_iter().for_each(|i| v.fetch_add(i % cells, 1.0));
        let total: f64 = (0..cells).map(|i| v.load(i)).sum();
        prop_assert_eq!(total, ops as f64);
    }

    /// Subset representation conversions preserve membership.
    #[test]
    fn subset_conversions(n in 1usize..200, seed in 0u64..500) {
        let ids: Vec<u32> = (0..n as u32).filter(|&v| (v as u64 ^ seed).is_multiple_of(4)).collect();
        let mut s = VertexSubset::from_ids(n, ids.clone());
        let orig_len = s.len();
        s.densify();
        prop_assert_eq!(s.len(), orig_len);
        for &v in &ids {
            prop_assert!(s.contains(v));
        }
        s.sparsify();
        let mut back = s.to_ids();
        back.sort_unstable();
        prop_assert_eq!(back, ids);
    }
}
