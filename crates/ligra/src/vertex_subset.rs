//! Ligra's `vertexSubset`: a frontier that is either a sparse list of
//! vertex ids or a dense boolean array, switching representation by the
//! classic `|F| + outDegree(F) > m / 20` threshold.

use gee_graph::VertexId;

/// A subset of the vertices of an `n`-vertex graph.
#[derive(Debug, Clone)]
pub enum VertexSubset {
    /// Explicit list of member ids (unordered, no duplicates).
    Sparse {
        /// Universe size `n`.
        n: usize,
        /// Member ids.
        ids: Vec<VertexId>,
    },
    /// Membership bitmap of length `n`.
    Dense {
        /// Per-vertex membership flags.
        flags: Vec<bool>,
        /// Cached member count.
        count: usize,
    },
}

impl VertexSubset {
    /// The empty subset of an `n`-vertex universe (sparse).
    pub fn empty(n: usize) -> Self {
        VertexSubset::Sparse { n, ids: Vec::new() }
    }

    /// The full vertex set (dense) — GEE's frontier is "the entire graph".
    pub fn full(n: usize) -> Self {
        VertexSubset::Dense {
            flags: vec![true; n],
            count: n,
        }
    }

    /// A singleton subset.
    pub fn single(n: usize, v: VertexId) -> Self {
        assert!((v as usize) < n, "vertex {v} out of range for n={n}");
        VertexSubset::Sparse { n, ids: vec![v] }
    }

    /// From an explicit id list (caller promises no duplicates).
    pub fn from_ids(n: usize, ids: Vec<VertexId>) -> Self {
        debug_assert!(ids.iter().all(|&v| (v as usize) < n));
        VertexSubset::Sparse { n, ids }
    }

    /// From a dense flag vector.
    pub fn from_flags(flags: Vec<bool>) -> Self {
        let count = flags.iter().filter(|&&b| b).count();
        VertexSubset::Dense { flags, count }
    }

    /// Universe size `n`.
    pub fn universe(&self) -> usize {
        match self {
            VertexSubset::Sparse { n, .. } => *n,
            VertexSubset::Dense { flags, .. } => flags.len(),
        }
    }

    /// Number of member vertices.
    pub fn len(&self) -> usize {
        match self {
            VertexSubset::Sparse { ids, .. } => ids.len(),
            VertexSubset::Dense { count, .. } => *count,
        }
    }

    /// True when no vertices are members.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test.
    pub fn contains(&self, v: VertexId) -> bool {
        match self {
            VertexSubset::Sparse { ids, .. } => ids.contains(&v),
            VertexSubset::Dense { flags, .. } => flags[v as usize],
        }
    }

    /// Iterate member ids (order unspecified).
    pub fn iter(&self) -> Box<dyn Iterator<Item = VertexId> + '_> {
        match self {
            VertexSubset::Sparse { ids, .. } => Box::new(ids.iter().copied()),
            VertexSubset::Dense { flags, .. } => Box::new(
                flags
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| b)
                    .map(|(i, _)| i as VertexId),
            ),
        }
    }

    /// Member ids as a vector (converts if dense).
    pub fn to_ids(&self) -> Vec<VertexId> {
        self.iter().collect()
    }

    /// Convert to the dense representation in place.
    pub fn densify(&mut self) {
        if let VertexSubset::Sparse { n, ids } = self {
            let mut flags = vec![false; *n];
            for &v in ids.iter() {
                flags[v as usize] = true;
            }
            *self = VertexSubset::Dense {
                count: ids.len(),
                flags,
            };
        }
    }

    /// Convert to the sparse representation in place.
    pub fn sparsify(&mut self) {
        if let VertexSubset::Dense { flags, .. } = self {
            let ids: Vec<VertexId> = flags
                .iter()
                .enumerate()
                .filter(|(_, &b)| b)
                .map(|(i, _)| i as VertexId)
                .collect();
            *self = VertexSubset::Sparse {
                n: flags.len(),
                ids,
            };
        }
    }

    /// Ligra's representation-choice rule: traverse densely when
    /// `|F| + Σ out-degree(F)` exceeds `num_edges / 20`.
    pub fn should_traverse_dense(&self, frontier_out_degree: usize, num_edges: usize) -> bool {
        self.len() + frontier_out_degree > num_edges / 20
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = VertexSubset::empty(10);
        assert!(e.is_empty());
        assert_eq!(e.universe(), 10);
        let f = VertexSubset::full(10);
        assert_eq!(f.len(), 10);
        assert!(f.contains(9));
    }

    #[test]
    fn single_membership() {
        let s = VertexSubset::single(5, 3);
        assert!(s.contains(3));
        assert!(!s.contains(2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn single_validates() {
        VertexSubset::single(3, 3);
    }

    #[test]
    fn densify_sparsify_roundtrip() {
        let mut s = VertexSubset::from_ids(8, vec![1, 4, 6]);
        s.densify();
        assert!(matches!(s, VertexSubset::Dense { .. }));
        assert_eq!(s.len(), 3);
        assert!(s.contains(4));
        s.sparsify();
        assert!(matches!(s, VertexSubset::Sparse { .. }));
        let mut ids = s.to_ids();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 4, 6]);
    }

    #[test]
    fn dense_iter_matches_flags() {
        let d = VertexSubset::from_flags(vec![true, false, true]);
        assert_eq!(d.to_ids(), vec![0, 2]);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn threshold_rule() {
        let f = VertexSubset::from_ids(100, vec![0, 1]);
        // 2 + 10 > 200/20=10 → dense
        assert!(f.should_traverse_dense(10, 200));
        // 2 + 5 <= 10 → sparse
        assert!(!f.should_traverse_dense(5, 200));
    }
}
