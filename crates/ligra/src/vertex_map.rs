//! `vertexMap` — apply a function to every vertex of a frontier in parallel.

use gee_graph::VertexId;
use rayon::prelude::*;

use crate::prim::pack_indices;
use crate::vertex_subset::VertexSubset;

/// Apply `f` to each member of `frontier` in parallel.
pub fn vertex_map<F: Fn(VertexId) + Sync>(frontier: &VertexSubset, f: F) {
    match frontier {
        VertexSubset::Sparse { ids, .. } => ids.par_iter().for_each(|&v| f(v)),
        VertexSubset::Dense { flags, .. } => flags.par_iter().enumerate().for_each(|(v, &b)| {
            if b {
                f(v as VertexId);
            }
        }),
    }
}

/// Apply `pred` to each member; keep those where it returns `true`
/// (Ligra's `vertexFilter`).
pub fn vertex_filter<F: Fn(VertexId) -> bool + Sync>(
    frontier: &VertexSubset,
    pred: F,
) -> VertexSubset {
    let n = frontier.universe();
    match frontier {
        VertexSubset::Sparse { ids, .. } => {
            let kept: Vec<VertexId> = ids.par_iter().copied().filter(|&v| pred(v)).collect();
            VertexSubset::from_ids(n, kept)
        }
        VertexSubset::Dense { flags, .. } => {
            let kept: Vec<bool> = flags
                .par_iter()
                .enumerate()
                .map(|(v, &b)| b && pred(v as VertexId))
                .collect();
            VertexSubset::from_ids(n, pack_indices(&kept))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn map_touches_all_members() {
        let hits = AtomicU32::new(0);
        vertex_map(&VertexSubset::from_ids(10, vec![1, 3, 5]), |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn map_dense_only_members() {
        let seen = AtomicU32::new(0);
        let f = VertexSubset::from_flags(vec![true, false, true, false]);
        vertex_map(&f, |v| {
            seen.fetch_add(1 << v, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 0b101);
    }

    #[test]
    fn filter_sparse() {
        let f = vertex_filter(&VertexSubset::from_ids(10, vec![1, 2, 3, 4]), |v| {
            v % 2 == 0
        });
        let mut ids = f.to_ids();
        ids.sort_unstable();
        assert_eq!(ids, vec![2, 4]);
    }

    #[test]
    fn filter_dense() {
        let f = vertex_filter(&VertexSubset::full(6), |v| v >= 4);
        assert_eq!(f.to_ids(), vec![4, 5]);
    }
}
