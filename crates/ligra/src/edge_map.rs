//! `edgeMap` — Ligra's central traversal operator, in three flavours.
//!
//! * **Sparse (push)**: one task per frontier vertex; atomic updates because
//!   several sources may hit one destination concurrently.
//! * **Dense (pull)**: one task per *destination*; iterates in-edges from
//!   the transpose, uses the non-atomic `update` because only one task
//!   writes per destination, and early-exits when `cond(d)` turns false.
//! * **Dense-forward (push over everything)**: one task per *source* whose
//!   out-edge list is processed sequentially, atomic updates. This is
//!   `edgeMapDense` in the write-direction the GEE paper describes in §III:
//!   "schedules one worker for the edge list of each node to process all
//!   edges sourced from that node sequentially", keeping `Z(u, ·)` and
//!   `W(u, ·)` in cache.
//!
//! [`edge_map`] auto-selects sparse vs dense-forward by Ligra's
//! `|F| + outdeg(F) > m/20` rule (pull-dense is opt-in because it needs the
//! transpose materialized).

use std::sync::atomic::{AtomicBool, Ordering};

use gee_graph::{CsrGraph, VertexId, Weight};
use rayon::prelude::*;

use crate::prim::pack_indices;
use crate::vertex_subset::VertexSubset;

/// User function applied to traversed edges, mirroring Ligra's
/// `(update, updateAtomic, cond)` triple.
pub trait EdgeMapFn: Sync {
    /// Apply the edge `(s, d, w)` without synchronization (single writer per
    /// `d` guaranteed by the caller). Returns `true` to add `d` to the
    /// output frontier.
    fn update(&self, s: VertexId, d: VertexId, w: Weight) -> bool;

    /// Apply the edge with synchronization (concurrent writers possible).
    /// Returns `true` to add `d` to the output frontier — must return `true`
    /// at most once per `d` per traversal (use CAS) if exact frontiers
    /// matter.
    fn update_atomic(&self, s: VertexId, d: VertexId, w: Weight) -> bool;

    /// Skip destinations where this returns `false`; dense-pull traversal
    /// early-exits a destination's edge loop when it flips to `false`.
    fn cond(&self, _d: VertexId) -> bool {
        true
    }
}

/// Traversal strategy selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraversalKind {
    /// Choose sparse vs dense-forward by the `m/20` threshold.
    #[default]
    Auto,
    /// Force sparse push traversal.
    Sparse,
    /// Force dense-forward push traversal.
    DenseForward,
    /// Force dense pull traversal (requires the transpose; falls back to
    /// dense-forward if absent).
    DensePull,
}

/// Options for [`edge_map`].
#[derive(Debug, Clone, Copy, Default)]
pub struct EdgeMapOptions {
    /// Strategy override.
    pub kind: TraversalKind,
    /// Skip building the output frontier (GEE needs none; saves a pass).
    pub no_output: bool,
}

/// Apply `f` to every out-edge of `frontier`, returning the output frontier
/// (vertices for which an update returned `true`), or an empty subset when
/// `opts.no_output` is set.
pub fn edge_map(
    g: &CsrGraph,
    frontier: &VertexSubset,
    f: &impl EdgeMapFn,
    opts: EdgeMapOptions,
) -> VertexSubset {
    let kind = match opts.kind {
        TraversalKind::Auto => {
            let deg: usize = frontier.iter().map(|v| g.out_degree(v)).sum();
            if frontier.should_traverse_dense(deg, g.num_edges()) {
                TraversalKind::DenseForward
            } else {
                TraversalKind::Sparse
            }
        }
        k => k,
    };
    match kind {
        TraversalKind::Sparse => edge_map_sparse(g, frontier, f, opts.no_output),
        TraversalKind::DenseForward => edge_map_dense_forward(g, frontier, f, opts.no_output),
        TraversalKind::DensePull => match g.transpose() {
            Some(t) => edge_map_dense_pull(g, t, frontier, f, opts.no_output),
            None => edge_map_dense_forward(g, frontier, f, opts.no_output),
        },
        TraversalKind::Auto => unreachable!("resolved above"),
    }
}

/// Push-style sparse traversal: parallel over frontier vertices, atomic
/// updates, output frontier deduplicated with per-vertex flags.
pub fn edge_map_sparse(
    g: &CsrGraph,
    frontier: &VertexSubset,
    f: &impl EdgeMapFn,
    no_output: bool,
) -> VertexSubset {
    let n = g.num_vertices();
    let ids = frontier.to_ids();
    if no_output {
        ids.par_iter().for_each(|&u| {
            for (i, &v) in g.neighbors(u).iter().enumerate() {
                if f.cond(v) {
                    f.update_atomic(u, v, g.weight_at(u, i));
                }
            }
        });
        return VertexSubset::empty(n);
    }
    let out_flags: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    ids.par_iter().for_each(|&u| {
        for (i, &v) in g.neighbors(u).iter().enumerate() {
            if f.cond(v) && f.update_atomic(u, v, g.weight_at(u, i)) {
                out_flags[v as usize].store(true, Ordering::Relaxed);
            }
        }
    });
    subset_from_atomic_flags(n, &out_flags)
}

/// Dense-forward traversal: parallel over **all** sources in the frontier
/// (for GEE the frontier is the full vertex set), each source's out-edge
/// list walked sequentially so updates to `Z(u, ·)` never self-conflict and
/// stay cache-resident (§III of the paper). Uses `update_atomic` since
/// distinct sources can still write the same destination row.
pub fn edge_map_dense_forward(
    g: &CsrGraph,
    frontier: &VertexSubset,
    f: &impl EdgeMapFn,
    no_output: bool,
) -> VertexSubset {
    let n = g.num_vertices();
    let full = frontier.len() == n;
    let run = |u: u32, out: Option<&[AtomicBool]>| {
        for (i, &v) in g.neighbors(u).iter().enumerate() {
            if f.cond(v) {
                let fresh = f.update_atomic(u, v, g.weight_at(u, i));
                if let (Some(flags), true) = (out, fresh) {
                    flags[v as usize].store(true, Ordering::Relaxed);
                }
            }
        }
    };
    if no_output {
        if full {
            (0..n as u32).into_par_iter().for_each(|u| run(u, None));
        } else {
            (0..n as u32)
                .into_par_iter()
                .filter(|&u| frontier.contains(u))
                .for_each(|u| run(u, None));
        }
        return VertexSubset::empty(n);
    }
    let out_flags: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    if full {
        (0..n as u32)
            .into_par_iter()
            .for_each(|u| run(u, Some(&out_flags)));
    } else {
        (0..n as u32)
            .into_par_iter()
            .filter(|&u| frontier.contains(u))
            .for_each(|u| run(u, Some(&out_flags)));
    }
    subset_from_atomic_flags(n, &out_flags)
}

/// Pull-style dense traversal over the transpose: parallel over
/// destinations, sequential over their in-edges, non-atomic `update`,
/// early-exit when `cond` flips.
fn edge_map_dense_pull(
    _g: &CsrGraph,
    transpose: &CsrGraph,
    frontier: &VertexSubset,
    f: &impl EdgeMapFn,
    no_output: bool,
) -> VertexSubset {
    let n = transpose.num_vertices();
    let mut dense = frontier.clone();
    dense.densify();
    let in_frontier = |v: u32| dense.contains(v);
    let next: Vec<bool> = (0..n as u32)
        .into_par_iter()
        .map(|d| {
            let mut added = false;
            if f.cond(d) {
                for (i, &s) in transpose.neighbors(d).iter().enumerate() {
                    if in_frontier(s) && f.update(s, d, transpose.weight_at(d, i)) {
                        added = true;
                    }
                    if !f.cond(d) {
                        break;
                    }
                }
            }
            added
        })
        .collect();
    if no_output {
        return VertexSubset::empty(n);
    }
    VertexSubset::from_ids(n, pack_indices(&next))
}

fn subset_from_atomic_flags(n: usize, flags: &[AtomicBool]) -> VertexSubset {
    let plain: Vec<bool> = flags.iter().map(|b| b.load(Ordering::Relaxed)).collect();
    VertexSubset::from_ids(n, pack_indices(&plain))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_graph::{Edge, EdgeList};
    use std::sync::atomic::AtomicU32;

    /// Counts visits per destination; returns true (adds to frontier) on
    /// every visit.
    struct CountVisits {
        counts: Vec<AtomicU32>,
    }

    impl CountVisits {
        fn new(n: usize) -> Self {
            CountVisits {
                counts: (0..n).map(|_| AtomicU32::new(0)).collect(),
            }
        }
        fn count(&self, v: u32) -> u32 {
            self.counts[v as usize].load(Ordering::Relaxed)
        }
    }

    impl EdgeMapFn for CountVisits {
        fn update(&self, _s: VertexId, d: VertexId, _w: Weight) -> bool {
            self.counts[d as usize].fetch_add(1, Ordering::Relaxed);
            true
        }
        fn update_atomic(&self, s: VertexId, d: VertexId, w: Weight) -> bool {
            self.update(s, d, w)
        }
    }

    fn path_graph() -> CsrGraph {
        // 0 -> 1 -> 2 -> 3
        let el = EdgeList::new(
            4,
            vec![Edge::unit(0, 1), Edge::unit(1, 2), Edge::unit(2, 3)],
        )
        .unwrap();
        CsrGraph::from_edge_list(&el)
    }

    #[test]
    fn sparse_traversal_visits_out_edges() {
        let g = path_graph();
        let f = CountVisits::new(4);
        let frontier = VertexSubset::single(4, 0);
        let next = edge_map(
            &g,
            &frontier,
            &f,
            EdgeMapOptions {
                kind: TraversalKind::Sparse,
                no_output: false,
            },
        );
        assert_eq!(f.count(1), 1);
        assert_eq!(f.count(2), 0);
        assert_eq!(next.to_ids(), vec![1]);
    }

    #[test]
    fn dense_forward_full_frontier_visits_every_edge() {
        let g = path_graph();
        let f = CountVisits::new(4);
        let frontier = VertexSubset::full(4);
        edge_map(
            &g,
            &frontier,
            &f,
            EdgeMapOptions {
                kind: TraversalKind::DenseForward,
                no_output: true,
            },
        );
        assert_eq!(f.count(0), 0);
        assert_eq!(f.count(1), 1);
        assert_eq!(f.count(2), 1);
        assert_eq!(f.count(3), 1);
    }

    #[test]
    fn dense_forward_partial_frontier() {
        let g = path_graph();
        let f = CountVisits::new(4);
        let frontier = VertexSubset::from_ids(4, vec![1, 2]);
        let next = edge_map_dense_forward(&g, &frontier, &f, false);
        assert_eq!(f.count(1), 0);
        assert_eq!(f.count(2), 1);
        assert_eq!(f.count(3), 1);
        let mut ids = next.to_ids();
        ids.sort_unstable();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn dense_pull_matches_forward() {
        let mut g = path_graph();
        g.ensure_transpose();
        let f1 = CountVisits::new(4);
        let f2 = CountVisits::new(4);
        let frontier = VertexSubset::full(4);
        edge_map(
            &g,
            &frontier,
            &f1,
            EdgeMapOptions {
                kind: TraversalKind::DensePull,
                no_output: true,
            },
        );
        edge_map(
            &g,
            &frontier,
            &f2,
            EdgeMapOptions {
                kind: TraversalKind::DenseForward,
                no_output: true,
            },
        );
        for v in 0..4 {
            assert_eq!(f1.count(v), f2.count(v), "vertex {v}");
        }
    }

    #[test]
    fn auto_picks_sparse_for_tiny_frontier() {
        // Large graph, single-vertex frontier: auto must behave like sparse
        // (we can only observe equivalence of results here).
        let el = gee_gen::erdos_renyi_gnm(1000, 30_000, 5);
        let g = CsrGraph::from_edge_list(&el);
        let f = CountVisits::new(1000);
        let frontier = VertexSubset::single(1000, 0);
        edge_map(&g, &frontier, &f, EdgeMapOptions::default());
        let visited: u32 = (0..1000).map(|v| f.count(v)).sum();
        assert_eq!(visited as usize, g.out_degree(0));
    }

    #[test]
    fn cond_filters_destinations() {
        struct OnlyOdd;
        impl EdgeMapFn for OnlyOdd {
            fn update(&self, _s: u32, d: u32, _w: f64) -> bool {
                assert!(d % 2 == 1, "visited even vertex {d}");
                true
            }
            fn update_atomic(&self, s: u32, d: u32, w: f64) -> bool {
                self.update(s, d, w)
            }
            fn cond(&self, d: u32) -> bool {
                d % 2 == 1
            }
        }
        let g = path_graph();
        let frontier = VertexSubset::full(4);
        let next = edge_map(
            &g,
            &frontier,
            &OnlyOdd,
            EdgeMapOptions {
                kind: TraversalKind::DenseForward,
                no_output: false,
            },
        );
        let mut ids = next.to_ids();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn no_output_returns_empty() {
        let g = path_graph();
        let f = CountVisits::new(4);
        let next = edge_map(
            &g,
            &VertexSubset::full(4),
            &f,
            EdgeMapOptions {
                kind: TraversalKind::Sparse,
                no_output: true,
            },
        );
        assert!(next.is_empty());
    }

    #[test]
    fn weights_passed_through() {
        struct SumW(crate::atomics::AtomicF64Vec);
        impl EdgeMapFn for SumW {
            fn update(&self, _s: u32, d: u32, w: f64) -> bool {
                self.0.fetch_add(d as usize, w);
                false
            }
            fn update_atomic(&self, s: u32, d: u32, w: f64) -> bool {
                self.update(s, d, w)
            }
        }
        let el = EdgeList::new(2, vec![Edge::new(0, 1, 2.5), Edge::new(0, 1, 0.5)]).unwrap();
        let g = CsrGraph::from_edge_list(&el);
        let f = SumW(crate::atomics::AtomicF64Vec::zeros(2));
        edge_map_dense_forward(&g, &VertexSubset::full(2), &f, true);
        assert_eq!(f.0.load(1), 3.0);
    }
}
