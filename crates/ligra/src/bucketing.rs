//! Julienne-style bucketing (Dhulipala, Blelloch & Shun, SPAA 2017) — the
//! priority-ordered companion to `edgeMap`.
//!
//! Ligra's frontier model (§II of the paper) captures *unordered*
//! algorithms; algorithms that process vertices by priority — k-core
//! peeling, Δ-stepping SSSP, approximate set cover — need a dynamic
//! mapping from vertices to *buckets* processed in priority order.
//! Julienne extends Ligra with exactly this structure, so it belongs in
//! the engine substrate next to [`crate::vertex_subset::VertexSubset`].
//!
//! This implementation uses **lazy deletion**: [`Buckets::update_bucket`]
//! appends the vertex to its new bucket's queue without removing the old
//! entry; [`Buckets::next_bucket`] filters entries whose recorded bucket
//! no longer matches when the bucket is popped. Each vertex therefore
//! appears in at most one *valid* bucket at a time, while queue entries
//! are amortized O(1) per update — the same trade Julienne makes.

use std::collections::BTreeMap;

use gee_graph::VertexId;

/// Bucket id a vertex holds when it is not in any bucket.
const NONE: u64 = u64::MAX;

/// Whether [`Buckets::next_bucket`] pops the smallest or largest id first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BucketOrder {
    /// Pop buckets in increasing id order (k-core, Δ-stepping).
    #[default]
    Increasing,
    /// Pop buckets in decreasing id order (e.g. approximate set cover).
    Decreasing,
}

/// A non-empty bucket extracted by [`Buckets::next_bucket`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bucket {
    /// Priority of this bucket.
    pub id: u64,
    /// Valid member vertices, in insertion order (stale entries filtered).
    pub vertices: Vec<VertexId>,
}

/// Dynamic vertex-to-bucket mapping with ordered extraction.
///
/// Identifiers live in `0..n`. A vertex is in at most one bucket;
/// extraction removes it (callers re-insert with
/// [`Buckets::update_bucket`] if it needs further processing).
#[derive(Debug)]
pub struct Buckets {
    order: BucketOrder,
    /// Current bucket of each vertex, or [`NONE`].
    bucket_of: Vec<u64>,
    /// Pending (possibly stale) queue per bucket id.
    queues: BTreeMap<u64, Vec<VertexId>>,
    /// Count of vertices whose `bucket_of` is not [`NONE`].
    live: usize,
}

impl Buckets {
    /// Create buckets over `n` vertices. `init(v)` gives `v`'s starting
    /// bucket, or `None` to leave it unbucketed.
    pub fn new(n: usize, order: BucketOrder, init: impl Fn(VertexId) -> Option<u64>) -> Self {
        let mut b = Buckets {
            order,
            bucket_of: vec![NONE; n],
            queues: BTreeMap::new(),
            live: 0,
        };
        for v in 0..n as VertexId {
            if let Some(id) = init(v) {
                b.insert(v, id);
            }
        }
        b
    }

    fn insert(&mut self, v: VertexId, id: u64) {
        assert_ne!(id, NONE, "bucket id u64::MAX is reserved");
        if self.bucket_of[v as usize] == NONE {
            self.live += 1;
        }
        self.bucket_of[v as usize] = id;
        self.queues.entry(id).or_default().push(v);
    }

    /// Move `v` to bucket `id` (inserting it if currently unbucketed).
    pub fn update_bucket(&mut self, v: VertexId, id: u64) {
        assert_ne!(id, NONE, "bucket id u64::MAX is reserved");
        if self.bucket_of[v as usize] == id {
            return; // already there; avoid queue growth
        }
        self.insert(v, id);
    }

    /// Apply a batch of `(vertex, bucket)` moves. Later entries for the
    /// same vertex win, matching sequential application order.
    pub fn update_buckets(&mut self, moves: impl IntoIterator<Item = (VertexId, u64)>) {
        for (v, id) in moves {
            self.update_bucket(v, id);
        }
    }

    /// Remove `v` from whatever bucket it is in (no-op if unbucketed).
    pub fn remove(&mut self, v: VertexId) {
        if self.bucket_of[v as usize] != NONE {
            self.bucket_of[v as usize] = NONE;
            self.live -= 1;
        }
    }

    /// Current bucket of `v`, if any.
    pub fn bucket_of(&self, v: VertexId) -> Option<u64> {
        match self.bucket_of[v as usize] {
            NONE => None,
            id => Some(id),
        }
    }

    /// Number of vertices currently in some bucket.
    pub fn num_live(&self) -> usize {
        self.live
    }

    /// True when no vertex is bucketed.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Extract the next non-empty bucket in priority order, removing its
    /// members from the structure. Returns `None` when all buckets are
    /// empty.
    pub fn next_bucket(&mut self) -> Option<Bucket> {
        loop {
            let id = match self.order {
                BucketOrder::Increasing => *self.queues.keys().next()?,
                BucketOrder::Decreasing => *self.queues.keys().next_back()?,
            };
            let queue = self.queues.remove(&id).expect("key just observed");
            let mut vertices: Vec<VertexId> = queue
                .into_iter()
                .filter(|&v| self.bucket_of[v as usize] == id)
                .collect();
            // Lazy insertion can enqueue a vertex twice in the *same*
            // bucket (moved away and back); keep the first occurrence.
            if vertices.len() > 1 {
                let mut seen = vec![];
                vertices.retain(|&v| {
                    let dup = seen.contains(&v);
                    seen.push(v);
                    !dup
                });
            }
            if vertices.is_empty() {
                continue; // all entries were stale; try the next bucket
            }
            for &v in &vertices {
                self.bucket_of[v as usize] = NONE;
            }
            self.live -= vertices.len();
            return Some(Bucket { id, vertices });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_increasing_order() {
        let mut b = Buckets::new(4, BucketOrder::Increasing, |v| Some(u64::from(3 - v)));
        let ids: Vec<u64> = std::iter::from_fn(|| b.next_bucket().map(|bk| bk.id)).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pops_in_decreasing_order() {
        let mut b = Buckets::new(3, BucketOrder::Decreasing, |v| Some(u64::from(v)));
        let ids: Vec<u64> = std::iter::from_fn(|| b.next_bucket().map(|bk| bk.id)).collect();
        assert_eq!(ids, vec![2, 1, 0]);
    }

    #[test]
    fn update_moves_vertex() {
        let mut b = Buckets::new(2, BucketOrder::Increasing, |_| Some(5));
        b.update_bucket(0, 1);
        let first = b.next_bucket().unwrap();
        assert_eq!(first.id, 1);
        assert_eq!(first.vertices, vec![0]);
        let second = b.next_bucket().unwrap();
        assert_eq!(second.id, 5);
        assert_eq!(second.vertices, vec![1]);
    }

    #[test]
    fn stale_entries_filtered() {
        let mut b = Buckets::new(1, BucketOrder::Increasing, |_| Some(0));
        b.update_bucket(0, 2);
        b.update_bucket(0, 7);
        let only = b.next_bucket().unwrap();
        assert_eq!(only.id, 7);
        assert!(b.next_bucket().is_none());
    }

    #[test]
    fn extraction_removes_members() {
        let mut b = Buckets::new(3, BucketOrder::Increasing, |_| Some(1));
        assert_eq!(b.num_live(), 3);
        let bk = b.next_bucket().unwrap();
        assert_eq!(bk.vertices.len(), 3);
        assert!(b.is_empty());
        assert_eq!(b.bucket_of(0), None);
    }

    #[test]
    fn reinsert_after_extraction() {
        let mut b = Buckets::new(1, BucketOrder::Increasing, |_| Some(0));
        b.next_bucket().unwrap();
        b.update_bucket(0, 3);
        let bk = b.next_bucket().unwrap();
        assert_eq!((bk.id, bk.vertices.as_slice()), (3, &[0][..]));
    }

    #[test]
    fn same_bucket_update_is_noop() {
        let mut b = Buckets::new(1, BucketOrder::Increasing, |_| Some(4));
        b.update_bucket(0, 4);
        let bk = b.next_bucket().unwrap();
        assert_eq!(bk.vertices, vec![0]); // no duplicate
    }

    #[test]
    fn move_away_and_back_deduplicates() {
        let mut b = Buckets::new(1, BucketOrder::Increasing, |_| Some(4));
        b.update_bucket(0, 9);
        b.update_bucket(0, 4); // back to 4: queue holds two entries
        let bk = b.next_bucket().unwrap();
        assert_eq!(bk.id, 4);
        assert_eq!(bk.vertices, vec![0]);
        assert!(b.next_bucket().is_none());
    }

    #[test]
    fn unbucketed_vertices_never_appear() {
        let mut b = Buckets::new(4, BucketOrder::Increasing, |v| (v % 2 == 0).then_some(0));
        let bk = b.next_bucket().unwrap();
        assert_eq!(bk.vertices, vec![0, 2]);
    }

    #[test]
    fn remove_makes_entry_stale() {
        let mut b = Buckets::new(2, BucketOrder::Increasing, |_| Some(1));
        b.remove(0);
        assert_eq!(b.num_live(), 1);
        let bk = b.next_bucket().unwrap();
        assert_eq!(bk.vertices, vec![1]);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn max_bucket_id_rejected() {
        let mut b = Buckets::new(1, BucketOrder::Increasing, |_| None);
        b.update_bucket(0, u64::MAX);
    }

    #[test]
    fn batch_updates_last_wins() {
        let mut b = Buckets::new(1, BucketOrder::Increasing, |_| None);
        b.update_buckets([(0, 5), (0, 2)]);
        assert_eq!(b.bucket_of(0), Some(2));
        assert_eq!(b.next_bucket().unwrap().id, 2);
    }
}
