//! Parallel primitives: exclusive scan, pack, filter.
//!
//! These are the building blocks Ligra composes traversals from. Scan uses
//! the standard two-pass chunked algorithm (per-chunk sums, scan of sums,
//! per-chunk rescan), giving O(n) work and O(n / P + P) span on rayon.

use rayon::prelude::*;

/// Parallel exclusive prefix sum. Returns the scanned vector and the total.
pub fn exclusive_scan(input: &[usize]) -> (Vec<usize>, usize) {
    let n = input.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    // Sequential cutoff: chunking overhead dominates below ~64k elements.
    if n < 1 << 16 {
        let mut out = Vec::with_capacity(n);
        let mut acc = 0usize;
        for &x in input {
            out.push(acc);
            acc += x;
        }
        return (out, acc);
    }
    let chunk = 1 << 14;
    let sums: Vec<usize> = input.par_chunks(chunk).map(|c| c.iter().sum()).collect();
    let mut offsets = Vec::with_capacity(sums.len());
    let mut acc = 0usize;
    for s in &sums {
        offsets.push(acc);
        acc += s;
    }
    let mut out = vec![0usize; n];
    out.par_chunks_mut(chunk)
        .zip(input.par_chunks(chunk))
        .zip(offsets.par_iter())
        .for_each(|((o, i), &base)| {
            let mut a = base;
            for (slot, &x) in o.iter_mut().zip(i) {
                *slot = a;
                a += x;
            }
        });
    (out, acc)
}

/// Keep elements whose flag is set, preserving order (Ligra's `pack`).
pub fn pack<T: Copy + Send + Sync>(items: &[T], flags: &[bool]) -> Vec<T> {
    assert_eq!(items.len(), flags.len());
    pack_indices(flags)
        .into_par_iter()
        .map(|i| items[i as usize])
        .collect()
}

/// Indices `i` with `flags[i]` set, in increasing order.
pub fn pack_indices(flags: &[bool]) -> Vec<u32> {
    let counts: Vec<usize> = flags.iter().map(|&b| usize::from(b)).collect();
    let (offsets, total) = exclusive_scan(&counts);
    let mut out = vec![0u32; total];
    let out_ptr = SyncPtr(out.as_mut_ptr());
    flags.par_iter().enumerate().for_each(|(i, &b)| {
        if b {
            // SAFETY: offsets of set flags are distinct (exclusive scan of
            // 0/1 counts), so writes go to disjoint slots.
            unsafe { *out_ptr.get().add(offsets[i]) = i as u32 }
        }
    });
    out
}

/// Parallel filter by predicate.
pub fn filter<T: Copy + Send + Sync, F: Fn(&T) -> bool + Sync>(items: &[T], pred: F) -> Vec<T> {
    items.par_iter().copied().filter(|x| pred(x)).collect()
}

struct SyncPtr<T>(*mut T);
unsafe impl<T> Send for SyncPtr<T> {}
unsafe impl<T> Sync for SyncPtr<T> {}
impl<T> SyncPtr<T> {
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_small() {
        let (s, total) = exclusive_scan(&[1, 2, 3, 4]);
        assert_eq!(s, vec![0, 1, 3, 6]);
        assert_eq!(total, 10);
    }

    #[test]
    fn scan_empty() {
        let (s, total) = exclusive_scan(&[]);
        assert!(s.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn scan_large_matches_serial() {
        let input: Vec<usize> = (0..200_000).map(|i| i % 7).collect();
        let (par, total) = exclusive_scan(&input);
        let mut acc = 0;
        for (i, &x) in input.iter().enumerate() {
            assert_eq!(par[i], acc, "mismatch at {i}");
            acc += x;
        }
        assert_eq!(total, acc);
    }

    #[test]
    fn pack_preserves_order() {
        let items = [10, 20, 30, 40];
        let flags = [true, false, true, true];
        assert_eq!(pack(&items, &flags), vec![10, 30, 40]);
    }

    #[test]
    fn pack_indices_basic() {
        assert_eq!(
            pack_indices(&[false, true, true, false, true]),
            vec![1, 2, 4]
        );
    }

    #[test]
    fn pack_indices_large() {
        let flags: Vec<bool> = (0..100_000).map(|i| i % 3 == 0).collect();
        let idx = pack_indices(&flags);
        assert_eq!(idx.len(), flags.iter().filter(|&&b| b).count());
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        assert!(idx.iter().all(|&i| i % 3 == 0));
    }

    #[test]
    fn filter_by_predicate() {
        let out = filter(&[1, 2, 3, 4, 5, 6], |&x| x % 2 == 0);
        assert_eq!(out, vec![2, 4, 6]);
    }
}
