//! Lock-free atomic utilities — Ligra's `writeAdd` / `writeMin` / `CAS`.
//!
//! x86-64 (and AArch64) have no native f64 fetch-add, so Ligra's `writeAdd`
//! on doubles is a compare-and-swap loop over the 64-bit pattern; we
//! implement exactly that over [`AtomicU64`] bit-casts.
//!
//! The paper's §IV ablation ("we ran the program with atomics off,
//! performing unsafe updates, and saw no appreciable performance
//! difference") is reproduced by [`AtomicF64Vec::add_racy`]: a relaxed
//! load followed by a relaxed store. Concurrent increments may be lost —
//! the *paper's* unsafe experiment — but unlike a raw non-atomic write this
//! is not undefined behaviour in Rust's memory model, so the benchmark
//! remains sound to run.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// How the embedding updates synchronize — the paper's atomics on/off knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AtomicsMode {
    /// Lock-free CAS `writeAdd` (the paper's default, race-free).
    #[default]
    Atomic,
    /// Relaxed load+store, may lose concurrent updates (the paper's
    /// "atomics off" ablation).
    Racy,
}

/// A fixed-length vector of `f64` supporting concurrent accumulation.
///
/// Bit-stores each element in an [`AtomicU64`]; `fetch_add` is a CAS loop
/// identical to Ligra's `writeAdd`.
pub struct AtomicF64Vec {
    data: Vec<AtomicU64>,
}

impl AtomicF64Vec {
    /// Zero-initialized vector of length `len`.
    pub fn zeros(len: usize) -> Self {
        let mut data = Vec::with_capacity(len);
        data.resize_with(len, || AtomicU64::new(0f64.to_bits()));
        AtomicF64Vec { data }
    }

    /// Length of the vector.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Atomic `writeAdd`: CAS loop adding `delta` to element `i`.
    #[inline]
    pub fn fetch_add(&self, i: usize, delta: f64) {
        let cell = &self.data[i];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + delta).to_bits();
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(observed) => cur = observed,
            }
        }
    }

    /// The paper's "atomics off" update: relaxed read-modify-write that may
    /// lose concurrent increments. Not UB — every access is individually
    /// atomic — but deliberately not linearizable.
    #[inline]
    pub fn add_racy(&self, i: usize, delta: f64) {
        let cell = &self.data[i];
        let cur = f64::from_bits(cell.load(Ordering::Relaxed));
        cell.store((cur + delta).to_bits(), Ordering::Relaxed);
    }

    /// Dispatch on [`AtomicsMode`].
    #[inline]
    pub fn add(&self, mode: AtomicsMode, i: usize, delta: f64) {
        match mode {
            AtomicsMode::Atomic => self.fetch_add(i, delta),
            AtomicsMode::Racy => self.add_racy(i, delta),
        }
    }

    /// Read element `i`.
    #[inline]
    pub fn load(&self, i: usize) -> f64 {
        f64::from_bits(self.data[i].load(Ordering::Relaxed))
    }

    /// Overwrite element `i`.
    #[inline]
    pub fn store(&self, i: usize, v: f64) {
        self.data[i].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Convert into a plain `Vec<f64>` (single-owner, no copies of the
    /// atomic cells remain).
    pub fn into_vec(self) -> Vec<f64> {
        self.data
            .into_iter()
            .map(|a| f64::from_bits(a.into_inner()))
            .collect()
    }

    /// Copy out as a plain `Vec<f64>`.
    pub fn to_vec(&self) -> Vec<f64> {
        self.data
            .iter()
            .map(|a| f64::from_bits(a.load(Ordering::Relaxed)))
            .collect()
    }
}

/// Ligra's `writeMin`: atomically set `*cell = min(*cell, v)`; returns true
/// if this call lowered the value (i.e. it "won").
#[inline]
pub fn write_min_u32(cell: &AtomicU32, v: u32) -> bool {
    let mut cur = cell.load(Ordering::Relaxed);
    while v < cur {
        match cell.compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(observed) => cur = observed,
        }
    }
    false
}

/// Ligra's `CAS` on a u32 cell: set to `new` iff currently `expected`.
#[inline]
pub fn cas_u32(cell: &AtomicU32, expected: u32, new: u32) -> bool {
    cell.compare_exchange(expected, new, Ordering::Relaxed, Ordering::Relaxed)
        .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn zeros_and_len() {
        let v = AtomicF64Vec::zeros(5);
        assert_eq!(v.len(), 5);
        assert!(!v.is_empty());
        assert_eq!(v.load(3), 0.0);
    }

    #[test]
    fn fetch_add_accumulates() {
        let v = AtomicF64Vec::zeros(1);
        v.fetch_add(0, 1.5);
        v.fetch_add(0, 2.5);
        assert_eq!(v.load(0), 4.0);
    }

    #[test]
    fn concurrent_fetch_add_loses_nothing() {
        let v = AtomicF64Vec::zeros(4);
        (0..100_000usize).into_par_iter().for_each(|i| {
            v.fetch_add(i % 4, 1.0);
        });
        let total: f64 = (0..4).map(|i| v.load(i)).sum();
        assert_eq!(total, 100_000.0);
    }

    #[test]
    fn racy_add_single_threaded_is_exact() {
        let v = AtomicF64Vec::zeros(1);
        for _ in 0..1000 {
            v.add_racy(0, 1.0);
        }
        assert_eq!(v.load(0), 1000.0);
    }

    #[test]
    fn mode_dispatch() {
        let v = AtomicF64Vec::zeros(1);
        v.add(AtomicsMode::Atomic, 0, 1.0);
        v.add(AtomicsMode::Racy, 0, 1.0);
        assert_eq!(v.load(0), 2.0);
    }

    #[test]
    fn into_vec_roundtrip() {
        let v = AtomicF64Vec::zeros(3);
        v.store(0, 1.0);
        v.store(2, -2.5);
        assert_eq!(v.to_vec(), vec![1.0, 0.0, -2.5]);
        assert_eq!(v.into_vec(), vec![1.0, 0.0, -2.5]);
    }

    #[test]
    fn write_min_lowers_only() {
        let c = AtomicU32::new(10);
        assert!(write_min_u32(&c, 5));
        assert!(!write_min_u32(&c, 7));
        assert_eq!(c.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn concurrent_write_min_converges() {
        let c = AtomicU32::new(u32::MAX);
        (0..10_000u32).into_par_iter().for_each(|i| {
            write_min_u32(&c, i);
        });
        assert_eq!(c.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn cas_semantics() {
        let c = AtomicU32::new(1);
        assert!(cas_u32(&c, 1, 2));
        assert!(!cas_u32(&c, 1, 3));
        assert_eq!(c.load(Ordering::Relaxed), 2);
    }
}
