//! A Ligra-style shared-memory graph engine (Shun & Blelloch, PPoPP 2013)
//! in safe-by-default Rust over rayon.
//!
//! The paper reformulates GEE as an *edge-map program* in this interface:
//! a [`VertexSubset`] frontier selects active vertices, [`edge_map()`] applies
//! a function to every out-edge of the frontier, and lock-free atomic
//! [`atomics::AtomicF64Vec::fetch_add`] (`writeAdd` in Ligra) prevents data
//! races on the embedding matrix.
//!
//! Engine components:
//!
//! * [`vertex_subset`] — dense-bitmap / sparse-list frontier with the
//!   standard representation-switch threshold.
//! * [`edge_map()`] — push-style sparse traversal, pull-style dense traversal,
//!   and the *dense-forward* traversal GEE uses (one task per source vertex,
//!   its edge list processed sequentially — §III of the paper).
//! * [`vertex_map()`] — parallel map/filter over a frontier.
//! * [`atomics`] — `writeAdd` (f64 CAS loop), `write_min`, `cas`, and the
//!   deliberately racy non-atomic mode used for the paper's "atomics off"
//!   ablation.
//! * [`prim`] — parallel scan / pack / filter primitives.
//! * [`bucketing`] — Julienne-style priority buckets for ordered
//!   algorithms (k-core peeling, Δ-stepping SSSP).

pub mod atomics;
pub mod bucketing;
pub mod edge_filter;
pub mod edge_map;
pub mod prim;
pub mod vertex_map;
pub mod vertex_subset;

pub use atomics::{AtomicF64Vec, AtomicsMode};
pub use bucketing::{Bucket, BucketOrder, Buckets};
pub use edge_filter::filter_graph;
pub use edge_map::{edge_map, edge_map_dense_forward, EdgeMapFn, EdgeMapOptions, TraversalKind};
pub use vertex_map::{vertex_filter, vertex_map};
pub use vertex_subset::VertexSubset;

/// Run `f` on a rayon pool with exactly `threads` workers.
///
/// The strong-scaling experiment (paper Fig. 3) sweeps this from 1 to the
/// machine's core count. `threads = 0` means "rayon default".
pub fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    if threads == 0 {
        return f();
    }
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build rayon pool")
        .install(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_threads_runs_closure() {
        let r = with_threads(2, rayon::current_num_threads);
        assert_eq!(r, 2);
    }

    #[test]
    fn with_threads_zero_uses_default_pool() {
        let r = with_threads(0, || 41 + 1);
        assert_eq!(r, 42);
    }
}
