//! `packEdges` / `filterEdges` — Ligra's graph-shrinking operator: drop
//! edges failing a predicate and repack the adjacency in parallel.
//! Algorithms like triangle counting (rank-ordered neighbor pruning) and
//! iterated k-core/densest-subgraph passes use this to shed finished
//! work between rounds.

use gee_graph::{CsrGraph, VertexId, Weight};
use rayon::prelude::*;

use crate::prim::exclusive_scan;

/// Build a new graph keeping only the edges where `pred(u, v, w)` holds.
/// Vertex ids are preserved. Three parallel phases: per-vertex survivor
/// count, offset scan, parallel repack.
pub fn filter_graph<F>(g: &CsrGraph, pred: F) -> CsrGraph
where
    F: Fn(VertexId, VertexId, Weight) -> bool + Sync,
{
    let n = g.num_vertices();
    // Phase 1: survivors per source vertex.
    let counts: Vec<usize> = (0..n as VertexId)
        .into_par_iter()
        .map(|u| {
            g.neighbors(u)
                .iter()
                .enumerate()
                .filter(|&(i, &v)| pred(u, v, g.weight_at(u, i)))
                .count()
        })
        .collect();
    // Phase 2: offsets.
    let (starts, total) = exclusive_scan(&counts);
    let mut offsets = starts.clone();
    offsets.push(total);
    // Phase 3: repack into disjoint ranges (one owner per source vertex).
    let keep_weights = g.is_weighted();
    let mut targets = vec![0 as VertexId; total];
    let mut weights = if keep_weights {
        vec![0.0; total]
    } else {
        Vec::new()
    };
    {
        let tp = SendPtr(targets.as_mut_ptr());
        let wp = SendPtr(weights.as_mut_ptr());
        (0..n as VertexId).into_par_iter().for_each(|u| {
            let mut slot = starts[u as usize];
            for (i, &v) in g.neighbors(u).iter().enumerate() {
                let w = g.weight_at(u, i);
                if pred(u, v, w) {
                    // SAFETY: slot stays within [starts[u], starts[u]+counts[u])
                    // and those ranges partition 0..total by the scan.
                    unsafe {
                        *tp.get().add(slot) = v;
                        if keep_weights {
                            *wp.get().add(slot) = w;
                        }
                    }
                    slot += 1;
                }
            }
        });
    }
    CsrGraph::from_raw_parts(n, offsets, targets, keep_weights.then_some(weights))
}

struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_graph::{Edge, EdgeList};

    fn sample() -> CsrGraph {
        let el = EdgeList::new(
            4,
            vec![
                Edge::new(0, 1, 1.0),
                Edge::new(0, 2, 2.0),
                Edge::new(1, 2, 3.0),
                Edge::new(2, 3, 4.0),
                Edge::new(3, 0, 5.0),
            ],
        )
        .unwrap();
        CsrGraph::from_edge_list(&el)
    }

    #[test]
    fn keep_everything_is_identity() {
        let g = sample();
        let f = filter_graph(&g, |_, _, _| true);
        assert_eq!(f.offsets(), g.offsets());
        assert_eq!(f.targets(), g.targets());
        assert_eq!(f.weights(), g.weights());
    }

    #[test]
    fn drop_everything_is_empty() {
        let g = sample();
        let f = filter_graph(&g, |_, _, _| false);
        assert_eq!(f.num_edges(), 0);
        assert_eq!(f.num_vertices(), 4);
    }

    #[test]
    fn weight_threshold_filter() {
        let g = sample();
        let f = filter_graph(&g, |_, _, w| w >= 3.0);
        assert_eq!(f.num_edges(), 3);
        assert!(f.iter_edges().all(|(_, _, w)| w >= 3.0));
    }

    #[test]
    fn rank_filter_halves_symmetric_graph() {
        // Keep only u < v on an explicitly mirrored loop-free edge set:
        // each undirected edge survives exactly once.
        let pairs: Vec<(u32, u32)> = (0..500u32).map(|i| (i % 100, (i * 7 + 1) % 100)).collect();
        let edges: Vec<Edge> = pairs
            .iter()
            .filter(|&&(u, v)| u != v)
            .flat_map(|&(u, v)| [Edge::unit(u, v), Edge::unit(v, u)])
            .collect();
        let g = CsrGraph::from_edge_list(&EdgeList::new(100, edges).unwrap());
        let f = filter_graph(&g, |u, v, _| u < v);
        assert_eq!(f.num_edges(), g.num_edges() / 2);
        assert!(f.iter_edges().all(|(u, v, _)| u < v));
    }

    #[test]
    fn unweighted_graph_stays_unweighted() {
        let el = EdgeList::new(3, vec![Edge::unit(0, 1), Edge::unit(1, 2)]).unwrap();
        let g = CsrGraph::from_edge_list(&el);
        let f = filter_graph(&g, |_, v, _| v != 2);
        assert!(!f.is_weighted());
        assert_eq!(f.num_edges(), 1);
    }

    #[test]
    fn filtered_graph_supports_traversal() {
        // BFS reachability changes coherently after cutting a bridge.
        let el = EdgeList::new(
            4,
            vec![
                Edge::unit(0, 1),
                Edge::unit(1, 0),
                Edge::unit(1, 2),
                Edge::unit(2, 1),
                Edge::unit(2, 3),
                Edge::unit(3, 2),
            ],
        )
        .unwrap();
        let g = CsrGraph::from_edge_list(&el);
        let cut = filter_graph(&g, |u, v, _| !(u.min(v) == 1 && u.max(v) == 2));
        // After cutting 1-2, vertex 3 is unreachable from 0.
        let frontier = crate::VertexSubset::single(4, 0);
        struct Never;
        impl crate::EdgeMapFn for Never {
            fn update(&self, _s: u32, _d: u32, _w: f64) -> bool {
                true
            }
            fn update_atomic(&self, s: u32, d: u32, w: f64) -> bool {
                self.update(s, d, w)
            }
        }
        let next = crate::edge_map(&cut, &frontier, &Never, crate::EdgeMapOptions::default());
        assert_eq!(next.to_ids(), vec![1]);
        assert_eq!(cut.out_degree(1), 1); // only back to 0
    }
}
