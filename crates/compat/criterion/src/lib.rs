//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no crates.io access; this crate keeps the
//! `benches/` targets compiling and runnable. Each benchmark closure is
//! warmed once and then timed over a handful of iterations, reporting the
//! median wall-clock time — no statistics, plots, or baselines. Swap in the
//! real criterion by replacing the path dependency.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How many timed iterations each benchmark runs (after one warm-up).
/// Deliberately small: these are smoke-benchmarks in offline builds.
const ITERS: usize = 5;

/// Benchmark identifier: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Throughput annotation — recorded but only echoed in output.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    /// Median per-call time of the last `iter` run.
    last: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        black_box(f()); // warm-up
        let mut times: Vec<Duration> = (0..ITERS)
            .map(|_| {
                let t = Instant::now();
                black_box(f());
                t.elapsed()
            })
            .collect();
        times.sort_unstable();
        self.last = times[times.len() / 2];
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut times: Vec<Duration> = (0..ITERS)
            .map(|_| {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                t.elapsed()
            })
            .collect();
        times.sort_unstable();
        self.last = times[times.len() / 2];
    }
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn run_one(name: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        last: Duration::ZERO,
    };
    f(&mut b);
    let extra = match throughput {
        Some(Throughput::Elements(n)) if b.last.as_nanos() > 0 => {
            format!("  ({:.1} Melem/s)", n as f64 / b.last.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) if b.last.as_nanos() > 0 => {
            format!("  ({:.1} MB/s)", n as f64 / b.last.as_secs_f64() / 1e6)
        }
        _ => String::new(),
    };
    println!("bench {name:<50} {:>12}{extra}", human(b.last));
}

/// Top-level driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, None, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
        }
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
}

/// Grouped benchmarks with shared throughput/sample settings.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_closure() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10)).sample_size(10);
        g.bench_with_input(BenchmarkId::new("f", 1), &5u32, |b, &x| b.iter(|| x * 2));
        g.finish();
    }
}
