//! Offline stand-in for serde's derive macros — but real ones.
//!
//! The original stand-in expanded `#[derive(Serialize)]` to nothing, which
//! was enough while JSON output went exclusively through the `json!`
//! macro. The wire protocol in `gee-serve` needs genuine round-trip
//! serialization of its `Request`/`Response`/`ServeError` enums, so these
//! derives now generate working impls of the compat `serde::Serialize` /
//! `serde::Deserialize` traits (a concrete-tree data model; see the
//! `serde` stand-in's docs for how it diverges from real serde).
//!
//! Implementation notes: with no `syn`/`quote` available offline, the item
//! is parsed directly from the `proc_macro::TokenStream` (names only — the
//! generated code never needs field *types*, because everything defers to
//! trait method calls resolved by inference), and the output is built as a
//! source string and re-parsed. Supported shapes, matching what the
//! workspace derives on:
//!
//! * structs with named fields, tuple structs, unit structs;
//! * enums whose variants are unit, named-field, or tuple.
//!
//! The encoding mirrors real serde's externally-tagged JSON defaults:
//! structs → objects; newtype variants → `{"Variant": inner}`; named-field
//! variants → `{"Variant": {..}}`; tuple variants → `{"Variant": [..]}`;
//! unit variants → `"Variant"`. Missing object keys deserialize as `null`,
//! which lets `Option` fields default to `None` (real serde's behavior)
//! while non-optional fields produce a type error mentioning `null`.
//!
//! Not supported (compile error): generic parameters, unions, and
//! `#[serde(...)]` attributes — nothing in the workspace uses them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Fields of a struct or enum variant.
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(item: TokenStream) -> TokenStream {
    expand(item, generate_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(item: TokenStream) -> TokenStream {
    expand(item, generate_deserialize)
}

fn expand(item: TokenStream, generate: fn(&Item) -> String) -> TokenStream {
    match parse_item(item) {
        Ok(item) => generate(&item)
            .parse()
            .expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("compile_error! always parses"),
    }
}

// ---------------------------------------------------------------- parsing

/// True for `#`; the following bracket group is the attribute body.
fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

fn ident_of(tt: &TokenTree) -> Option<String> {
    match tt {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

/// Advance past any `#[...]` attributes and a `pub` / `pub(...)`
/// visibility prefix, returning the new cursor.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        if i < toks.len() && is_punct(&toks[i], '#') {
            i += 2; // `#` + bracket group
            continue;
        }
        if i < toks.len() && ident_of(&toks[i]).as_deref() == Some("pub") {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1; // `pub(crate)` etc.
                }
            }
            continue;
        }
        return i;
    }
}

fn parse_item(ts: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let kind =
        ident_of(toks.get(i).ok_or("empty item")?).ok_or("expected `struct` or `enum` keyword")?;
    i += 1;
    let name = ident_of(toks.get(i).ok_or("missing item name")?)
        .ok_or("expected item name after struct/enum keyword")?;
    i += 1;
    if toks.get(i).is_some_and(|t| is_punct(t, '<')) {
        return Err(format!(
            "serde compat derive does not support generic parameters (on `{name}`)"
        ));
    }
    let body = match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Fields::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(t) if is_punct(t, ';') => Body::Struct(Fields::Unit),
            _ => return Err(format!("cannot parse body of struct `{name}`")),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream())?)
            }
            _ => return Err(format!("cannot parse body of enum `{name}`")),
        },
        other => return Err(format!("cannot derive serde traits for `{other}` items")),
    };
    Ok(Item { name, body })
}

/// Angle-bracket tracker for skipping type tokens. A comma only separates
/// fields when no angle brackets are open (parenthesized/bracketed
/// sub-streams arrive as atomic groups), and the `>` of an `->` return
/// arrow (fn-pointer / `dyn Fn` types) must not be counted as closing a
/// generic bracket.
struct TypeScanner {
    angle_depth: i32,
    after_joint_minus: bool,
}

impl TypeScanner {
    fn new() -> TypeScanner {
        TypeScanner {
            angle_depth: 0,
            after_joint_minus: false,
        }
    }

    /// Feed one type token; true when it is a top-level field-separating
    /// comma.
    fn is_field_separator(&mut self, t: &TokenTree) -> bool {
        let was_arrow_tail = self.after_joint_minus;
        self.after_joint_minus = false;
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '-' if p.spacing() == proc_macro::Spacing::Joint => self.after_joint_minus = true,
                '<' => self.angle_depth += 1,
                '>' if !was_arrow_tail => self.angle_depth -= 1,
                ',' if self.angle_depth == 0 => return true,
                _ => {}
            }
        }
        false
    }
}

/// Parse `name: Type, ...` field lists, returning the names. Types are
/// skipped wholesale via [`TypeScanner`].
fn parse_named_fields(ts: TokenStream) -> Result<Vec<String>, String> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = ident_of(&toks[i])
            .ok_or_else(|| format!("expected field name, found `{}`", toks[i]))?;
        names.push(name);
        i += 1;
        if !toks.get(i).is_some_and(|t| is_punct(t, ':')) {
            return Err("expected `:` after field name".into());
        }
        i += 1;
        let mut scanner = TypeScanner::new();
        while i < toks.len() {
            let sep = scanner.is_field_separator(&toks[i]);
            i += 1;
            if sep {
                break;
            }
        }
    }
    Ok(names)
}

/// Count the comma-separated types of a tuple field list.
fn count_tuple_fields(ts: TokenStream) -> usize {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut fields = 1;
    let mut scanner = TypeScanner::new();
    for (i, t) in toks.iter().enumerate() {
        if scanner.is_field_separator(t) && i + 1 != toks.len() {
            fields += 1;
        }
    }
    fields
}

fn parse_variants(ts: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = ident_of(&toks[i])
            .ok_or_else(|| format!("expected variant name, found `{}`", toks[i]))?;
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream())?);
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while i < toks.len() && !is_punct(&toks[i], ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ------------------------------------------------------------- generation

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => match fields {
            Fields::Named(names) => {
                let mut s =
                    String::from("let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n");
                for f in names {
                    s.push_str(&format!(
                        "__fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                    ));
                }
                s.push_str("::serde::Value::Object(__fields)");
                s
            }
            Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            }
            Fields::Unit => "::serde::Value::Null".to_string(),
        },
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    Fields::Named(fields) => {
                        let pat = fields.join(", ");
                        let mut inner = String::from(
                            "let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n",
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "__fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {pat} }} => {{ {inner} \
                             ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(__fields))]) }},\n"
                        ));
                    }
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                         ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                             ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => match fields {
            Fields::Named(names) => {
                let inits: Vec<String> = names
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(::serde::de_field(__v, \"{f}\")?)?"
                        )
                    })
                    .collect();
                format!("Ok({name} {{ {} }})", inits.join(", "))
            }
            Fields::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(__v)?))"),
            Fields::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                format!(
                    "let __items = ::serde::de_tuple(__v, {n}, \"{name}\")?;\n\
                     Ok({name}({}))",
                    inits.join(", ")
                )
            }
            Fields::Unit => format!("{{ let _ = __v; Ok({name}) }}"),
        },
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    Fields::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::de_field(__inner, \"{f}\")?)?"
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                    Fields::Tuple(1) => {
                        data_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __items = ::serde::de_tuple(__inner, {n}, \"{name}::{vn}\")?; \
                             Ok({name}::{vn}({})) }},\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                     ::serde::Value::String(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => Err(::serde::DeError(format!(\
                             \"unknown unit variant {{__other:?}} for enum {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                         let (__tag, __inner) = &__pairs[0];\n\
                         match __tag.as_str() {{\n\
                             {data_arms}\
                             __other => Err(::serde::DeError(format!(\
                                 \"unknown variant {{__other:?}} for enum {name}\"))),\n\
                         }}\n\
                     }},\n\
                     __other => Err(::serde::DeError(format!(\
                         \"invalid representation for enum {name}: {{:?}}\", __other))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
