//! Offline stand-in for [rand 0.8](https://crates.io/crates/rand).
//!
//! Provides the subset this workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`, and
//! `seq::SliceRandom::{shuffle, choose}` — with a deterministic
//! xoshiro256\*\* generator seeded via SplitMix64. Streams are stable
//! across platforms and runs (everything in this workspace takes explicit
//! seeds), though they differ from the real `rand` crate's output.

use std::ops::Range;

/// Minimal core RNG interface: a 64-bit output step.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256\*\* generator (Blackman & Vigna), seeded
    /// through SplitMix64 exactly as the reference implementation
    /// recommends.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types usable with [`Rng::gen_range`] over a half-open `Range`.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u64;
                // Multiply-shift bounded sampling; bias is < 2^-64·span,
                // immaterial for test workloads.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (range.start as i128 + hi as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        range.start + u * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        range.start + u * (range.end - range.start)
    }
}

/// The user-facing RNG trait, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod seq {
    use super::Rng;

    /// Slice shuffling/choosing, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng>(&mut self, rng: &mut R);
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
        /// Shuffle the first `amount` elements into place (partial
        /// Fisher–Yates); returns the shuffled prefix and the rest.
        fn partial_shuffle<R: Rng>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn partial_shuffle<R: Rng>(&mut self, rng: &mut R, amount: usize) -> (&mut [T], &mut [T]) {
            let amount = amount.min(self.len());
            for i in 0..amount {
                let j = rng.gen_range(i..self.len());
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_lo = false;
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..10);
            assert!((3..10).contains(&x));
            seen_lo |= x == 3;
        }
        assert!(seen_lo, "lower bound should be reachable");
        let f = rng.gen_range(-2.0f64..2.0);
        assert!((-2.0..2.0).contains(&f));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle should almost surely move something"
        );
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
