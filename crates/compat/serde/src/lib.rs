//! Offline stand-in for [serde](https://crates.io/crates/serde).
//!
//! Real serde is generic over an abstract data model mediated by
//! `Serializer`/`Deserializer` visitors. This stand-in collapses that
//! model to one concrete self-describing tree — [`Value`], the type
//! `serde_json` calls by the same name (the `serde_json` stand-in
//! re-exports it) — which is all the workspace needs: every serialized
//! byte here is JSON.
//!
//! * [`Serialize`] renders a type into a [`Value`];
//! * [`Deserialize`] rebuilds a type from a [`&Value`](Value), reporting
//!   mismatches as [`DeError`];
//! * `#[derive(Serialize)]` / `#[derive(Deserialize)]` (re-exported from
//!   the `serde_derive` stand-in) generate real impls following serde's
//!   externally-tagged enum conventions, so `decode(encode(x)) == x`
//!   round-trips hold for derived types;
//! * [`Number`] keeps `u64`/`i64` exact (not squeezed through `f64`), so
//!   epoch counters and other 64-bit ids survive the wire bit-for-bit.
//!
//! Missing object keys deserialize as [`Value::Null`]; combined with
//! `Option<T>`'s impl this gives serde's "absent `Option` field is
//! `None`" behavior, while absent required fields fail with a type error.

use std::fmt;

// Let the generated `::serde::` paths resolve inside this crate's own
// tests as well as in downstream crates.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON number: exact unsigned/signed integers, or a float.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer (everything `0..=u64::MAX`).
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Anything with a fractional part or exponent.
    Float(f64),
}

impl Number {
    /// Lossy view as `f64` (always succeeds; huge integers round).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::PosInt(x) => x as f64,
            Number::NegInt(x) => x as f64,
            Number::Float(x) => x,
        }
    }

    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::PosInt(x) => Some(x),
            Number::NegInt(_) => None,
            // The old stand-in treated integral floats as integers; keep
            // that leniency for callers reading `json!`-built values.
            Number::Float(x) if x >= 0.0 && x.fract() == 0.0 && x < 9e15 => Some(x as u64),
            Number::Float(_) => None,
        }
    }

    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::PosInt(x) => i64::try_from(x).ok(),
            Number::NegInt(x) => Some(x),
            Number::Float(x) if x.fract() == 0.0 && x.abs() < 9e15 => Some(x as i64),
            Number::Float(_) => None,
        }
    }
}

macro_rules! impl_number_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(x: $t) -> Number {
                Number::PosInt(x as u64)
            }
        }
    )*};
}

macro_rules! impl_number_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(x: $t) -> Number {
                if x < 0 {
                    Number::NegInt(x as i64)
                } else {
                    Number::PosInt(x as u64)
                }
            }
        }
    )*};
}

impl_number_from_unsigned!(u8, u16, u32, u64, usize);
impl_number_from_signed!(i8, i16, i32, i64, isize);

impl From<f32> for Number {
    fn from(x: f32) -> Number {
        Number::Float(f64::from(x))
    }
}

impl From<f64> for Number {
    fn from(x: f64) -> Number {
        Number::Float(x)
    }
}

/// A JSON value — the concrete data model shared by the `serde` and
/// `serde_json` stand-ins. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Short description of the value's kind, for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

// From impls used by the `json!` macro in the serde_json stand-in.
macro_rules! impl_value_from_number {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(x: $t) -> Value {
                Value::Number(Number::from(x))
            }
        }
    )*};
}

impl_value_from_number!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::String(s.clone())
    }
}

impl From<Vec<Value>> for Value {
    fn from(a: Vec<Value>) -> Value {
        Value::Array(a)
    }
}

impl From<&Vec<Value>> for Value {
    fn from(a: &Vec<Value>) -> Value {
        Value::Array(a.clone())
    }
}

impl<T> From<Option<T>> for Value
where
    Value: From<T>,
{
    fn from(o: Option<T>) -> Value {
        match o {
            Some(x) => Value::from(x),
            None => Value::Null,
        }
    }
}

impl From<&Value> for Value {
    fn from(v: &Value) -> Value {
        v.clone()
    }
}

/// Deserialization failure: a human-readable type/shape mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

fn type_error(expected: &str, found: &Value) -> DeError {
    DeError(format!("expected {expected}, found {}", found.kind()))
}

/// Render `self` into the concrete data model.
///
/// Real serde's `fn serialize<S: Serializer>` collapsed to the one
/// serializer this workspace has.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from the concrete data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------- helpers
// used by the generated derive code (public but hidden from docs).

/// Object field lookup for derived `Deserialize` impls. Missing keys
/// resolve to `Null` so `Option` fields default to `None`.
#[doc(hidden)]
pub fn de_field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, DeError> {
    match v {
        Value::Object(_) => Ok(v.get(name).unwrap_or(&NULL)),
        other => Err(type_error("object", other)),
    }
}

/// Fixed-arity array access for derived tuple-variant impls.
#[doc(hidden)]
pub fn de_tuple<'a>(v: &'a Value, n: usize, what: &str) -> Result<&'a [Value], DeError> {
    match v {
        Value::Array(items) if items.len() == n => Ok(items),
        Value::Array(items) => Err(DeError(format!(
            "expected {n} elements for {what}, found {}",
            items.len()
        ))),
        other => Err(type_error("array", other)),
    }
}

// ------------------------------------------------------- primitive impls

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        v.as_bool().ok_or_else(|| type_error("bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| type_error("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from(*self))
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let Value::Number(n) = v else {
                    return Err(type_error(stringify!($t), v));
                };
                let out = match *n {
                    Number::PosInt(x) => <$t>::try_from(x).ok(),
                    Number::NegInt(x) => <$t>::try_from(x).ok(),
                    Number::Float(_) => None,
                };
                out.ok_or_else(|| DeError(format!(
                    "number {n:?} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, DeError> {
        match v {
            // The paired encoder prints non-finite floats as `null`
            // (JSON has no NaN/Inf); accept the round trip so a NaN
            // reaches domain validation instead of killing the decode.
            Value::Null => Ok(f64::NAN),
            _ => v.as_f64().ok_or_else(|| type_error("number", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, DeError> {
        match v {
            Value::Null => Ok(f32::NAN),
            _ => v
                .as_f64()
                .map(|x| x as f32)
                .ok_or_else(|| type_error("number", v)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(type_error("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

/// `Result` follows real serde's externally tagged form:
/// `{"Ok": ..}` / `{"Err": ..}`.
impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn to_value(&self) -> Value {
        match self {
            Ok(x) => Value::Object(vec![("Ok".to_string(), x.to_value())]),
            Err(e) => Value::Object(vec![("Err".to_string(), e.to_value())]),
        }
    }
}

impl<T: Deserialize, E: Deserialize> Deserialize for Result<T, E> {
    fn from_value(v: &Value) -> Result<Result<T, E>, DeError> {
        match v {
            Value::Object(pairs) if pairs.len() == 1 => match pairs[0].0.as_str() {
                "Ok" => Ok(Ok(T::from_value(&pairs[0].1)?)),
                "Err" => Ok(Err(E::from_value(&pairs[0].1)?)),
                other => Err(DeError(format!("unknown Result variant {other:?}"))),
            },
            other => Err(type_error("single-key object (Result)", other)),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($($name:ident : $idx:tt),+ ; $len:expr) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = de_tuple(v, $len, "tuple")?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    };
}

impl_serde_tuple!(A: 0, B: 1; 2);
impl_serde_tuple!(A: 0, B: 1, C: 2; 3);
impl_serde_tuple!(A: 0, B: 1, C: 2, D: 3; 4);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_are_exact() {
        assert_eq!(u64::from_value(&u64::MAX.to_value()), Ok(u64::MAX));
        assert_eq!(i64::from_value(&i64::MIN.to_value()), Ok(i64::MIN));
        assert_eq!(
            Value::from(u64::MAX),
            Value::Number(Number::PosInt(u64::MAX))
        );
        assert!(
            u32::from_value(&Value::from(1u64 << 40)).is_err(),
            "range-checked"
        );
        assert!(
            u64::from_value(&Value::from(-1i32)).is_err(),
            "sign-checked"
        );
    }

    #[test]
    fn option_treats_null_and_missing_as_none() {
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        let obj = Value::Object(vec![]);
        let field = de_field(&obj, "absent").unwrap();
        assert_eq!(Option::<u32>::from_value(field), Ok(None));
        assert!(
            u32::from_value(field).is_err(),
            "required fields still fail"
        );
    }

    #[test]
    fn vec_tuple_result_round_trip() {
        let x: Vec<(u32, f64)> = vec![(1, 0.5), (7, -2.25)];
        assert_eq!(Vec::<(u32, f64)>::from_value(&x.to_value()), Ok(x));
        let ok: Result<u32, String> = Ok(3);
        let err: Result<u32, String> = Err("boom".to_string());
        assert_eq!(
            Result::<u32, String>::from_value(&ok.to_value()).unwrap(),
            ok
        );
        assert_eq!(
            Result::<u32, String>::from_value(&err.to_value()).unwrap(),
            err
        );
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Point {
        x: i32,
        tag: Option<String>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Shape {
        Dot,
        Circle { center: Point, r: f64 },
        Pair(u32, u32),
        Label(String),
    }

    #[test]
    fn derived_struct_round_trips() {
        for p in [
            Point {
                x: -3,
                tag: Some("a\"b\\c\n".to_string()),
            },
            Point {
                x: i32::MAX,
                tag: None,
            },
        ] {
            assert_eq!(Point::from_value(&p.to_value()), Ok(p));
        }
    }

    #[test]
    fn derived_enum_round_trips_every_shape() {
        for s in [
            Shape::Dot,
            Shape::Circle {
                center: Point { x: 0, tag: None },
                r: 1.5,
            },
            Shape::Pair(4, u32::MAX),
            Shape::Label(String::new()),
        ] {
            assert_eq!(Shape::from_value(&s.to_value()), Ok(s));
        }
    }

    #[test]
    fn derived_enum_follows_serde_tagging() {
        assert_eq!(Shape::Dot.to_value(), Value::String("Dot".to_string()));
        let v = Shape::Label("x".to_string()).to_value();
        assert_eq!(
            v["Label"].as_str(),
            Some("x"),
            "newtype variant wraps inner directly"
        );
        let v = Shape::Pair(1, 2).to_value();
        assert_eq!(
            v["Pair"][1].as_u64(),
            Some(2),
            "tuple variant wraps an array"
        );
    }

    // Fn pointers have no canonical encoding; a throwaway impl lets the
    // scanner regression below exercise `->` in a real field type.
    impl Serialize for fn(u32) -> u32 {
        fn to_value(&self) -> Value {
            Value::Null
        }
    }

    #[derive(Serialize)]
    #[allow(dead_code)]
    struct WithArrowType {
        f: fn(u32) -> u32,
        g: u32,
    }

    #[test]
    fn derive_survives_return_arrows_in_field_types() {
        // Regression: the `>` of `->` must not be miscounted as closing a
        // generic bracket, which would silently drop later fields.
        fn double(x: u32) -> u32 {
            x * 2
        }
        let v = WithArrowType { f: double, g: 9 }.to_value();
        assert_eq!(
            v["g"].as_u64(),
            Some(9),
            "field after the arrow type must serialize"
        );
    }

    #[test]
    fn unknown_variant_is_an_error() {
        assert!(Shape::from_value(&Value::String("Nope".to_string())).is_err());
        let v = Value::Object(vec![("Nope".to_string(), Value::Null)]);
        assert!(Shape::from_value(&v).is_err());
    }
}
