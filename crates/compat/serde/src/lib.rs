//! Offline stand-in for serde's derive macros.
//!
//! The workspace only *derives* `serde::Serialize` on a couple of benchmark
//! types and never calls serialization through the trait (all JSON output
//! goes through the `serde_json` stand-in's `json!` macro, which builds
//! values explicitly). These derives therefore expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
