//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of rayon's data-parallel API the workspace uses, implemented
//! on `std::thread::scope`. Parallel iterators are *eager*: every adapter
//! materializes its input, splits it into contiguous chunks (one per
//! worker), and runs the per-item closure on scoped threads, preserving
//! input order. That keeps the semantics rayon guarantees for this
//! workspace's call sites — indexed/ordered zip, enumerate, collect — while
//! still exercising real multi-threaded execution (the atomics tests and
//! the paper's parallel embedding genuinely race across cores).
//!
//! Swap in the real rayon by replacing the path dependency; the API below
//! is signature-compatible for everything the workspace calls.

use std::cell::Cell;
use std::ops::Range;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads the calling context would use.
pub fn current_num_threads() -> usize {
    let n = POOL_THREADS.with(|t| t.get());
    if n > 0 {
        n
    } else {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder` for the `install` pattern.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type for [`ThreadPoolBuilder::build`] (building never fails here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A "pool" that scopes a thread-count override. Work is still executed by
/// scoped threads spawned at each parallel operation; `install` pins how
/// many of them each operation uses.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|t| t.replace(self.num_threads));
        let out = f();
        POOL_THREADS.with(|t| t.set(prev));
        out
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon-compat: join worker panicked"))
    })
}

/// Map `f` over `items` on `current_num_threads()` scoped threads,
/// preserving order. The work is split into contiguous chunks, one per
/// worker.
fn parallel_map<T: Send, O: Send>(items: Vec<T>, f: impl Fn(T) -> O + Sync) -> Vec<O> {
    let threads = current_num_threads().max(1);
    let len = items.len();
    if threads == 1 || len <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = len.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f = &f;
    let outputs: Vec<Vec<O>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon-compat: map worker panicked"))
            .collect()
    });
    outputs.into_iter().flatten().collect()
}

/// An eager "parallel iterator": a materialized, ordered item buffer whose
/// adapters run on scoped threads.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    fn new(items: Vec<T>) -> Self {
        ParIter { items }
    }

    pub fn map<O: Send, F: Fn(T) -> O + Sync>(self, f: F) -> ParIter<O> {
        ParIter::new(parallel_map(self.items, f))
    }

    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        parallel_map(self.items, |x| f(x));
    }

    pub fn filter<F: Fn(&T) -> bool + Sync>(self, f: F) -> ParIter<T> {
        let kept = parallel_map(self.items, |x| if f(&x) { Some(x) } else { None });
        ParIter::new(kept.into_iter().flatten().collect())
    }

    pub fn filter_map<O: Send, F: Fn(T) -> Option<O> + Sync>(self, f: F) -> ParIter<O> {
        let kept = parallel_map(self.items, f);
        ParIter::new(kept.into_iter().flatten().collect())
    }

    pub fn flat_map<O, I, F>(self, f: F) -> ParIter<O>
    where
        O: Send,
        I: IntoIterator<Item = O> + Send,
        F: Fn(T) -> I + Sync,
    {
        let nested = parallel_map(self.items, |x| f(x).into_iter().collect::<Vec<O>>());
        ParIter::new(nested.into_iter().flatten().collect())
    }

    /// Rayon's `flat_map_iter` — same eager semantics as [`Self::flat_map`]
    /// here.
    pub fn flat_map_iter<O, I, F>(self, f: F) -> ParIter<O>
    where
        O: Send,
        I: IntoIterator<Item = O> + Send,
        F: Fn(T) -> I + Sync,
    {
        self.flat_map(f)
    }

    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter::new(self.items.into_iter().enumerate().collect())
    }

    pub fn zip<Z>(self, other: Z) -> ParIter<(T, Z::Item)>
    where
        Z: IntoParallelIterator,
    {
        let rhs = other.into_par_iter().items;
        ParIter::new(self.items.into_iter().zip(rhs).collect())
    }

    pub fn chain<Z>(self, other: Z) -> ParIter<T>
    where
        Z: IntoParallelIterator<Item = T>,
    {
        let mut items = self.items;
        items.extend(other.into_par_iter().items);
        ParIter::new(items)
    }

    /// Rayon-style fold: one accumulator per worker chunk; yields the
    /// partial accumulators as a new parallel iterator.
    pub fn fold<Acc, Id, F>(self, identity: Id, fold_op: F) -> ParIter<Acc>
    where
        Acc: Send,
        Id: Fn() -> Acc + Sync,
        F: Fn(Acc, T) -> Acc + Sync,
    {
        let threads = current_num_threads().max(1);
        let len = self.items.len();
        if len == 0 {
            return ParIter::new(Vec::new());
        }
        let chunk = len.div_ceil(threads);
        let mut chunks: Vec<Vec<T>> = Vec::new();
        let mut it = self.items.into_iter();
        loop {
            let c: Vec<T> = it.by_ref().take(chunk).collect();
            if c.is_empty() {
                break;
            }
            chunks.push(c);
        }
        let partials = parallel_map(chunks, |c| c.into_iter().fold(identity(), &fold_op));
        ParIter::new(partials)
    }

    /// Rayon-style reduce with an identity closure.
    pub fn reduce<Id, F>(self, identity: Id, op: F) -> T
    where
        Id: Fn() -> T + Sync,
        F: Fn(T, T) -> T + Sync,
    {
        self.items.into_iter().fold(identity(), op)
    }

    pub fn count(self) -> usize {
        self.items.len()
    }

    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    pub fn min(self) -> Option<T>
    where
        T: Ord,
    {
        self.items.into_iter().min()
    }

    pub fn max(self) -> Option<T>
    where
        T: Ord,
    {
        self.items.into_iter().max()
    }

    pub fn max_by<F: Fn(&T, &T) -> std::cmp::Ordering>(self, cmp: F) -> Option<T> {
        self.items.into_iter().max_by(cmp)
    }

    pub fn min_by<F: Fn(&T, &T) -> std::cmp::Ordering>(self, cmp: F) -> Option<T> {
        self.items.into_iter().min_by(cmp)
    }

    pub fn any<F: Fn(T) -> bool + Sync>(self, f: F) -> bool {
        parallel_map(self.items, |x| f(x)).into_iter().any(|b| b)
    }

    pub fn all<F: Fn(T) -> bool + Sync>(self, f: F) -> bool {
        parallel_map(self.items, |x| f(x)).into_iter().all(|b| b)
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    pub fn with_max_len(self, _max: usize) -> Self {
        self
    }
}

impl<'a, T: Sync> ParIter<&'a T> {
    pub fn copied(self) -> ParIter<T>
    where
        T: Copy + Send,
    {
        ParIter::new(self.items.into_iter().copied().collect())
    }

    pub fn cloned(self) -> ParIter<T>
    where
        T: Clone + Send,
    {
        ParIter::new(self.items.into_iter().cloned().collect())
    }
}

/// Conversion into a [`ParIter`] — rayon's `IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter::new(self)
    }
}

impl<T: Send> IntoParallelIterator for ParIter<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter::new(self.iter().collect())
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter::new(self.iter().collect())
    }
}

macro_rules! impl_range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter::new(self.collect())
            }
        }
    )*};
}

impl_range_into_par_iter!(u8, u16, u32, u64, usize, i32, i64, isize);

/// `par_iter` / `par_chunks` on shared slices (and anything derefing to
/// them, e.g. `Vec`).
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<&T>;
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter::new(self.iter().collect())
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter::new(self.chunks(chunk_size).collect())
    }
}

/// `par_iter_mut` / `par_chunks_mut` / `par_sort_*` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
    fn par_sort(&mut self)
    where
        T: Ord;
    fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F);
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter::new(self.iter_mut().collect())
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter::new(self.chunks_mut(chunk_size).collect())
    }

    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.sort();
    }

    fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F) {
        self.sort_by_key(f);
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }
}

pub mod iter {
    pub use crate::{IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut};
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u32> = (0..10_000u32).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i as u32));
    }

    #[test]
    fn fold_reduce_matches_serial() {
        let total: u64 = (0..1000u64)
            .into_par_iter()
            .fold(|| 0u64, |a, b| a + b)
            .sum();
        assert_eq!(total, 499_500);
        let (lo, hi) = (0..1000u64)
            .into_par_iter()
            .map(|x| (x, x))
            .reduce(|| (u64::MAX, 0), |a, b| (a.0.min(b.0), a.1.max(b.1)));
        assert_eq!((lo, hi), (0, 999));
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.install(crate::current_num_threads), 3);
        assert_ne!(crate::current_num_threads(), 0);
    }

    #[test]
    fn zip_chunks_mut_writes_through() {
        let mut out = vec![0u32; 100];
        let input: Vec<u32> = (0..100).collect();
        out.par_chunks_mut(7)
            .zip(input.par_chunks(7))
            .for_each(|(o, i)| {
                for (slot, &x) in o.iter_mut().zip(i) {
                    *slot = x + 1;
                }
            });
        assert!(out.iter().enumerate().all(|(i, &x)| x == i as u32 + 1));
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = crate::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }
}
