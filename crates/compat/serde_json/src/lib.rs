//! Offline stand-in for [serde_json](https://crates.io/crates/serde_json).
//!
//! The data model ([`Value`], [`Number`]) lives in the `serde` stand-in
//! (mirroring the real crates' dependency direction) and is re-exported
//! here, so `serde_json::Value` keeps working everywhere. On top of it
//! this crate provides:
//!
//! * the [`json!`] macro over object/array/expression literals;
//! * serialization — [`to_string`], [`to_string_pretty`], [`to_vec`] —
//!   for any [`serde::Serialize`] type (derived or hand-written);
//! * parsing — [`from_str`], [`from_slice`], [`from_value`] — into any
//!   [`serde::Deserialize`] type, via a recursive-descent JSON parser
//!   with full string-escape handling (`\uXXXX` incl. surrogate pairs),
//!   exact `u64`/`i64` integers, and a nesting-depth limit so adversarial
//!   wire input cannot blow the stack.
//!
//! Divergences from real serde_json, acceptable offline: objects are
//! ordered pairs (no map dedup — last key wins on lookup of duplicates is
//! NOT implemented; first wins), and non-finite floats print as `null`
//! (real serde_json's `json!` does the same via `Number::from_f64`).

use std::fmt::Write as _;

pub use serde::{Number, Value};

/// Parse/serialize error with a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.0)
    }
}

// ---------------------------------------------------------- serialization

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(n: Number) -> String {
    match n {
        Number::PosInt(x) => x.to_string(),
        Number::NegInt(x) => x.to_string(),
        // Integral floats keep a ".0" (like real serde_json) so the
        // parser reproduces Number::Float and Value-level round trips
        // are idempotent instead of silently retyping floats as ints.
        Number::Float(x) if x.is_finite() && x.fract() == 0.0 => format!("{x:.1}"),
        Number::Float(x) if x.is_finite() => format!("{x}"),
        // Real JSON has no Inf/NaN; mirror serde_json's lossy behavior.
        Number::Float(_) => "null".to_string(),
    }
}

fn write_value(out: &mut String, v: &Value, indent: usize, pretty: bool) {
    let pad = |out: &mut String, n: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..n {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(x) => out.push_str(&number_to_string(*x)),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                write_value(out, item, indent + 1, pretty);
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                escape_into(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, val, indent + 1, pretty);
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

/// Compact serialization of any [`serde::Serialize`] type.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0, false);
    Ok(out)
}

/// Two-space-indented serialization, like serde_json's.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0, true);
    Ok(out)
}

/// Compact serialization straight to bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

// ---------------------------------------------------------------- parsing

/// Maximum array/object nesting the parser accepts. Deeper input — which
/// no legitimate frame produces — is rejected instead of recursing toward
/// a stack overflow.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected {lit})")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected ',' or ']' in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value(depth + 1)?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(self.err("expected ',' or '}' in object")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut run_start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    out.push_str(self.str_slice(run_start, self.pos)?);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.str_slice(run_start, self.pos)?);
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    run_start = self.pos;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    /// A literal (escape-free) run of string bytes, validated as UTF-8.
    fn str_slice(&self, start: usize, end: usize) -> Result<&'a str, Error> {
        std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| Error(format!("invalid UTF-8 in string at byte {start}")))
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut x = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            x = x * 16 + d;
            self.pos += 1;
        }
        Ok(x)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
            return Err(self.err("expected digit"));
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
                return Err(self.err("expected digit after '.'"));
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
                return Err(self.err("expected exponent digit"));
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        let n = if integral {
            if negative {
                // -0 has no NegInt representation; fall through to i64/f64.
                match text.parse::<i64>() {
                    Ok(0) => Number::PosInt(0),
                    Ok(x) => Number::NegInt(x),
                    Err(_) => {
                        Number::Float(text.parse::<f64>().map_err(|_| self.err("bad number"))?)
                    }
                }
            } else {
                match text.parse::<u64>() {
                    Ok(x) => Number::PosInt(x),
                    Err(_) => {
                        Number::Float(text.parse::<f64>().map_err(|_| self.err("bad number"))?)
                    }
                }
            }
        } else {
            Number::Float(text.parse::<f64>().map_err(|_| self.err("bad number"))?)
        };
        Ok(Value::Number(n))
    }
}

/// Parse a JSON document into any [`serde::Deserialize`] type
/// (`from_str::<Value>` gives the raw tree).
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    from_slice(s.as_bytes())
}

/// [`from_str`] over raw bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let mut p = Parser { bytes, pos: 0 };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(T::from_value(&v)?)
}

/// Rebuild a typed value from an already-parsed tree.
pub fn from_value<T: serde::Deserialize>(v: &Value) -> Result<T, Error> {
    Ok(T::from_value(v)?)
}

/// Build a [`Value`] from JSON-ish syntax: objects, arrays, and Rust
/// expressions in value position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object(Vec::new()) };
    ([]) => { $crate::Value::Array(Vec::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut pairs: Vec<(String, $crate::Value)> = Vec::new();
        $crate::json_object_internal!(pairs; $($tt)+);
        $crate::Value::Object(pairs)
    }};
    ([ $($tt:tt)+ ]) => {{
        let mut items: Vec<$crate::Value> = Vec::new();
        $crate::json_array_internal!(items; $($tt)+);
        $crate::Value::Array(items)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_object_internal {
    ($pairs:ident;) => {};
    // Nested object / array values must be matched before the generic
    // expression arm (a bare `{ "k": v }` is not a valid Rust expression).
    ($pairs:ident; $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $pairs.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $crate::json_object_internal!($pairs; $($rest)*);
    };
    ($pairs:ident; $key:literal : { $($inner:tt)* } $(,)?) => {
        $pairs.push(($key.to_string(), $crate::json!({ $($inner)* })));
    };
    ($pairs:ident; $key:literal : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $pairs.push(($key.to_string(), $crate::json!([ $($inner)* ])));
        $crate::json_object_internal!($pairs; $($rest)*);
    };
    ($pairs:ident; $key:literal : [ $($inner:tt)* ] $(,)?) => {
        $pairs.push(($key.to_string(), $crate::json!([ $($inner)* ])));
    };
    ($pairs:ident; $key:literal : null , $($rest:tt)*) => {
        $pairs.push(($key.to_string(), $crate::Value::Null));
        $crate::json_object_internal!($pairs; $($rest)*);
    };
    ($pairs:ident; $key:literal : null $(,)?) => {
        $pairs.push(($key.to_string(), $crate::Value::Null));
    };
    ($pairs:ident; $key:literal : $val:expr , $($rest:tt)*) => {
        $pairs.push(($key.to_string(), $crate::Value::from($val)));
        $crate::json_object_internal!($pairs; $($rest)*);
    };
    ($pairs:ident; $key:literal : $val:expr) => {
        $pairs.push(($key.to_string(), $crate::Value::from($val)));
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_array_internal {
    ($items:ident;) => {};
    ($items:ident; { $($inner:tt)* } , $($rest:tt)*) => {
        $items.push($crate::json!({ $($inner)* }));
        $crate::json_array_internal!($items; $($rest)*);
    };
    ($items:ident; { $($inner:tt)* } $(,)?) => {
        $items.push($crate::json!({ $($inner)* }));
    };
    ($items:ident; [ $($inner:tt)* ] , $($rest:tt)*) => {
        $items.push($crate::json!([ $($inner)* ]));
        $crate::json_array_internal!($items; $($rest)*);
    };
    ($items:ident; [ $($inner:tt)* ] $(,)?) => {
        $items.push($crate::json!([ $($inner)* ]));
    };
    ($items:ident; null , $($rest:tt)*) => {
        $items.push($crate::Value::Null);
        $crate::json_array_internal!($items; $($rest)*);
    };
    ($items:ident; null $(,)?) => {
        $items.push($crate::Value::Null);
    };
    ($items:ident; $val:expr , $($rest:tt)*) => {
        $items.push($crate::Value::from($val));
        $crate::json_array_internal!($items; $($rest)*);
    };
    ($items:ident; $val:expr) => {
        $items.push($crate::Value::from($val));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_macro_and_accessors() {
        let name = "er";
        let secs = 0.125f64;
        let v = json!({ "graph": name, "seconds": secs, "n": 100usize, "nested": { "x": 1 }, "none": Option::<f64>::None });
        assert_eq!(v["graph"].as_str(), Some("er"));
        assert_eq!(v["seconds"].as_f64(), Some(0.125));
        assert_eq!(v["n"].as_u64(), Some(100));
        assert_eq!(v["nested"]["x"].as_f64(), Some(1.0));
        assert!(v["none"].is_null());
        assert!(v["missing"].is_null());
    }

    #[test]
    fn arrays_and_vec_interpolation() {
        let mut rows = Vec::new();
        rows.push(json!({ "a": 1 }));
        rows.push(json!({ "a": 2 }));
        let v = json!({ "rows": rows, "inline": [1, 2, 3] });
        assert_eq!(v["rows"][1]["a"].as_f64(), Some(2.0));
        assert_eq!(v["inline"][0].as_f64(), Some(1.0));
    }

    #[test]
    fn pretty_round_trips_shape() {
        let v = json!({ "x": 1.5, "s": "a\"b", "arr": [true, null] });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"x\": 1.5"));
        assert!(s.contains("\\\""));
        assert!(s.contains("null"));
        let compact = to_string(&v).unwrap();
        assert!(!compact.contains('\n'));
        assert_eq!(from_str::<Value>(&s).unwrap(), v, "pretty output reparses");
        assert_eq!(
            from_str::<Value>(&compact).unwrap(),
            v,
            "compact output reparses"
        );
    }

    #[test]
    fn floats_stay_floats_through_round_trips() {
        assert_eq!(to_string(&json!({ "n": 3.0 })).unwrap(), "{\"n\":3.0}");
        assert_eq!(to_string(&json!(2.5f64)).unwrap(), "2.5");
        assert_eq!(to_string(&json!(3usize)).unwrap(), "3");
        // Value-level idempotence: the Number variant survives.
        for v in [json!(3.0f64), json!(-0.0f64), json!(1e18f64), json!(7u64)] {
            let text = to_string(&v).unwrap();
            assert_eq!(from_str::<Value>(&text).unwrap(), v, "{text}");
        }
        assert_eq!(
            from_str::<Value>("3.0").unwrap(),
            Value::Number(Number::Float(3.0))
        );
        assert_eq!(
            from_str::<Value>("3").unwrap(),
            Value::Number(Number::PosInt(3))
        );
    }

    #[test]
    fn parses_scalars_and_structures() {
        assert_eq!(from_str::<Value>(" null ").unwrap(), Value::Null);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>("-9223372036854775808").unwrap(), i64::MIN);
        assert_eq!(from_str::<f64>("-1.25e2").unwrap(), -125.0);
        assert_eq!(from_str::<Vec<u32>>("[1, 2,3]").unwrap(), vec![1, 2, 3]);
        let v: Value = from_str("{\"a\": [1, {\"b\": null}], \"c\": \"x\"}").unwrap();
        assert_eq!(v["a"][1]["b"], Value::Null);
        assert_eq!(v["c"].as_str(), Some("x"));
    }

    #[test]
    fn parses_string_escapes() {
        let s: String = from_str(r#""a\"b\\c\/d\n\t\u0041\u00e9\ud83e\udd80""#).unwrap();
        assert_eq!(s, "a\"b\\c/d\n\tAé🦀");
        // Escape → parse round trip over awkward content.
        let original = "quote\" backslash\\ newline\n control\u{1} unicode é🦀".to_string();
        let text = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&text).unwrap(), original);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "01x",
            "\"unterminated",
            "1 2",
            "{\"a\":}",
            "\"\\q\"",
            "\"\\ud800\"",
            "nul",
        ] {
            assert!(from_str::<Value>(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(from_str::<Value>(&deep).is_err());
        let ok = "[".repeat(60) + &"]".repeat(60);
        assert!(from_str::<Value>(&ok).is_ok());
    }

    #[test]
    fn typed_round_trip_through_text() {
        let x: Vec<(u32, f64)> = vec![(0, 0.125), (u32::MAX, -3.5)];
        let text = to_string(&x).unwrap();
        assert_eq!(from_str::<Vec<(u32, f64)>>(&text).unwrap(), x);
        let opt: Vec<Option<u32>> = vec![None, Some(7)];
        let text = to_string(&opt).unwrap();
        assert_eq!(from_str::<Vec<Option<u32>>>(&text).unwrap(), opt);
    }
}
