//! Offline stand-in for [serde_json](https://crates.io/crates/serde_json).
//!
//! Provides the subset the benchmark binaries use: the [`json!`] macro over
//! object/array/expression literals, [`Value`] with `as_f64`/`as_str` and
//! string indexing, and [`to_string_pretty`]. Numbers are stored as `f64`
//! (printed without a fractional part when integral), objects preserve
//! insertion order.

use std::fmt::Write as _;
use std::ops::Index;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// Error type for the serializer API (serialization never fails here).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error")
    }
}

impl std::error::Error for Error {}

static NULL: Value = Value::Null;

impl Value {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(x) if x.fract() == 0.0 => Some(*x as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! impl_from_number {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(x: $t) -> Value {
                Value::Number(x as f64)
            }
        }
    )*};
}

impl_from_number!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::String(s.clone())
    }
}

impl From<Vec<Value>> for Value {
    fn from(a: Vec<Value>) -> Value {
        Value::Array(a)
    }
}

impl From<&Vec<Value>> for Value {
    fn from(a: &Vec<Value>) -> Value {
        Value::Array(a.clone())
    }
}

impl<T> From<Option<T>> for Value
where
    Value: From<T>,
{
    fn from(o: Option<T>) -> Value {
        match o {
            Some(x) => Value::from(x),
            None => Value::Null,
        }
    }
}

impl From<&Value> for Value {
    fn from(v: &Value) -> Value {
        v.clone()
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(x: f64) -> String {
    if x.is_finite() && x.fract() == 0.0 && x.abs() < 9e15 {
        format!("{}", x as i64)
    } else if x.is_finite() {
        format!("{x}")
    } else {
        // Real JSON has no Inf/NaN; mirror serde_json's lossy behavior.
        "null".to_string()
    }
}

fn write_value(out: &mut String, v: &Value, indent: usize, pretty: bool) {
    let pad = |out: &mut String, n: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..n {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(x) => out.push_str(&number_to_string(*x)),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                write_value(out, item, indent + 1, pretty);
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                escape_into(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, val, indent + 1, pretty);
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

/// Compact serialization.
pub fn to_string<V: Into<Value> + Clone>(value: &V) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.clone().into(), 0, false);
    Ok(out)
}

/// Two-space-indented serialization, like serde_json's.
pub fn to_string_pretty<V: Into<Value> + Clone>(value: &V) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.clone().into(), 0, true);
    Ok(out)
}

/// Build a [`Value`] from JSON-ish syntax: objects, arrays, and Rust
/// expressions in value position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object(Vec::new()) };
    ([]) => { $crate::Value::Array(Vec::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut pairs: Vec<(String, $crate::Value)> = Vec::new();
        $crate::json_object_internal!(pairs; $($tt)+);
        $crate::Value::Object(pairs)
    }};
    ([ $($tt:tt)+ ]) => {{
        let mut items: Vec<$crate::Value> = Vec::new();
        $crate::json_array_internal!(items; $($tt)+);
        $crate::Value::Array(items)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_object_internal {
    ($pairs:ident;) => {};
    // Nested object / array values must be matched before the generic
    // expression arm (a bare `{ "k": v }` is not a valid Rust expression).
    ($pairs:ident; $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $pairs.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $crate::json_object_internal!($pairs; $($rest)*);
    };
    ($pairs:ident; $key:literal : { $($inner:tt)* } $(,)?) => {
        $pairs.push(($key.to_string(), $crate::json!({ $($inner)* })));
    };
    ($pairs:ident; $key:literal : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $pairs.push(($key.to_string(), $crate::json!([ $($inner)* ])));
        $crate::json_object_internal!($pairs; $($rest)*);
    };
    ($pairs:ident; $key:literal : [ $($inner:tt)* ] $(,)?) => {
        $pairs.push(($key.to_string(), $crate::json!([ $($inner)* ])));
    };
    ($pairs:ident; $key:literal : null , $($rest:tt)*) => {
        $pairs.push(($key.to_string(), $crate::Value::Null));
        $crate::json_object_internal!($pairs; $($rest)*);
    };
    ($pairs:ident; $key:literal : null $(,)?) => {
        $pairs.push(($key.to_string(), $crate::Value::Null));
    };
    ($pairs:ident; $key:literal : $val:expr , $($rest:tt)*) => {
        $pairs.push(($key.to_string(), $crate::Value::from($val)));
        $crate::json_object_internal!($pairs; $($rest)*);
    };
    ($pairs:ident; $key:literal : $val:expr) => {
        $pairs.push(($key.to_string(), $crate::Value::from($val)));
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_array_internal {
    ($items:ident;) => {};
    ($items:ident; { $($inner:tt)* } , $($rest:tt)*) => {
        $items.push($crate::json!({ $($inner)* }));
        $crate::json_array_internal!($items; $($rest)*);
    };
    ($items:ident; { $($inner:tt)* } $(,)?) => {
        $items.push($crate::json!({ $($inner)* }));
    };
    ($items:ident; [ $($inner:tt)* ] , $($rest:tt)*) => {
        $items.push($crate::json!([ $($inner)* ]));
        $crate::json_array_internal!($items; $($rest)*);
    };
    ($items:ident; [ $($inner:tt)* ] $(,)?) => {
        $items.push($crate::json!([ $($inner)* ]));
    };
    ($items:ident; null , $($rest:tt)*) => {
        $items.push($crate::Value::Null);
        $crate::json_array_internal!($items; $($rest)*);
    };
    ($items:ident; null $(,)?) => {
        $items.push($crate::Value::Null);
    };
    ($items:ident; $val:expr , $($rest:tt)*) => {
        $items.push($crate::Value::from($val));
        $crate::json_array_internal!($items; $($rest)*);
    };
    ($items:ident; $val:expr) => {
        $items.push($crate::Value::from($val));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_macro_and_accessors() {
        let name = "er";
        let secs = 0.125f64;
        let v = json!({ "graph": name, "seconds": secs, "n": 100usize, "nested": { "x": 1 }, "none": Option::<f64>::None });
        assert_eq!(v["graph"].as_str(), Some("er"));
        assert_eq!(v["seconds"].as_f64(), Some(0.125));
        assert_eq!(v["n"].as_u64(), Some(100));
        assert_eq!(v["nested"]["x"].as_f64(), Some(1.0));
        assert!(v["none"].is_null());
        assert!(v["missing"].is_null());
    }

    #[test]
    fn arrays_and_vec_interpolation() {
        let mut rows = Vec::new();
        rows.push(json!({ "a": 1 }));
        rows.push(json!({ "a": 2 }));
        let v = json!({ "rows": rows, "inline": [1, 2, 3] });
        assert_eq!(v["rows"][1]["a"].as_f64(), Some(2.0));
        assert_eq!(v["inline"][0].as_f64(), Some(1.0));
    }

    #[test]
    fn pretty_round_trips_shape() {
        let v = json!({ "x": 1.5, "s": "a\"b", "arr": [true, null] });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"x\": 1.5"));
        assert!(s.contains("\\\""));
        assert!(s.contains("null"));
        let compact = to_string(&v).unwrap();
        assert!(!compact.contains('\n'));
    }

    #[test]
    fn integral_floats_print_as_integers() {
        assert_eq!(to_string(&json!({ "n": 3.0 })).unwrap(), "{\"n\":3}");
        assert_eq!(to_string(&json!(2.5f64)).unwrap(), "2.5");
    }
}
