//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`],
//! [`prop_oneof!`], `Just`, `any::<T>()`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, acceptable for an offline build:
//! cases are generated from a fixed deterministic seed sequence (no
//! `PROPTEST_CASES` env, no failure-case persistence), and failing inputs
//! are **not shrunk** — the panic message reports the raw failing case via
//! `Debug` where available.

use std::fmt;
use std::ops::Range;

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values for property tests.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a seeded value factory.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Type-erased strategy, as produced by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive candidates",
            self.whence
        )
    }
}

/// Constant strategy: always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "anything" strategy, for `any::<T>()`.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for any value of `T` — `any::<bool>()` etc.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `len` and
    /// elements from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Internal: picks one of N boxed strategies per case ([`prop_oneof!`]).
pub struct Union<T> {
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        assert!(
            !self.options.is_empty(),
            "prop_oneof! needs at least one option"
        );
        let i = rng.gen_range(0..self.options.len());
        self.options[i].new_value(rng)
    }
}

/// Debug-or-placeholder formatting for failure reports, usable with any
/// type via autoref specialization.
pub struct CaseDebug<'a, T>(pub &'a T);

impl<T: fmt::Debug> fmt::Display for CaseDebug<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

/// Deterministic per-case RNG: case `i` of every test reuses the same
/// stream, so failures reproduce run-to-run.
pub fn case_rng(case_index: u32) -> TestRng {
    TestRng::seed_from_u64(0x5EED_CA5E_0000_0000 | u64::from(case_index))
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union { options: vec![$($crate::Strategy::boxed($strat)),+] }
    };
}

/// The test-harness macro. Each declared function becomes a `#[test]`
/// running `cases` deterministic random cases (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for __case in 0..config.cases {
                let mut __rng = $crate::case_rng(__case);
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                // The loop lets `prop_assume!` skip a case via `continue`.
                $body
            }
        }
    )*};
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in -5i32..5, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn oneof_and_flat_map(x in prop_oneof![Just(1u32), Just(2u32)],
                              v in (1usize..4).prop_flat_map(|n| crate::collection::vec(0u32..10, n..n + 1))) {
            prop_assert!(x == 1 || x == 2);
            prop_assert!(!v.is_empty() && v.len() < 4);
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_cases() {
        let s = (0u64..1000, 0.0f64..1.0);
        let a = s.new_value(&mut crate::case_rng(5));
        let b = s.new_value(&mut crate::case_rng(5));
        assert_eq!(a, b);
    }
}
