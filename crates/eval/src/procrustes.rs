//! Orthogonal Procrustes alignment — the tool behind "GEE converges to
//! the spectral embedding": spectral embeddings are identifiable only up
//! to an orthogonal transform, so comparing two embeddings means solving
//! `min_R ‖A·R − B‖_F` over orthogonal `R` first.
//!
//! `R = U·Vᵀ` where `Aᵀ·B = U·Σ·Vᵀ`. The crossed matrix is `k×k` with
//! `k = K ≪ n`, so a one-sided Jacobi SVD (cyclic column rotations until
//! convergence) is exact enough and dependency-free.

use rayon::prelude::*;

/// Result of [`orthogonal_procrustes`].
#[derive(Debug, Clone)]
pub struct ProcrustesResult {
    /// Row-major `k×k` orthogonal matrix mapping `A`'s frame onto `B`'s.
    pub rotation: Vec<f64>,
    /// `‖A·R − B‖_F` after alignment.
    pub residual: f64,
    /// `‖A·R − B‖_F / ‖B‖_F` (0 when `B` is all zeros).
    pub relative_residual: f64,
}

/// One-sided Jacobi SVD of a row-major `k×k` matrix `m`: returns
/// `(u, sigma, v)` with `m = u·diag(sigma)·vᵀ`, `u`/`v` row-major.
/// Zero singular directions get arbitrary orthonormal completion columns.
fn svd_kxk(m: &[f64], k: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    // Work on columns of `a` (copy of m) while accumulating V.
    let mut a = m.to_vec();
    let mut v = vec![0.0; k * k];
    for i in 0..k {
        v[i * k + i] = 1.0;
    }
    let col_dot = |a: &[f64], p: usize, q: usize| -> f64 {
        (0..k).map(|r| a[r * k + p] * a[r * k + q]).sum()
    };
    // Cyclic Jacobi sweeps: rotate column pairs until all are orthogonal.
    for _sweep in 0..60 {
        let mut off = 0.0f64;
        for p in 0..k {
            for q in (p + 1)..k {
                let apq = col_dot(&a, p, q);
                let app = col_dot(&a, p, p);
                let aqq = col_dot(&a, q, q);
                off += apq * apq;
                if apq.abs() <= 1e-15 * (app * aqq).sqrt().max(1e-300) {
                    continue;
                }
                // Jacobi rotation zeroing the (p,q) column inner product.
                let tau = (aqq - app) / (2.0 * apq);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for r in 0..k {
                    let (x, y) = (a[r * k + p], a[r * k + q]);
                    a[r * k + p] = c * x - s * y;
                    a[r * k + q] = s * x + c * y;
                    let (x, y) = (v[r * k + p], v[r * k + q]);
                    v[r * k + p] = c * x - s * y;
                    v[r * k + q] = s * x + c * y;
                }
            }
        }
        if off.sqrt() < 1e-14 {
            break;
        }
    }
    // Singular values are the column norms; U's columns the normalized
    // columns of the rotated matrix.
    let mut sigma = vec![0.0; k];
    let mut u = vec![0.0; k * k];
    for j in 0..k {
        let norm = col_dot(&a, j, j).sqrt();
        sigma[j] = norm;
        if norm > 1e-300 {
            for r in 0..k {
                u[r * k + j] = a[r * k + j] / norm;
            }
        } else {
            // Null direction: complete with a unit vector orthogonalized
            // against the existing columns (Gram-Schmidt over e_j).
            let mut col = vec![0.0; k];
            col[j] = 1.0;
            for jj in 0..k {
                if jj == j {
                    continue;
                }
                let dot: f64 = (0..k).map(|r| col[r] * u[r * k + jj]).sum();
                for (r, c) in col.iter_mut().enumerate() {
                    *c -= dot * u[r * k + jj];
                }
            }
            let norm = col.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-300);
            for r in 0..k {
                u[r * k + j] = col[r] / norm;
            }
        }
    }
    (u, sigma, v)
}

/// Solve `min_R ‖A·R − B‖_F` over orthogonal `R`, for row-major `n×k`
/// matrices `a` and `b`.
pub fn orthogonal_procrustes(a: &[f64], b: &[f64], n: usize, k: usize) -> ProcrustesResult {
    assert_eq!(a.len(), n * k, "A must be n×k");
    assert_eq!(b.len(), n * k, "B must be n×k");
    // M = Aᵀ·B (k×k), reduced over row blocks in parallel.
    let m: Vec<f64> = a
        .par_chunks(k.max(1) * 1024)
        .zip(b.par_chunks(k.max(1) * 1024))
        .map(|(ab, bb)| {
            let mut local = vec![0.0f64; k * k];
            for (ra, rb) in ab.chunks_exact(k.max(1)).zip(bb.chunks_exact(k.max(1))) {
                for (i, &x) in ra.iter().enumerate() {
                    for (j, &y) in rb.iter().enumerate() {
                        local[i * k + j] += x * y;
                    }
                }
            }
            local
        })
        .reduce(
            || vec![0.0f64; k * k],
            |mut acc, loc| {
                for (x, y) in acc.iter_mut().zip(&loc) {
                    *x += y;
                }
                acc
            },
        );
    let (u, _sigma, v) = svd_kxk(&m, k);
    // R = U·Vᵀ.
    let mut rotation = vec![0.0f64; k * k];
    for i in 0..k {
        for j in 0..k {
            rotation[i * k + j] = (0..k).map(|l| u[i * k + l] * v[j * k + l]).sum();
        }
    }
    // Residual ‖A·R − B‖_F and ‖B‖_F.
    let (res2, b2) = a
        .par_chunks(k.max(1))
        .zip(b.par_chunks(k.max(1)))
        .map(|(ra, rb)| {
            let mut res = 0.0f64;
            let mut bb = 0.0f64;
            for j in 0..k {
                let rotated: f64 = (0..k).map(|l| ra[l] * rotation[l * k + j]).sum();
                res += (rotated - rb[j]) * (rotated - rb[j]);
                bb += rb[j] * rb[j];
            }
            (res, bb)
        })
        .reduce(|| (0.0, 0.0), |(x1, y1), (x2, y2)| (x1 + x2, y1 + y2));
    let residual = res2.sqrt();
    ProcrustesResult {
        rotation,
        residual,
        relative_residual: if b2 > 0.0 { residual / b2.sqrt() } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat_mul(a: &[f64], b: &[f64], n: usize, k: usize) -> Vec<f64> {
        let mut out = vec![0.0; n * k];
        for r in 0..n {
            for j in 0..k {
                out[r * k + j] = (0..k).map(|l| a[r * k + l] * b[l * k + j]).sum();
            }
        }
        out
    }

    fn rotation_2d(theta: f64) -> Vec<f64> {
        vec![theta.cos(), -theta.sin(), theta.sin(), theta.cos()]
    }

    fn is_orthogonal(r: &[f64], k: usize) -> bool {
        let mut ok = true;
        for i in 0..k {
            for j in 0..k {
                let dot: f64 = (0..k).map(|l| r[l * k + i] * r[l * k + j]).sum();
                let want = f64::from(u8::from(i == j));
                ok &= (dot - want).abs() < 1e-9;
            }
        }
        ok
    }

    fn sample_points(n: usize, k: usize, seed: u64) -> Vec<f64> {
        // Deterministic pseudo-random full-rank cloud.
        let mut state = seed | 1;
        (0..n * k)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64 / 500.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn recovers_pure_rotation() {
        let a = sample_points(60, 2, 5);
        let r_true = rotation_2d(0.7);
        let b = mat_mul(&a, &r_true, 60, 2);
        let got = orthogonal_procrustes(&a, &b, 60, 2);
        assert!(got.residual < 1e-9, "residual {}", got.residual);
        for (x, y) in got.rotation.iter().zip(&r_true) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn recovers_reflection() {
        let a = sample_points(40, 2, 9);
        let refl = vec![1.0, 0.0, 0.0, -1.0];
        let b = mat_mul(&a, &refl, 40, 2);
        let got = orthogonal_procrustes(&a, &b, 40, 2);
        assert!(got.residual < 1e-9);
        assert!(is_orthogonal(&got.rotation, 2));
    }

    #[test]
    fn rotation_is_orthogonal_under_noise() {
        let a = sample_points(80, 3, 13);
        let r_true = {
            // Compose two planar rotations in 3-D.
            let mut r = vec![0.0; 9];
            let (c, s) = (0.6f64.cos(), 0.6f64.sin());
            r[0] = c;
            r[1] = -s;
            r[3] = s;
            r[4] = c;
            r[8] = 1.0;
            r
        };
        let mut b = mat_mul(&a, &r_true, 80, 3);
        for (i, x) in b.iter_mut().enumerate() {
            *x += ((i * 37) % 11) as f64 * 1e-3; // deterministic noise
        }
        let got = orthogonal_procrustes(&a, &b, 80, 3);
        assert!(is_orthogonal(&got.rotation, 3));
        assert!(
            got.relative_residual < 0.02,
            "rel {}",
            got.relative_residual
        );
    }

    #[test]
    fn aligned_beats_unaligned() {
        let a = sample_points(50, 4, 17);
        let theta = 1.1f64;
        let mut r = vec![0.0; 16];
        r[0] = theta.cos();
        r[1] = -theta.sin();
        r[4] = theta.sin();
        r[5] = theta.cos();
        r[10] = 1.0;
        r[15] = 1.0;
        let b = mat_mul(&a, &r, 50, 4);
        let unaligned: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        let got = orthogonal_procrustes(&a, &b, 50, 4);
        assert!(got.residual < unaligned / 100.0);
    }

    #[test]
    fn identical_inputs_identity_rotation() {
        let a = sample_points(30, 3, 21);
        let got = orthogonal_procrustes(&a, &a, 30, 3);
        assert!(got.residual < 1e-9);
        for i in 0..3 {
            for j in 0..3 {
                let want = f64::from(u8::from(i == j));
                assert!((got.rotation[i * 3 + j] - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rank_deficient_input_still_orthogonal() {
        // All mass in one coordinate: M is rank 1; completion path runs.
        let n = 20;
        let a: Vec<f64> = (0..n).flat_map(|i| [i as f64, 0.0]).collect();
        let b = a.clone();
        let got = orthogonal_procrustes(&a, &b, n, 2);
        assert!(is_orthogonal(&got.rotation, 2));
        assert!(got.residual < 1e-9);
    }

    #[test]
    fn zero_b_gives_zero_relative() {
        let a = sample_points(10, 2, 25);
        let b = vec![0.0; 20];
        let got = orthogonal_procrustes(&a, &b, 10, 2);
        assert_eq!(got.relative_residual, 0.0);
    }

    #[test]
    #[should_panic(expected = "n×k")]
    fn validates_shapes() {
        orthogonal_procrustes(&[0.0; 4], &[0.0; 6], 2, 2);
    }
}
