//! Multinomial logistic regression on embeddings — a linear classifier
//! for the vertex-classification task GEE embeddings feed (§I:
//! "consistent for subsequent inference tasks"). Complements the
//! non-parametric k-NN in [`crate::knn`]: GEE separates classes into
//! near-linear regions of `R^K`, so a linear model should recover them.
//!
//! Full-batch gradient descent on the softmax cross-entropy with L2
//! regularization; the gradient step is parallelized over samples. No
//! adaptive optimizer — the problem is convex and conditioning is mild
//! after row normalization.

use rayon::prelude::*;

/// Hyperparameters for [`LogisticRegression::fit`].
#[derive(Debug, Clone, Copy)]
pub struct LogRegOptions {
    /// Gradient-descent steps.
    pub epochs: usize,
    /// Step size.
    pub learning_rate: f64,
    /// L2 penalty on weights (not biases).
    pub l2: f64,
}

impl Default for LogRegOptions {
    fn default() -> Self {
        LogRegOptions {
            epochs: 200,
            learning_rate: 0.5,
            l2: 1e-4,
        }
    }
}

/// A trained one-layer softmax classifier: `P(c | x) ∝ exp(W_c·x + b_c)`.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Row-major `num_classes × dim` weights.
    weights: Vec<f64>,
    bias: Vec<f64>,
    dim: usize,
    num_classes: usize,
}

impl LogisticRegression {
    /// Fit on `(x, y)` pairs; `y` values must lie in `0..num_classes`.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[u32],
        num_classes: usize,
        opts: LogRegOptions,
    ) -> LogisticRegression {
        assert_eq!(x.len(), y.len(), "one label per sample");
        assert!(!x.is_empty(), "training set must be non-empty");
        assert!(num_classes >= 2, "need at least two classes");
        assert!(
            y.iter().all(|&c| (c as usize) < num_classes),
            "label out of range"
        );
        let dim = x[0].len();
        assert!(
            x.iter().all(|p| p.len() == dim),
            "all samples must share one dimension"
        );
        let n = x.len();
        let mut model = LogisticRegression {
            weights: vec![0.0; num_classes * dim],
            bias: vec![0.0; num_classes],
            dim,
            num_classes,
        };
        for _ in 0..opts.epochs {
            // Per-sample gradient contributions, reduced in parallel.
            let (gw, gb) = x
                .par_iter()
                .zip(y.par_iter())
                .fold(
                    || (vec![0.0f64; num_classes * dim], vec![0.0f64; num_classes]),
                    |(mut gw, mut gb), (xi, &yi)| {
                        let p = model.probabilities(xi);
                        for c in 0..num_classes {
                            let err = p[c] - f64::from(u8::from(c == yi as usize));
                            gb[c] += err;
                            let row = &mut gw[c * dim..(c + 1) * dim];
                            for (g, &xv) in row.iter_mut().zip(xi) {
                                *g += err * xv;
                            }
                        }
                        (gw, gb)
                    },
                )
                .reduce(
                    || (vec![0.0f64; num_classes * dim], vec![0.0f64; num_classes]),
                    |(mut aw, mut ab), (bw, bb)| {
                        for (a, b) in aw.iter_mut().zip(&bw) {
                            *a += b;
                        }
                        for (a, b) in ab.iter_mut().zip(&bb) {
                            *a += b;
                        }
                        (aw, ab)
                    },
                );
            let scale = opts.learning_rate / n as f64;
            for (w, g) in model.weights.iter_mut().zip(&gw) {
                *w -= scale * (g + opts.l2 * *w * n as f64);
            }
            for (b, g) in model.bias.iter_mut().zip(&gb) {
                *b -= scale * g;
            }
        }
        model
    }

    /// Class probabilities for one sample (softmax, numerically shifted).
    pub fn probabilities(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim, "sample dimension mismatch");
        let mut logits: Vec<f64> = (0..self.num_classes)
            .map(|c| {
                let row = &self.weights[c * self.dim..(c + 1) * self.dim];
                row.iter().zip(x).map(|(w, v)| w * v).sum::<f64>() + self.bias[c]
            })
            .collect();
        let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut total = 0.0;
        for l in &mut logits {
            *l = (*l - max).exp();
            total += *l;
        }
        for l in &mut logits {
            *l /= total;
        }
        logits
    }

    /// Most-probable class for one sample.
    pub fn predict(&self, x: &[f64]) -> u32 {
        let p = self.probabilities(x);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(c, _)| c as u32)
            .expect("at least two classes")
    }

    /// Predictions for a batch, parallel over samples.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<u32> {
        xs.par_iter().map(|x| self.predict(x)).collect()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three linearly-separable blobs in 2-D.
    fn blobs() -> (Vec<Vec<f64>>, Vec<u32>) {
        let centers = [(0.0, 0.0), (6.0, 0.0), (0.0, 6.0)];
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for i in 0..30 {
                let jx = ((i * 37 + c * 11) % 17) as f64 / 17.0 - 0.5;
                let jy = ((i * 53 + c * 29) % 19) as f64 / 19.0 - 0.5;
                x.push(vec![cx + jx, cy + jy]);
                y.push(c as u32);
            }
        }
        (x, y)
    }

    #[test]
    fn separable_blobs_fit_perfectly() {
        let (x, y) = blobs();
        let model = LogisticRegression::fit(&x, &y, 3, LogRegOptions::default());
        let pred = model.predict_batch(&x);
        let correct = pred.iter().zip(&y).filter(|(a, b)| a == b).count();
        assert_eq!(
            correct,
            x.len(),
            "training accuracy below 100% on separable data"
        );
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (x, y) = blobs();
        let model = LogisticRegression::fit(&x, &y, 3, LogRegOptions::default());
        let p = model.probabilities(&x[0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn generalizes_to_held_out_points() {
        let (x, y) = blobs();
        let model = LogisticRegression::fit(&x, &y, 3, LogRegOptions::default());
        assert_eq!(model.predict(&[0.2, -0.1]), 0);
        assert_eq!(model.predict(&[5.8, 0.3]), 1);
        assert_eq!(model.predict(&[-0.3, 6.2]), 2);
    }

    #[test]
    fn binary_case() {
        let x = vec![vec![-1.0], vec![-2.0], vec![1.0], vec![2.0]];
        let y = vec![0, 0, 1, 1];
        let model = LogisticRegression::fit(&x, &y, 2, LogRegOptions::default());
        assert_eq!(model.predict(&[-1.5]), 0);
        assert_eq!(model.predict(&[1.5]), 1);
    }

    #[test]
    fn l2_shrinks_weights() {
        let (x, y) = blobs();
        let loose = LogisticRegression::fit(
            &x,
            &y,
            3,
            LogRegOptions {
                l2: 0.0,
                ..Default::default()
            },
        );
        let tight = LogisticRegression::fit(
            &x,
            &y,
            3,
            LogRegOptions {
                l2: 1.0,
                ..Default::default()
            },
        );
        let norm = |m: &LogisticRegression| m.weights.iter().map(|w| w * w).sum::<f64>();
        assert!(norm(&tight) < norm(&loose));
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn validates_labels() {
        LogisticRegression::fit(&[vec![0.0]], &[5], 2, LogRegOptions::default());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn validates_prediction_dim() {
        let model = LogisticRegression::fit(
            &[vec![0.0], vec![1.0]],
            &[0, 1],
            2,
            LogRegOptions::default(),
        );
        model.predict(&[0.0, 1.0]);
    }
}
