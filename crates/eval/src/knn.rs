//! k-nearest-neighbor vertex classification on an embedding — the
//! "subsequent inference" task (§I of the parallel paper, and the primary
//! evaluation of the original GEE paper): classify unlabeled vertices from
//! the embedding rows of labeled ones.

use rayon::prelude::*;

/// Classify each query row by majority vote among its `k` nearest labeled
/// rows (Euclidean distance, ties broken toward the nearer neighbor's
/// class). `train` pairs row indices with their class.
///
/// `data` is `n × dim` row-major; `queries` are row indices to classify.
/// Returns one predicted class per query. Brute-force O(|queries|·|train|)
/// — the evaluation sizes here are thousands of vertices, where exact
/// brute force is both simplest and fastest.
pub fn knn_classify(
    data: &[f64],
    dim: usize,
    train: &[(u32, u32)],
    queries: &[u32],
    k: usize,
) -> Vec<u32> {
    assert!(k >= 1, "k must be at least 1");
    assert!(dim >= 1, "dim must be at least 1");
    assert!(!train.is_empty(), "need at least one training vertex");
    assert_eq!(data.len() % dim, 0, "data must be a whole number of rows");
    let row = |i: u32| &data[i as usize * dim..(i as usize + 1) * dim];
    queries
        .par_iter()
        .map(|&q| {
            let qr = row(q);
            // Partial selection of the k smallest distances. Cap the
            // preallocation at the train size: `k` comes from callers
            // (ultimately the serving wire) and may be huge —
            // `k = usize::MAX` must degrade to "everything votes", not
            // overflow `k + 1` or abort on an absurd allocation.
            let mut best: Vec<(f64, u32)> =
                Vec::with_capacity(k.saturating_add(1).min(train.len() + 1));
            for &(t, class) in train {
                let d: f64 = qr.iter().zip(row(t)).map(|(a, b)| (a - b) * (a - b)).sum();
                let pos = best.partition_point(|&(bd, _)| bd < d);
                if pos < k {
                    best.insert(pos, (d, class));
                    if best.len() > k {
                        best.pop();
                    }
                }
            }
            // Majority vote, nearest-first tiebreak.
            let mut counts: std::collections::HashMap<u32, usize> =
                std::collections::HashMap::new();
            for &(_, c) in &best {
                *counts.entry(c).or_default() += 1;
            }
            let top = counts.values().max().copied().unwrap_or(0);
            best.iter()
                .find(|&&(_, c)| counts[&c] == top)
                .map(|&(_, c)| c)
                .expect("best is nonempty")
        })
        .collect()
}

/// Classification accuracy of predictions against ground truth.
pub fn accuracy(predicted: &[u32], truth: &[u32]) -> f64 {
    assert_eq!(predicted.len(), truth.len());
    if predicted.is_empty() {
        return 1.0;
    }
    let hits = predicted.iter().zip(truth).filter(|(a, b)| a == b).count();
    hits as f64 / predicted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated 1-D clusters.
    fn line_data() -> Vec<f64> {
        // rows 0..4 near 0, rows 4..8 near 100
        vec![0.0, 0.5, 1.0, 1.5, 100.0, 100.5, 101.0, 101.5]
    }

    #[test]
    fn classifies_by_proximity() {
        let data = line_data();
        let train = vec![(0, 7), (1, 7), (4, 9), (5, 9)];
        let pred = knn_classify(&data, 1, &train, &[2, 3, 6, 7], 3);
        assert_eq!(pred, vec![7, 7, 9, 9]);
    }

    #[test]
    fn k_one_nearest_neighbor() {
        let data = line_data();
        let train = vec![(0, 1), (7, 2)];
        let pred = knn_classify(&data, 1, &train, &[1, 6], 1);
        assert_eq!(pred, vec![1, 2]);
    }

    #[test]
    fn majority_beats_single_outlier() {
        // Query at 50 with train: two class-0 at 49, 51 and one class-1 at 50.
        let data = vec![49.0, 51.0, 50.0, 50.0];
        let train = vec![(0, 0), (1, 0), (2, 1)];
        let pred = knn_classify(&data, 1, &train, &[3], 3);
        assert_eq!(pred, vec![0]);
    }

    #[test]
    fn accuracy_measures_fraction() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 4]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one training")]
    fn empty_train_rejected() {
        knn_classify(&[0.0], 1, &[], &[0], 1);
    }

    #[test]
    #[should_panic(expected = "dim must be at least 1")]
    fn zero_dim_rejected() {
        // Regression: dim == 0 used to slip past the `dim.max(1)` row-size
        // check and "classify" against empty rows (every distance zero).
        knn_classify(&[], 0, &[(0, 1)], &[0], 1);
    }

    #[test]
    fn k_larger_than_train_set_is_fine() {
        let data = line_data();
        let train = vec![(0, 5), (4, 6)];
        let pred = knn_classify(&data, 1, &train, &[1], 10);
        // both neighbors vote; nearest-first tiebreak picks class 5
        assert_eq!(pred, vec![5]);
    }
}
