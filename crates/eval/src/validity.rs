//! Internal cluster-validity indices — silhouette and Davies–Bouldin —
//! for judging embedding quality *without* ground-truth labels
//! (complementing the external ARI/NMI metrics, which need the truth).

use rayon::prelude::*;

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Mean silhouette coefficient over all points, in `[-1, 1]` (higher =
/// better-separated clusters). Points in singleton clusters score 0 by
/// convention. O(n²·k) pairwise distances, parallel over points — meant
/// for evaluation-sized samples, not billion-edge graphs.
pub fn silhouette(points: &[Vec<f64>], assignment: &[u32]) -> f64 {
    assert_eq!(points.len(), assignment.len(), "one label per point");
    let n = points.len();
    if n == 0 {
        return 0.0;
    }
    let k = assignment
        .iter()
        .copied()
        .max()
        .map_or(0, |m| m as usize + 1);
    let mut cluster_sizes = vec![0usize; k];
    for &c in assignment {
        cluster_sizes[c as usize] += 1;
    }
    let scores: f64 = (0..n)
        .into_par_iter()
        .map(|i| {
            let ci = assignment[i] as usize;
            if cluster_sizes[ci] <= 1 {
                return 0.0;
            }
            // Mean distance to every cluster.
            let mut sums = vec![0.0f64; k];
            for j in 0..n {
                if j != i {
                    sums[assignment[j] as usize] += euclidean(&points[i], &points[j]);
                }
            }
            let a = sums[ci] / (cluster_sizes[ci] - 1) as f64;
            let b = (0..k)
                .filter(|&c| c != ci && cluster_sizes[c] > 0)
                .map(|c| sums[c] / cluster_sizes[c] as f64)
                .fold(f64::INFINITY, f64::min);
            if !b.is_finite() {
                return 0.0; // only one non-empty cluster
            }
            (b - a) / a.max(b)
        })
        .sum();
    scores / n as f64
}

/// Davies–Bouldin index (lower = better separation; 0 is ideal). Ratio of
/// within-cluster scatter to between-centroid distance, worst-case paired
/// per cluster.
pub fn davies_bouldin(points: &[Vec<f64>], assignment: &[u32]) -> f64 {
    assert_eq!(points.len(), assignment.len(), "one label per point");
    if points.is_empty() {
        return 0.0;
    }
    let dim = points[0].len();
    let k = assignment
        .iter()
        .copied()
        .max()
        .map_or(0, |m| m as usize + 1);
    // Centroids.
    let mut centroids = vec![vec![0.0f64; dim]; k];
    let mut sizes = vec![0usize; k];
    for (p, &c) in points.iter().zip(assignment) {
        let c = c as usize;
        sizes[c] += 1;
        for (acc, &x) in centroids[c].iter_mut().zip(p) {
            *acc += x;
        }
    }
    for (c, size) in centroids.iter_mut().zip(&sizes) {
        if *size > 0 {
            for x in c {
                *x /= *size as f64;
            }
        }
    }
    // Mean within-cluster distance to centroid.
    let mut scatter = vec![0.0f64; k];
    for (p, &c) in points.iter().zip(assignment) {
        scatter[c as usize] += euclidean(p, &centroids[c as usize]);
    }
    for (s, &size) in scatter.iter_mut().zip(&sizes) {
        if size > 0 {
            *s /= size as f64;
        }
    }
    let live: Vec<usize> = (0..k).filter(|&c| sizes[c] > 0).collect();
    if live.len() < 2 {
        return 0.0;
    }
    let db: f64 = live
        .iter()
        .map(|&i| {
            live.iter()
                .filter(|&&j| j != i)
                .map(|&j| {
                    let d = euclidean(&centroids[i], &centroids[j]);
                    if d > 0.0 {
                        (scatter[i] + scatter[j]) / d
                    } else {
                        f64::INFINITY
                    }
                })
                .fold(0.0, f64::max)
        })
        .sum();
    db / live.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight, well-separated blobs.
    fn blobs() -> (Vec<Vec<f64>>, Vec<u32>) {
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            points.push(vec![0.0 + (i as f64) * 0.01, 0.0]);
            labels.push(0);
            points.push(vec![10.0 + (i as f64) * 0.01, 0.0]);
            labels.push(1);
        }
        (points, labels)
    }

    #[test]
    fn silhouette_high_for_separated_blobs() {
        let (p, l) = blobs();
        assert!(silhouette(&p, &l) > 0.9);
    }

    #[test]
    fn silhouette_low_for_shuffled_labels() {
        let (p, _) = blobs();
        // Split by array position: each "cluster" straddles both blobs.
        let bad: Vec<u32> = (0..p.len()).map(|i| u32::from(i < p.len() / 2)).collect();
        let (good_p, good_l) = blobs();
        assert!(silhouette(&p, &bad) < silhouette(&good_p, &good_l) - 0.5);
    }

    #[test]
    fn silhouette_singletons_score_zero() {
        let p = vec![vec![0.0], vec![5.0]];
        let l = vec![0, 1];
        assert_eq!(silhouette(&p, &l), 0.0);
    }

    #[test]
    fn silhouette_single_cluster_is_zero() {
        let p = vec![vec![0.0], vec![1.0], vec![2.0]];
        assert_eq!(silhouette(&p, &[0, 0, 0]), 0.0);
    }

    #[test]
    fn davies_bouldin_lower_for_better_clustering() {
        let (p, l) = blobs();
        // Split by array position: each "cluster" straddles both blobs.
        let bad: Vec<u32> = (0..p.len()).map(|i| u32::from(i < p.len() / 2)).collect();
        assert!(davies_bouldin(&p, &l) < davies_bouldin(&p, &bad));
    }

    #[test]
    fn davies_bouldin_near_zero_for_tight_blobs() {
        let (p, l) = blobs();
        assert!(davies_bouldin(&p, &l) < 0.1);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(silhouette(&[], &[]), 0.0);
        assert_eq!(davies_bouldin(&[], &[]), 0.0);
    }

    #[test]
    fn coincident_centroids_are_worst_case() {
        // Two clusters with the same centroid → DB index is infinite.
        let p = vec![vec![-1.0], vec![1.0], vec![-1.0], vec![1.0]];
        let l = vec![0, 0, 1, 1];
        assert!(davies_bouldin(&p, &l).is_infinite());
    }
}
