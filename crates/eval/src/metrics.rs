//! Clustering agreement metrics: ARI, NMI, purity, scatter ratio.

use std::collections::HashMap;

/// Joint label-pair counts.
type JointCounts = HashMap<(u32, u32), f64>;
/// Per-label marginal counts.
type MarginalCounts = HashMap<u32, f64>;

/// Contingency table between two labelings (rows: `a`, cols: `b`).
fn contingency(a: &[u32], b: &[u32]) -> (JointCounts, MarginalCounts, MarginalCounts) {
    assert_eq!(a.len(), b.len(), "labelings must cover the same points");
    let mut joint: HashMap<(u32, u32), f64> = HashMap::new();
    let mut ma: HashMap<u32, f64> = HashMap::new();
    let mut mb: HashMap<u32, f64> = HashMap::new();
    for (&x, &y) in a.iter().zip(b) {
        *joint.entry((x, y)).or_default() += 1.0;
        *ma.entry(x).or_default() += 1.0;
        *mb.entry(y).or_default() += 1.0;
    }
    (joint, ma, mb)
}

fn choose2(x: f64) -> f64 {
    x * (x - 1.0) / 2.0
}

/// Adjusted Rand Index (Hubert & Arabie). 1 = identical partitions,
/// ~0 = chance agreement; can be negative.
pub fn adjusted_rand_index(a: &[u32], b: &[u32]) -> f64 {
    let n = a.len() as f64;
    if a.is_empty() {
        return 1.0;
    }
    let (joint, ma, mb) = contingency(a, b);
    let sum_ij: f64 = joint.values().map(|&c| choose2(c)).sum();
    let sum_a: f64 = ma.values().map(|&c| choose2(c)).sum();
    let sum_b: f64 = mb.values().map(|&c| choose2(c)).sum();
    let total = choose2(n);
    let expected = sum_a * sum_b / total;
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() < 1e-15 {
        return 1.0; // both partitions trivial (all-singletons or all-one)
    }
    (sum_ij - expected) / (max_index - expected)
}

/// Normalized Mutual Information with arithmetic-mean normalization.
pub fn normalized_mutual_information(a: &[u32], b: &[u32]) -> f64 {
    let n = a.len() as f64;
    if a.is_empty() {
        return 1.0;
    }
    let (joint, ma, mb) = contingency(a, b);
    let mut mi = 0.0;
    for (&(x, y), &nxy) in &joint {
        let px = ma[&x] / n;
        let py = mb[&y] / n;
        let pxy = nxy / n;
        mi += pxy * (pxy / (px * py)).ln();
    }
    let ha: f64 = -ma.values().map(|&c| (c / n) * (c / n).ln()).sum::<f64>();
    let hb: f64 = -mb.values().map(|&c| (c / n) * (c / n).ln()).sum::<f64>();
    if ha + hb < 1e-15 {
        return 1.0;
    }
    (2.0 * mi / (ha + hb)).clamp(0.0, 1.0)
}

/// Purity: fraction of points whose cluster's majority truth class matches
/// their own.
pub fn purity(clusters: &[u32], truth: &[u32]) -> f64 {
    assert_eq!(clusters.len(), truth.len());
    if clusters.is_empty() {
        return 1.0;
    }
    let (joint, ma, _) = contingency(clusters, truth);
    let mut correct = 0.0;
    for &c in ma.keys() {
        let best = joint
            .iter()
            .filter(|(&(x, _), _)| x == c)
            .map(|(_, &cnt)| cnt)
            .fold(0.0f64, f64::max);
        correct += best;
    }
    correct / clusters.len() as f64
}

/// Ratio of mean within-class squared distance to mean between-class
/// squared distance of an `n × dim` row-major embedding under `labels`.
/// Lower = better class separation. Classes with one member contribute no
/// within-class pairs.
pub fn scatter_ratio(data: &[f64], n: usize, dim: usize, labels: &[u32]) -> f64 {
    assert_eq!(data.len(), n * dim);
    assert_eq!(labels.len(), n);
    let row = |i: usize| &data[i * dim..(i + 1) * dim];
    // Class means and global mean.
    let mut sums: HashMap<u32, (Vec<f64>, f64)> = HashMap::new();
    #[allow(clippy::needless_range_loop)] // i indexes both rows and labels
    for i in 0..n {
        let e = sums
            .entry(labels[i])
            .or_insert_with(|| (vec![0.0; dim], 0.0));
        for (s, &x) in e.0.iter_mut().zip(row(i)) {
            *s += x;
        }
        e.1 += 1.0;
    }
    let mut within = 0.0;
    for i in 0..n {
        let (s, c) = &sums[&labels[i]];
        within += row(i)
            .iter()
            .zip(s)
            .map(|(&x, &m)| {
                let mu = m / c;
                (x - mu) * (x - mu)
            })
            .sum::<f64>();
    }
    within /= n as f64;
    // Between: variance of class means weighted by size.
    let mut global = vec![0.0; dim];
    for i in 0..n {
        for (g, &x) in global.iter_mut().zip(row(i)) {
            *g += x;
        }
    }
    for g in global.iter_mut() {
        *g /= n as f64;
    }
    let mut between = 0.0;
    for (s, c) in sums.values() {
        let d2: f64 = s
            .iter()
            .zip(&global)
            .map(|(&m, &g)| {
                let mu = m / c;
                (mu - g) * (mu - g)
            })
            .sum();
        between += c * d2;
    }
    between /= n as f64;
    if between < 1e-300 {
        return f64::INFINITY;
    }
    within / between
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ari_identical_is_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ari_permuted_labels_is_one() {
        let a = vec![0, 0, 1, 1];
        let b = vec![5, 5, 9, 9];
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ari_independent_near_zero() {
        // Balanced checkerboard disagreement.
        let a = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let b = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari.abs() < 0.3, "ari {ari}");
    }

    #[test]
    fn ari_known_value() {
        // Classic example: one point moved between clusters.
        let a = vec![0, 0, 0, 1, 1, 1];
        let b = vec![0, 0, 1, 1, 1, 1];
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari > 0.2 && ari < 1.0);
    }

    #[test]
    fn nmi_identical_is_one() {
        let a = vec![0, 1, 2, 0, 1, 2];
        assert!((normalized_mutual_information(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmi_constant_vs_varied() {
        let a = vec![0, 0, 0, 0];
        let b = vec![0, 1, 2, 3];
        // Degenerate: H(a)=0 → MI=0 but normalization guards; value is 0.
        let v = normalized_mutual_information(&a, &b);
        assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn purity_perfect_and_half() {
        let truth = vec![0, 0, 1, 1];
        assert_eq!(purity(&[0, 0, 1, 1], &truth), 1.0);
        assert_eq!(purity(&[0, 0, 0, 0], &truth), 0.5);
    }

    #[test]
    fn scatter_separated_blobs_small() {
        // Two tight blobs far apart: ratio ~ 0.
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            data.extend_from_slice(&[(i % 3) as f64 * 0.01, 0.0]);
            labels.push(0);
        }
        for i in 0..10 {
            data.extend_from_slice(&[100.0 + (i % 3) as f64 * 0.01, 0.0]);
            labels.push(1);
        }
        let r = scatter_ratio(&data, 20, 2, &labels);
        assert!(r < 1e-4, "ratio {r}");
    }

    #[test]
    fn scatter_mixed_is_large() {
        // Random labels on a single blob: between ≈ 0 → huge ratio.
        let data: Vec<f64> = (0..40).map(|i| (i % 7) as f64).collect();
        let labels: Vec<u32> = (0..20).map(|i| (i % 2) as u32).collect();
        let r = scatter_ratio(&data, 20, 2, &labels);
        assert!(r > 1.0, "ratio {r}");
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(adjusted_rand_index(&[], &[]), 1.0);
        assert_eq!(normalized_mutual_information(&[], &[]), 1.0);
        assert_eq!(purity(&[], &[]), 1.0);
    }
}
