//! Embedding quality evaluation for the GEE reproduction.
//!
//! The paper's evaluation is purely about runtime, but its premise is that
//! GEE "converges asymptotically to the spectral embedding" and is
//! "consistent for subsequent inference tasks such as hypothesis testing
//! and community detection" (§I). This crate provides the tooling to check
//! that premise on synthetic graphs with known structure:
//!
//! * [`kmeans()`] — Lloyd's algorithm with k-means++ seeding, parallel
//!   assignment step (also the engine of unsupervised / iterative GEE).
//! * [`metrics`] — Adjusted Rand Index, Normalized Mutual Information,
//!   purity, within/between scatter ratio.
//! * [`spectral`] — adjacency spectral embedding via block power iteration
//!   (the statistical baseline GEE converges toward).
//! * [`validity`] — internal cluster-validity indices (silhouette,
//!   Davies–Bouldin) for truth-free quality checks.
//! * [`hypothesis`] — two-sample energy-distance permutation test on
//!   embedded groups (the "hypothesis testing" inference task of §I).
//! * [`logreg`] — multinomial logistic regression, the linear
//!   vertex classifier counterpart to [`knn`].

pub mod confusion;
pub mod hypothesis;
pub mod kmeans;
pub mod knn;
pub mod logreg;
pub mod metrics;
pub mod procrustes;
pub mod spectral;
pub mod split;
pub mod validity;

pub use confusion::ConfusionMatrix;
pub use hypothesis::{energy_test, TestResult};
pub use kmeans::{kmeans, kmeans_best_of, KMeansOptions, KMeansResult};
pub use knn::{accuracy, knn_classify};
pub use logreg::{LogRegOptions, LogisticRegression};
pub use metrics::{adjusted_rand_index, normalized_mutual_information, purity, scatter_ratio};
pub use procrustes::{orthogonal_procrustes, ProcrustesResult};
pub use spectral::{spectral_embedding, SpectralOptions};
pub use split::{k_fold, stratified_split, train_test_split, Split};
pub use validity::{davies_bouldin, silhouette};
