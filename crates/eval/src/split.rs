//! Train/test splitting and k-fold cross-validation over vertex sets —
//! the bookkeeping layer for classifier evaluation on embeddings
//! ([`crate::knn`], [`crate::logreg`]).

use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Index split into train and test sets.
#[derive(Debug, Clone)]
pub struct Split {
    /// Training indices.
    pub train: Vec<usize>,
    /// Held-out indices.
    pub test: Vec<usize>,
}

/// Shuffle `0..n` and split with `test_fraction` held out. Deterministic
/// in `seed`; every index lands in exactly one side.
pub fn train_test_split(n: usize, test_fraction: f64, seed: u64) -> Split {
    assert!(
        (0.0..=1.0).contains(&test_fraction),
        "fraction must be in [0, 1]"
    );
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let cut = ((n as f64) * test_fraction).round() as usize;
    let (test, train) = idx.split_at(cut.min(n));
    Split {
        train: train.to_vec(),
        test: test.to_vec(),
    }
}

/// Stratified split: the test side holds `test_fraction` of *each class*
/// (rounded per class), so rare classes stay represented.
pub fn stratified_split(labels: &[u32], test_fraction: f64, seed: u64) -> Split {
    assert!(
        (0.0..=1.0).contains(&test_fraction),
        "fraction must be in [0, 1]"
    );
    let k = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &c) in labels.iter().enumerate() {
        by_class[c as usize].push(i);
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut split = Split {
        train: Vec::new(),
        test: Vec::new(),
    };
    for mut members in by_class {
        members.shuffle(&mut rng);
        let cut = ((members.len() as f64) * test_fraction).round() as usize;
        split
            .test
            .extend_from_slice(&members[..cut.min(members.len())]);
        split
            .train
            .extend_from_slice(&members[cut.min(members.len())..]);
    }
    split
}

/// `k`-fold partition of `0..n`: returns `k` splits, each using one fold
/// as test and the rest as train. Folds differ in size by at most one.
pub fn k_fold(n: usize, k: usize, seed: u64) -> Vec<Split> {
    assert!(k >= 2, "need at least 2 folds");
    assert!(k <= n.max(1), "more folds than points");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let base = n / k;
    let extra = n % k;
    let mut folds: Vec<Vec<usize>> = Vec::with_capacity(k);
    let mut start = 0usize;
    for f in 0..k {
        let len = base + usize::from(f < extra);
        folds.push(idx[start..start + len].to_vec());
        start += len;
    }
    (0..k)
        .map(|f| Split {
            test: folds[f].clone(),
            train: folds
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != f)
                .flat_map(|(_, fold)| fold.iter().copied())
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_a_partition() {
        let s = train_test_split(100, 0.3, 7);
        assert_eq!(s.test.len(), 30);
        assert_eq!(s.train.len(), 70);
        let mut all: Vec<usize> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_deterministic_in_seed() {
        let a = train_test_split(50, 0.2, 3);
        let b = train_test_split(50, 0.2, 3);
        assert_eq!(a.test, b.test);
        let c = train_test_split(50, 0.2, 4);
        assert_ne!(a.test, c.test);
    }

    #[test]
    fn extreme_fractions() {
        let s = train_test_split(10, 0.0, 1);
        assert!(s.test.is_empty());
        assert_eq!(s.train.len(), 10);
        let s = train_test_split(10, 1.0, 1);
        assert!(s.train.is_empty());
    }

    #[test]
    fn stratified_preserves_class_shares() {
        // 80 of class 0, 20 of class 1.
        let labels: Vec<u32> = (0..100).map(|i| u32::from(i >= 80)).collect();
        let s = stratified_split(&labels, 0.25, 5);
        let test_ones = s.test.iter().filter(|&&i| labels[i] == 1).count();
        assert_eq!(test_ones, 5, "25% of 20 class-1 points");
        assert_eq!(s.test.len(), 25);
    }

    #[test]
    fn stratified_keeps_rare_class_in_train() {
        let labels = vec![0, 0, 0, 0, 0, 0, 0, 0, 1, 1];
        let s = stratified_split(&labels, 0.5, 9);
        let train_rare = s.train.iter().filter(|&&i| labels[i] == 1).count();
        assert_eq!(train_rare, 1);
    }

    #[test]
    fn k_fold_covers_everything_once() {
        let folds = k_fold(23, 4, 11);
        assert_eq!(folds.len(), 4);
        let mut seen = [0usize; 23];
        for s in &folds {
            assert_eq!(s.train.len() + s.test.len(), 23);
            for &i in &s.test {
                seen[i] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "each index tests exactly once"
        );
        // Fold sizes differ by at most one.
        let sizes: Vec<usize> = folds.iter().map(|s| s.test.len()).collect();
        assert_eq!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn k_fold_validates_k() {
        k_fold(10, 1, 0);
    }

    #[test]
    #[should_panic(expected = "more folds")]
    fn k_fold_validates_n() {
        k_fold(3, 5, 0);
    }
}
