//! Confusion matrix and per-class classification metrics for the vertex
//! classification task (precision/recall/F1, macro averages).

/// A `k × k` confusion matrix: `counts[truth][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    k: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Tally predictions against ground truth; `k` is inferred as one plus
    /// the maximum label seen.
    pub fn from_predictions(predicted: &[u32], truth: &[u32]) -> Self {
        assert_eq!(
            predicted.len(),
            truth.len(),
            "prediction/truth length mismatch"
        );
        let k = predicted
            .iter()
            .chain(truth)
            .max()
            .map_or(0, |&m| m as usize + 1);
        let mut counts = vec![0u64; k * k];
        for (&p, &t) in predicted.iter().zip(truth) {
            counts[t as usize * k + p as usize] += 1;
        }
        ConfusionMatrix { k, counts }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.k
    }

    /// Count of (truth `t`, predicted `p`).
    pub fn get(&self, t: u32, p: u32) -> u64 {
        self.counts[t as usize * self.k + p as usize]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (diagonal mass / total).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        let diag: u64 = (0..self.k).map(|c| self.counts[c * self.k + c]).sum();
        diag as f64 / total as f64
    }

    /// Precision of class `c`: TP / (TP + FP). `None` when the class was
    /// never predicted.
    pub fn precision(&self, c: u32) -> Option<f64> {
        let c = c as usize;
        let tp = self.counts[c * self.k + c];
        let predicted: u64 = (0..self.k).map(|t| self.counts[t * self.k + c]).sum();
        (predicted > 0).then(|| tp as f64 / predicted as f64)
    }

    /// Recall of class `c`: TP / (TP + FN). `None` when the class never
    /// occurs in the truth.
    pub fn recall(&self, c: u32) -> Option<f64> {
        let c = c as usize;
        let tp = self.counts[c * self.k + c];
        let actual: u64 = self.counts[c * self.k..(c + 1) * self.k].iter().sum();
        (actual > 0).then(|| tp as f64 / actual as f64)
    }

    /// F1 of class `c` (harmonic mean of precision and recall); `None`
    /// when either is undefined.
    pub fn f1(&self, c: u32) -> Option<f64> {
        let p = self.precision(c)?;
        let r = self.recall(c)?;
        if p + r == 0.0 {
            return Some(0.0);
        }
        Some(2.0 * p * r / (p + r))
    }

    /// Macro-averaged F1 over classes that appear in the truth (classes
    /// with undefined precision contribute 0, the usual convention).
    pub fn macro_f1(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for c in 0..self.k as u32 {
            if self.recall(c).is_some() {
                sum += self.f1(c).unwrap_or(0.0);
                n += 1;
            }
        }
        if n == 0 {
            1.0
        } else {
            sum / n as f64
        }
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "truth \\ predicted")?;
        for t in 0..self.k {
            for p in 0..self.k {
                write!(f, "{:>8}", self.counts[t * self.k + p])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConfusionMatrix {
        // truth:     0 0 0 1 1 2
        // predicted: 0 0 1 1 1 0
        ConfusionMatrix::from_predictions(&[0, 0, 1, 1, 1, 0], &[0, 0, 0, 1, 1, 2])
    }

    #[test]
    fn counts_and_total() {
        let m = sample();
        assert_eq!(m.num_classes(), 3);
        assert_eq!(m.get(0, 0), 2);
        assert_eq!(m.get(0, 1), 1);
        assert_eq!(m.get(2, 0), 1);
        assert_eq!(m.total(), 6);
    }

    #[test]
    fn accuracy() {
        assert!((sample().accuracy() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_f1() {
        let m = sample();
        // class 0: TP=2, predicted 3 times, actual 3 times
        assert!((m.precision(0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall(0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.f1(0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        // class 1: TP=2, predicted 3, actual 2
        assert!((m.precision(1).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.recall(1).unwrap(), 1.0);
        // class 2: never predicted
        assert_eq!(m.precision(2), None);
        assert_eq!(m.recall(2).unwrap(), 0.0);
    }

    #[test]
    fn macro_f1_counts_truth_classes() {
        let m = sample();
        let f0 = m.f1(0).unwrap();
        let f1 = m.f1(1).unwrap();
        // class 2 appears in truth → contributes 0 (undefined precision)
        let expected = (f0 + f1 + 0.0) / 3.0;
        assert!((m.macro_f1() - expected).abs() < 1e-12);
    }

    #[test]
    fn perfect_predictions() {
        let m = ConfusionMatrix::from_predictions(&[0, 1, 2], &[0, 1, 2]);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.macro_f1(), 1.0);
    }

    #[test]
    fn empty_input() {
        let m = ConfusionMatrix::from_predictions(&[], &[]);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.macro_f1(), 1.0);
        assert_eq!(m.total(), 0);
    }

    #[test]
    fn display_renders() {
        let s = format!("{}", sample());
        assert!(s.contains("truth"));
    }
}
