//! Two-sample hypothesis testing on embeddings — the "subsequent
//! inference tasks such as hypothesis testing" that §I names as a GEE use
//! case.
//!
//! Given the embedded vectors of two vertex groups, the **energy
//! distance** test (Székely & Rizzo) asks whether the groups were drawn
//! from the same latent distribution. The null distribution is obtained
//! by label permutation, so the test is distribution-free; p-values are
//! estimated as `(1 + #{permuted ≥ observed}) / (1 + permutations)`.
//!
//! On an SBM, embeddings of two different blocks must reject the null
//! while two halves of the *same* block must not — the statistical
//! regression test for the whole embedding pipeline.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Mean pairwise distance between (or within) point sets, from a
/// precomputed distance matrix over the pooled sample.
fn mean_cross(dist: &[Vec<f64>], ia: &[usize], ib: &[usize]) -> f64 {
    if ia.is_empty() || ib.is_empty() {
        return 0.0;
    }
    let sum: f64 = ia
        .iter()
        .map(|&i| ib.iter().map(|&j| dist[i][j]).sum::<f64>())
        .sum();
    sum / (ia.len() * ib.len()) as f64
}

/// Energy distance `2·E‖X−Y‖ − E‖X−X'‖ − E‖Y−Y'‖` computed from a pooled
/// distance matrix and index sets.
fn energy_statistic(dist: &[Vec<f64>], ia: &[usize], ib: &[usize]) -> f64 {
    2.0 * mean_cross(dist, ia, ib) - mean_cross(dist, ia, ia) - mean_cross(dist, ib, ib)
}

/// Result of [`energy_test`].
#[derive(Debug, Clone, Copy)]
pub struct TestResult {
    /// Observed energy-distance statistic (≥ 0 up to estimation noise).
    pub statistic: f64,
    /// Permutation p-value in `(0, 1]`.
    pub p_value: f64,
    /// Number of permutations used.
    pub permutations: usize,
}

impl TestResult {
    /// Reject the null "same distribution" at level `alpha`.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value <= alpha
    }
}

/// Two-sample energy-distance permutation test. `a` and `b` are the two
/// groups of embedded vectors (equal dimension); `permutations` draws of
/// a label shuffle estimate the null. Deterministic in `seed`.
pub fn energy_test(a: &[Vec<f64>], b: &[Vec<f64>], permutations: usize, seed: u64) -> TestResult {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "both samples must be non-empty"
    );
    let dim = a[0].len();
    assert!(
        a.iter().chain(b).all(|p| p.len() == dim),
        "all points must share one dimension"
    );
    let pooled: Vec<&[f64]> = a.iter().chain(b).map(Vec::as_slice).collect();
    let n = pooled.len();
    // Pooled distance matrix, parallel by row (the O(n²·d) hot spot).
    let dist: Vec<Vec<f64>> = (0..n)
        .into_par_iter()
        .map(|i| (0..n).map(|j| euclidean(pooled[i], pooled[j])).collect())
        .collect();
    let ia: Vec<usize> = (0..a.len()).collect();
    let ib: Vec<usize> = (a.len()..n).collect();
    let observed = energy_statistic(&dist, &ia, &ib);

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..n).collect();
    let mut at_least = 0usize;
    for _ in 0..permutations {
        indices.shuffle(&mut rng);
        let (pa, pb) = indices.split_at(a.len());
        if energy_statistic(&dist, pa, pb) >= observed {
            at_least += 1;
        }
    }
    TestResult {
        statistic: observed,
        p_value: (1 + at_least) as f64 / (1 + permutations) as f64,
        permutations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_blob(center: f64, n: usize, seed: u64) -> Vec<Vec<f64>> {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Sum of uniforms ≈ gaussian; exactness is irrelevant here.
        let mut noise = move || (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
        (0..n)
            .map(|_| vec![center + noise() * 0.3, noise() * 0.3])
            .collect()
    }

    #[test]
    fn separated_samples_reject() {
        let a = gaussian_blob(0.0, 40, 1);
        let b = gaussian_blob(5.0, 40, 2);
        let r = energy_test(&a, &b, 200, 7);
        assert!(r.rejects_at(0.01), "p = {}", r.p_value);
        assert!(r.statistic > 0.0);
    }

    #[test]
    fn identical_distribution_does_not_reject() {
        let a = gaussian_blob(0.0, 40, 3);
        let b = gaussian_blob(0.0, 40, 4);
        let r = energy_test(&a, &b, 200, 11);
        assert!(!r.rejects_at(0.01), "p = {}", r.p_value);
    }

    #[test]
    fn p_value_bounds() {
        let a = gaussian_blob(0.0, 10, 5);
        let b = gaussian_blob(0.2, 10, 6);
        let r = energy_test(&a, &b, 99, 13);
        assert!(r.p_value > 0.0 && r.p_value <= 1.0);
        assert_eq!(r.permutations, 99);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = gaussian_blob(0.0, 15, 8);
        let b = gaussian_blob(1.0, 15, 9);
        let r1 = energy_test(&a, &b, 50, 21);
        let r2 = energy_test(&a, &b, 50, 21);
        assert_eq!(r1.p_value, r2.p_value);
        assert_eq!(r1.statistic, r2.statistic);
    }

    #[test]
    fn unbalanced_sample_sizes() {
        let a = gaussian_blob(0.0, 10, 10);
        let b = gaussian_blob(6.0, 60, 11);
        let r = energy_test(&a, &b, 100, 23);
        assert!(r.rejects_at(0.05));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sample_rejected() {
        energy_test(&[], &[vec![0.0]], 10, 0);
    }

    #[test]
    #[should_panic(expected = "one dimension")]
    fn dimension_mismatch_rejected() {
        energy_test(&[vec![0.0]], &[vec![0.0, 1.0]], 10, 0);
    }
}
