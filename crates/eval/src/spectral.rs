//! Adjacency spectral embedding via block power (subspace) iteration.
//!
//! GEE's statistical justification is convergence to the adjacency spectral
//! embedding (ASE). This module computes the top-`k` eigenvectors of the
//! (symmetrized) adjacency matrix with orthogonal iteration — O(k·s) per
//! sweep, good enough for the laptop-scale validation graphs — so tests can
//! compare GEE's class geometry against the spectral baseline.

use gee_graph::CsrGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Options for [`spectral_embedding`].
#[derive(Debug, Clone, Copy)]
pub struct SpectralOptions {
    /// Embedding dimension (number of leading eigenvectors).
    pub k: usize,
    /// Power-iteration sweeps.
    pub iterations: usize,
    /// RNG seed for the random initial block.
    pub seed: u64,
    /// Scale eigenvectors by sqrt(|eigenvalue|) (the ASE convention).
    pub scale_by_eigenvalues: bool,
}

impl Default for SpectralOptions {
    fn default() -> Self {
        SpectralOptions {
            k: 8,
            iterations: 50,
            seed: 1,
            scale_by_eigenvalues: true,
        }
    }
}

/// Top-`k` eigenpairs of the adjacency matrix of `g` (should be symmetric).
/// Returns the row-major `n × k` embedding.
pub fn spectral_embedding(g: &CsrGraph, opts: SpectralOptions) -> Vec<f64> {
    let n = g.num_vertices();
    let k = opts.k.min(n.max(1));
    if n == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(opts.seed);
    // Column-block Q: k columns of length n, stored column-major for easy
    // per-column orthogonalization.
    let mut q: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..n).map(|_| rng.gen::<f64>() - 0.5).collect())
        .collect();
    orthonormalize(&mut q);
    let mut eigenvalues = vec![0.0f64; k];
    for _ in 0..opts.iterations {
        // Z = A * Q (column by column, each column a parallel SpMV).
        let z: Vec<Vec<f64>> = q.iter().map(|col| spmv(g, col)).collect();
        // Rayleigh estimates before orthonormalization.
        for (j, zc) in z.iter().enumerate() {
            eigenvalues[j] = dot(&q[j], zc);
        }
        q = z;
        orthonormalize(&mut q);
    }
    // Assemble row-major n×k, optionally scaled by sqrt(|λ|).
    let mut out = vec![0.0f64; n * k];
    for (j, col) in q.iter().enumerate() {
        let scale = if opts.scale_by_eigenvalues {
            eigenvalues[j].abs().sqrt()
        } else {
            1.0
        };
        for (i, &x) in col.iter().enumerate() {
            out[i * k + j] = x * scale;
        }
    }
    out
}

/// Parallel sparse matrix–vector product `A x` over out-edges.
fn spmv(g: &CsrGraph, x: &[f64]) -> Vec<f64> {
    (0..g.num_vertices() as u32)
        .into_par_iter()
        .map(|u| {
            let mut acc = 0.0;
            for (i, &v) in g.neighbors(u).iter().enumerate() {
                acc += g.weight_at(u, i) * x[v as usize];
            }
            acc
        })
        .collect()
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.par_iter().zip(b.par_iter()).map(|(x, y)| x * y).sum()
}

/// Modified Gram–Schmidt over the column block.
fn orthonormalize(q: &mut [Vec<f64>]) {
    let k = q.len();
    for j in 0..k {
        for i in 0..j {
            // Split so we can borrow column i immutably and j mutably.
            let (head, tail) = q.split_at_mut(j);
            let qi = &head[i];
            let qj = &mut tail[0];
            let r = dot(qi, qj);
            qj.par_iter_mut()
                .zip(qi.par_iter())
                .for_each(|(x, &y)| *x -= r * y);
        }
        let norm = dot(&q[j], &q[j]).sqrt();
        if norm > 1e-300 {
            q[j].par_iter_mut().for_each(|x| *x /= norm);
        } else {
            // Degenerate column: reset to a unit basis vector.
            let len = q[j].len();
            q[j].iter_mut().for_each(|x| *x = 0.0);
            q[j][j % len] = 1.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_graph::{Edge, EdgeList};

    fn complete_bipartite(a: usize, b: usize) -> CsrGraph {
        let mut edges = Vec::new();
        for u in 0..a as u32 {
            for v in 0..b as u32 {
                edges.push(Edge::unit(u, a as u32 + v));
                edges.push(Edge::unit(a as u32 + v, u));
            }
        }
        CsrGraph::from_edge_list(&EdgeList::new(a + b, edges).unwrap())
    }

    #[test]
    fn leading_eigenvalue_of_complete_graph() {
        // K_6: leading eigenvalue is n-1 = 5 (and the rest are -1, so the
        // spectral gap is clean — K_{a,b} would oscillate between ±sqrt(ab)).
        let n = 6u32;
        let mut edges = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    edges.push(Edge::unit(u, v));
                }
            }
        }
        let g = CsrGraph::from_edge_list(&EdgeList::new(n as usize, edges).unwrap());
        let opts = SpectralOptions {
            k: 1,
            iterations: 200,
            seed: 3,
            scale_by_eigenvalues: false,
        };
        let emb = spectral_embedding(&g, opts);
        // Verify A v = λ v by applying A once and measuring the ratio.
        let v: Vec<f64> = (0..n as usize).map(|i| emb[i]).collect();
        let av = spmv(&g, &v);
        let lambda = dot(&v, &av) / dot(&v, &v);
        assert!((lambda - 5.0).abs() < 1e-6, "λ = {lambda}");
    }

    #[test]
    fn embedding_shape() {
        let g = complete_bipartite(3, 3);
        let emb = spectral_embedding(
            &g,
            SpectralOptions {
                k: 2,
                ..Default::default()
            },
        );
        assert_eq!(emb.len(), 6 * 2);
        assert!(emb.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn two_block_sbm_separates() {
        let g = gee_gen::sbm(&gee_gen::SbmParams::balanced(2, 40, 0.5, 0.02), 9);
        let csr = CsrGraph::from_edge_list(&g.edges);
        let emb = spectral_embedding(
            &csr,
            SpectralOptions {
                k: 2,
                iterations: 100,
                seed: 5,
                scale_by_eigenvalues: true,
            },
        );
        let r = crate::metrics::scatter_ratio(&emb, 80, 2, &g.truth);
        assert!(r < 0.5, "expected separation, scatter ratio {r}");
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::build(0, &[], false);
        assert!(spectral_embedding(&g, SpectralOptions::default()).is_empty());
    }

    #[test]
    fn k_clamped_to_n() {
        let g = complete_bipartite(1, 1);
        let emb = spectral_embedding(
            &g,
            SpectralOptions {
                k: 10,
                ..Default::default()
            },
        );
        assert_eq!(emb.len(), 2 * 2);
    }
}
