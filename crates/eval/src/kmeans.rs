//! Lloyd's k-means with k-means++ seeding, row-major input, parallel
//! assignment. Deterministic for a fixed seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// k-means configuration.
#[derive(Debug, Clone, Copy)]
pub struct KMeansOptions {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Stop when no assignment changes.
    pub seed: u64,
}

impl KMeansOptions {
    /// Sensible defaults for embedding-space clustering.
    pub fn new(k: usize, seed: u64) -> Self {
        KMeansOptions {
            k,
            max_iters: 100,
            seed,
        }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster id per point.
    pub assignment: Vec<u32>,
    /// Row-major `k × dim` centroids.
    pub centroids: Vec<f64>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Iterations executed.
    pub iterations: usize,
}

/// Cluster `n` points of dimension `dim` stored row-major in `data`.
pub fn kmeans(data: &[f64], n: usize, dim: usize, opts: KMeansOptions) -> KMeansResult {
    assert_eq!(data.len(), n * dim, "data must be n×dim row-major");
    assert!(opts.k >= 1, "k must be at least 1");
    assert!(n >= opts.k, "need at least k points");
    let k = opts.k;
    let row = |i: usize| &data[i * dim..(i + 1) * dim];
    let mut rng = StdRng::seed_from_u64(opts.seed);

    // k-means++ seeding.
    let mut centroids = vec![0.0f64; k * dim];
    let first = rng.gen_range(0..n);
    centroids[..dim].copy_from_slice(row(first));
    let mut min_d2: Vec<f64> = (0..n).map(|i| sq_dist(row(i), &centroids[..dim])).collect();
    for c in 1..k {
        let total: f64 = min_d2.iter().sum();
        let chosen = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut pick = n - 1;
            for (i, &d) in min_d2.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    pick = i;
                    break;
                }
            }
            pick
        };
        centroids[c * dim..(c + 1) * dim].copy_from_slice(row(chosen));
        #[allow(clippy::needless_range_loop)] // i indexes both rows and min_d2
        for i in 0..n {
            let d = sq_dist(row(i), &centroids[c * dim..(c + 1) * dim]);
            if d < min_d2[i] {
                min_d2[i] = d;
            }
        }
    }

    // Lloyd iterations.
    let mut assignment = vec![0u32; n];
    let mut iterations = 0;
    for it in 0..opts.max_iters {
        iterations = it + 1;
        // Assignment (parallel).
        let new_assignment: Vec<u32> = (0..n)
            .into_par_iter()
            .map(|i| {
                let p = row(i);
                let mut best = 0u32;
                let mut best_d = f64::INFINITY;
                for c in 0..k {
                    let d = sq_dist(p, &centroids[c * dim..(c + 1) * dim]);
                    if d < best_d {
                        best_d = d;
                        best = c as u32;
                    }
                }
                best
            })
            .collect();
        let changed = new_assignment
            .par_iter()
            .zip(assignment.par_iter())
            .filter(|(a, b)| a != b)
            .count();
        assignment = new_assignment;
        // Update.
        let mut sums = vec![0.0f64; k * dim];
        let mut counts = vec![0usize; k];
        #[allow(clippy::needless_range_loop)] // i indexes both rows and assignment
        for i in 0..n {
            let c = assignment[i] as usize;
            counts[c] += 1;
            for (s, &x) in sums[c * dim..(c + 1) * dim].iter_mut().zip(row(i)) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed empty cluster at the farthest point from its centroid.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = sq_dist(row(a), &centroids[assignment[a] as usize * dim..][..dim]);
                        let db = sq_dist(row(b), &centroids[assignment[b] as usize * dim..][..dim]);
                        da.partial_cmp(&db).unwrap()
                    })
                    .unwrap();
                centroids[c * dim..(c + 1) * dim].copy_from_slice(row(far));
            } else {
                for (slot, &s) in centroids[c * dim..(c + 1) * dim]
                    .iter_mut()
                    .zip(&sums[c * dim..])
                {
                    *slot = s / counts[c] as f64;
                }
            }
        }
        if changed == 0 && it > 0 {
            break;
        }
    }
    let inertia: f64 = (0..n)
        .into_par_iter()
        .map(|i| sq_dist(row(i), &centroids[assignment[i] as usize * dim..][..dim]))
        .sum();
    KMeansResult {
        assignment,
        centroids,
        inertia,
        iterations,
    }
}

/// Run [`kmeans`] `restarts` times with derived seeds and keep the run
/// with the lowest inertia — the standard guard against Lloyd's local
/// optima.
pub fn kmeans_best_of(
    data: &[f64],
    n: usize,
    dim: usize,
    opts: KMeansOptions,
    restarts: usize,
) -> KMeansResult {
    assert!(restarts >= 1);
    (0..restarts as u64)
        .map(|r| {
            kmeans(
                data,
                n,
                dim,
                KMeansOptions {
                    seed: opts.seed.wrapping_add(r * 0x9E3779B9),
                    ..opts
                },
            )
        })
        .min_by(|a, b| a.inertia.partial_cmp(&b.inertia).unwrap())
        .expect("at least one restart")
}

#[inline]
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (Vec<f64>, usize) {
        // 20 points near (0,0), 20 near (10,10)
        let mut data = Vec::new();
        for i in 0..20 {
            data.extend_from_slice(&[0.0 + (i % 5) as f64 * 0.01, 0.0 + (i % 3) as f64 * 0.01]);
        }
        for i in 0..20 {
            data.extend_from_slice(&[10.0 + (i % 5) as f64 * 0.01, 10.0 + (i % 3) as f64 * 0.01]);
        }
        (data, 40)
    }

    #[test]
    fn separates_clear_blobs() {
        let (data, n) = two_blobs();
        let r = kmeans(&data, n, 2, KMeansOptions::new(2, 1));
        let first = r.assignment[0];
        assert!(r.assignment[..20].iter().all(|&a| a == first));
        assert!(r.assignment[20..].iter().all(|&a| a != first));
    }

    #[test]
    fn deterministic_for_seed() {
        let (data, n) = two_blobs();
        let a = kmeans(&data, n, 2, KMeansOptions::new(2, 7));
        let b = kmeans(&data, n, 2, KMeansOptions::new(2, 7));
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let (data, n) = two_blobs();
        let r1 = kmeans(&data, n, 2, KMeansOptions::new(1, 3));
        let r2 = kmeans(&data, n, 2, KMeansOptions::new(2, 3));
        assert!(r2.inertia < r1.inertia);
    }

    #[test]
    fn k_equals_n_zero_inertia() {
        let data = vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0];
        let r = kmeans(&data, 3, 2, KMeansOptions::new(3, 5));
        assert!(r.inertia < 1e-18);
    }

    #[test]
    #[should_panic(expected = "at least k points")]
    fn rejects_k_above_n() {
        kmeans(&[0.0, 0.0], 1, 2, KMeansOptions::new(2, 1));
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let data = vec![1.0, 3.0, 5.0, 7.0]; // two 2-d points
        let r = kmeans(&data, 2, 2, KMeansOptions::new(1, 2));
        assert!((r.centroids[0] - 3.0).abs() < 1e-12);
        assert!((r.centroids[1] - 5.0).abs() < 1e-12);
    }
}
