//! Leiden community detection (Traag, Waltman & van Eck 2019).
//!
//! Leiden = Louvain's local moving + a **refinement** phase before each
//! aggregation. Refinement re-partitions every community from singletons,
//! merging only nodes that are *well connected* within their community,
//! which provably prevents the internally-disconnected communities Louvain
//! can emit. Aggregation then happens on the refined partition, while the
//! local-moving partition seeds the next level's initial assignment.

use gee_graph::CsrGraph;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::louvain::{local_moving, LevelGraph};
use crate::partition::Partition;

/// Leiden configuration.
#[derive(Debug, Clone, Copy)]
pub struct LeidenOptions {
    /// Resolution parameter γ.
    pub gamma: f64,
    /// Maximum aggregation levels.
    pub max_levels: usize,
    /// Maximum local-moving sweeps per level.
    pub max_sweeps: usize,
    /// Minimum gain to accept a move.
    pub min_gain: f64,
    /// Randomness parameter θ for refinement merge selection (0 = argmax;
    /// the paper uses small positive values — we select uniformly among
    /// positive-gain candidates when θ > 0).
    pub theta: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LeidenOptions {
    fn default() -> Self {
        LeidenOptions {
            gamma: 1.0,
            max_levels: 20,
            max_sweeps: 20,
            min_gain: 1e-12,
            theta: 0.01,
            seed: 0,
        }
    }
}

/// Refinement: within each community of `p`, rebuild sub-communities from
/// singletons by merging well-connected singleton nodes into positive-gain
/// sub-communities. Returns the refined membership.
fn refine(lg: &LevelGraph, p: &Partition, opts: &LeidenOptions, rng: &mut StdRng) -> Vec<u32> {
    let n = lg.num_nodes();
    // Refined community = own id initially.
    let mut refined: Vec<u32> = (0..n as u32).collect();
    let mut sub_tot: Vec<f64> = lg.deg.clone();
    let mut sub_size: Vec<u32> = vec![1; n];
    // Community-level totals for the connectivity test.
    let mut comm_tot = vec![0.0f64; p.num_communities()];
    for v in 0..n {
        comm_tot[p.community(v as u32) as usize] += lg.deg[v];
    }
    // Edge weight from v to the rest of its community.
    let k_to_comm = |v: u32| -> f64 {
        lg.adj[v as usize]
            .iter()
            .filter(|&&(u, _)| p.community(u) == p.community(v))
            .map(|&(_, w)| w)
            .sum()
    };
    for v in 0..n as u32 {
        // Only singleton refined communities may merge (Leiden invariant).
        if sub_size[refined[v as usize] as usize] != 1 {
            continue;
        }
        let c = p.community(v);
        let deg_v = lg.deg[v as usize];
        // Well-connectedness of v within its community:
        // k_{v,C\v} ≥ γ · deg(v) · (tot(C) − deg(v)) / 2m.
        let kvc = k_to_comm(v);
        if kvc < opts.gamma * deg_v * (comm_tot[c as usize] - deg_v) / lg.two_m {
            continue;
        }
        // Candidate refined communities inside C with their edge weight.
        let mut cand: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        for &(u, w) in &lg.adj[v as usize] {
            if p.community(u) == c {
                *cand.entry(refined[u as usize]).or_default() += w;
            }
        }
        let own = refined[v as usize];
        // Positive-gain candidates (excluding staying alone).
        let mut positive: Vec<(u32, f64)> = cand
            .iter()
            .filter(|&(&rc, _)| rc != own)
            .map(|(&rc, &kin)| {
                (
                    rc,
                    kin - opts.gamma * deg_v * sub_tot[rc as usize] / lg.two_m,
                )
            })
            .filter(|&(_, gain)| gain > opts.min_gain)
            .collect();
        if positive.is_empty() {
            continue;
        }
        positive.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        let target = if opts.theta > 0.0 && positive.len() > 1 && rng.gen::<f64>() < opts.theta {
            // Occasional random pick among positive candidates — the
            // exploration that lets Leiden escape Louvain's local optima.
            positive[rng.gen_range(0..positive.len())].0
        } else {
            positive[0].0
        };
        // Merge v into target.
        sub_tot[target as usize] += deg_v;
        sub_tot[own as usize] -= deg_v;
        sub_size[target as usize] += 1;
        sub_size[own as usize] -= 1;
        refined[v as usize] = target;
    }
    refined
}

/// Run Leiden. Returns the final (finest-level) partition.
pub fn leiden(g: &CsrGraph, opts: LeidenOptions) -> Partition {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut level = LevelGraph::from_csr(g);
    let mut overall = Partition::singletons(g.num_vertices());
    for _ in 0..opts.max_levels {
        let (membership, moved) =
            local_moving(&level, opts.gamma, opts.max_sweeps, opts.min_gain, &mut rng);
        let p = Partition::from_membership(&membership);
        if !moved || p.num_communities() == level.num_nodes() {
            break;
        }
        // Refinement inside each community, then aggregate the *refined*
        // partition.
        let refined_raw = refine(&level, &p, &opts, &mut rng);
        let refined = Partition::from_membership(&refined_raw);
        overall = overall.compose(&refined);
        level = level.aggregate(&refined);
        // Note: a fuller implementation would seed the next level's local
        // moving with p projected onto the refined communities; with our
        // singleton-initialized local moving the communities re-form in the
        // first sweep, which costs one extra pass but is behaviourally
        // equivalent for the graphs in this repo's scope.
    }
    overall
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::louvain::{louvain, LouvainOptions};
    use crate::modularity::modularity;
    use gee_graph::{Edge, EdgeList};

    fn ring_of_cliques(num_cliques: usize, clique_size: usize) -> CsrGraph {
        let n = num_cliques * clique_size;
        let mut pairs = Vec::new();
        for c in 0..num_cliques {
            let base = (c * clique_size) as u32;
            for i in 0..clique_size as u32 {
                for j in (i + 1)..clique_size as u32 {
                    pairs.push((base + i, base + j));
                }
            }
            let next = (((c + 1) % num_cliques) * clique_size) as u32;
            pairs.push((base, next));
        }
        let edges: Vec<Edge> = pairs
            .iter()
            .flat_map(|&(u, v)| [Edge::unit(u, v), Edge::unit(v, u)])
            .collect();
        CsrGraph::from_edge_list(&EdgeList::new(n, edges).unwrap())
    }

    #[test]
    fn recovers_ring_of_cliques() {
        let g = ring_of_cliques(6, 5);
        let p = leiden(&g, LeidenOptions::default());
        assert_eq!(p.num_communities(), 6);
        for c in 0..6 {
            let first = p.community((c * 5) as u32);
            for i in 1..5 {
                assert_eq!(p.community((c * 5 + i) as u32), first);
            }
        }
    }

    #[test]
    fn quality_at_least_louvain_on_sbm() {
        let sbm = gee_gen::sbm(&gee_gen::SbmParams::balanced(5, 30, 0.4, 0.02), 7);
        let g = CsrGraph::from_edge_list(&sbm.edges);
        let ql = modularity(&g, &louvain(&g, LouvainOptions::default()), 1.0);
        let qd = modularity(&g, &leiden(&g, LeidenOptions::default()), 1.0);
        // Leiden must be competitive (allow tiny slack for its exploration).
        assert!(qd >= ql - 0.02, "leiden {qd} vs louvain {ql}");
    }

    #[test]
    fn communities_are_internally_connected() {
        // The Leiden guarantee. Check each community induces a connected
        // subgraph.
        let sbm = gee_gen::sbm(&gee_gen::SbmParams::balanced(3, 40, 0.3, 0.03), 5);
        let g = CsrGraph::from_edge_list(&sbm.edges);
        let p = leiden(&g, LeidenOptions::default());
        for c in 0..p.num_communities() as u32 {
            let members: Vec<u32> = (0..g.num_vertices() as u32)
                .filter(|&v| p.community(v) == c)
                .collect();
            if members.len() <= 1 {
                continue;
            }
            // BFS inside the community.
            let mset: std::collections::HashSet<u32> = members.iter().copied().collect();
            let mut seen = std::collections::HashSet::new();
            let mut q = std::collections::VecDeque::new();
            seen.insert(members[0]);
            q.push_back(members[0]);
            while let Some(u) = q.pop_front() {
                for &t in g.neighbors(u) {
                    if mset.contains(&t) && seen.insert(t) {
                        q.push_back(t);
                    }
                }
            }
            assert_eq!(seen.len(), members.len(), "community {c} disconnected");
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let g = ring_of_cliques(4, 4);
        let a = leiden(&g, LeidenOptions::default());
        let b = leiden(&g, LeidenOptions::default());
        assert_eq!(a.membership(), b.membership());
    }

    #[test]
    fn usable_as_gee_labels() {
        // End-to-end shape check for the §II pipeline: Leiden labels → Y.
        let sbm = gee_gen::sbm(&gee_gen::SbmParams::balanced(3, 25, 0.4, 0.02), 11);
        let g = CsrGraph::from_edge_list(&sbm.edges);
        let p = leiden(&g, LeidenOptions::default());
        assert!(p.num_communities() >= 2);
        assert!(p
            .membership()
            .iter()
            .all(|&c| (c as usize) < p.num_communities()));
    }
}
