//! Partition of a vertex set into communities.

/// A community assignment: `membership[v]` is the community of vertex `v`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    membership: Vec<u32>,
    num_communities: usize,
}

impl Partition {
    /// Singleton partition: every vertex in its own community.
    pub fn singletons(n: usize) -> Self {
        Partition {
            membership: (0..n as u32).collect(),
            num_communities: n,
        }
    }

    /// From a raw membership vector; community ids are compacted to
    /// `0..num_communities` in order of first appearance.
    pub fn from_membership(raw: &[u32]) -> Self {
        let mut map = std::collections::HashMap::new();
        let mut membership = Vec::with_capacity(raw.len());
        for &c in raw {
            let next = map.len() as u32;
            let id = *map.entry(c).or_insert(next);
            membership.push(id);
        }
        Partition {
            membership,
            num_communities: map.len(),
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.membership.len()
    }

    /// True when the partition covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.membership.is_empty()
    }

    /// Number of communities.
    pub fn num_communities(&self) -> usize {
        self.num_communities
    }

    /// Community of vertex `v`.
    #[inline]
    pub fn community(&self, v: u32) -> u32 {
        self.membership[v as usize]
    }

    /// Raw membership slice.
    pub fn membership(&self) -> &[u32] {
        &self.membership
    }

    /// Vertices per community.
    pub fn community_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_communities];
        for &c in &self.membership {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Compose with a partition of the *communities* (after aggregation):
    /// `result[v] = coarser[self[v]]`.
    pub fn compose(&self, coarser: &Partition) -> Partition {
        assert_eq!(
            coarser.len(),
            self.num_communities,
            "coarser partition must cover communities"
        );
        let raw: Vec<u32> = self
            .membership
            .iter()
            .map(|&c| coarser.community(c))
            .collect();
        Partition::from_membership(&raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let p = Partition::singletons(4);
        assert_eq!(p.num_communities(), 4);
        assert_eq!(p.community(2), 2);
    }

    #[test]
    fn compaction_by_first_appearance() {
        let p = Partition::from_membership(&[7, 3, 7, 9]);
        assert_eq!(p.membership(), &[0, 1, 0, 2]);
        assert_eq!(p.num_communities(), 3);
    }

    #[test]
    fn sizes() {
        let p = Partition::from_membership(&[0, 0, 1, 1, 1]);
        assert_eq!(p.community_sizes(), vec![2, 3]);
    }

    #[test]
    fn compose_flattens_two_levels() {
        // vertices → {0: a, 1: a, 2: b, 3: b}; communities a,b → single
        let fine = Partition::from_membership(&[0, 0, 1, 1]);
        let coarse = Partition::from_membership(&[0, 0]);
        let flat = fine.compose(&coarse);
        assert_eq!(flat.num_communities(), 1);
        assert!(flat.membership().iter().all(|&c| c == 0));
    }

    #[test]
    #[should_panic(expected = "must cover communities")]
    fn compose_validates() {
        let fine = Partition::from_membership(&[0, 1]);
        let coarse = Partition::from_membership(&[0]);
        fine.compose(&coarse);
    }
}
