//! Louvain modularity optimization (Blondel et al. 2008): repeated local
//! moving + graph aggregation.
//!
//! Conventions: graphs are in the symmetric two-directed-edges encoding;
//! `2m` is the total directed weight; `deg(v)` is the out-weight of `v`
//! (self-loops count once). The level graph carries self-loops separately
//! because aggregation creates them from intra-community weight.

use gee_graph::CsrGraph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::partition::Partition;

/// Louvain configuration.
#[derive(Debug, Clone, Copy)]
pub struct LouvainOptions {
    /// Resolution parameter γ (1.0 = classic modularity).
    pub gamma: f64,
    /// Maximum aggregation levels.
    pub max_levels: usize,
    /// Maximum local-moving sweeps per level.
    pub max_sweeps: usize,
    /// Minimum modularity-proportional gain to accept a move.
    pub min_gain: f64,
    /// RNG seed (node visiting order).
    pub seed: u64,
}

impl Default for LouvainOptions {
    fn default() -> Self {
        LouvainOptions {
            gamma: 1.0,
            max_levels: 20,
            max_sweeps: 20,
            min_gain: 1e-12,
            seed: 0,
        }
    }
}

/// Internal weighted multilevel graph.
pub(crate) struct LevelGraph {
    /// Adjacency (neighbor, weight) excluding self-loops.
    pub adj: Vec<Vec<(u32, f64)>>,
    /// Self-loop weight per node.
    pub self_loop: Vec<f64>,
    /// Out-degree weight per node (self-loop counted once).
    pub deg: Vec<f64>,
    /// Total directed weight.
    pub two_m: f64,
}

impl LevelGraph {
    pub(crate) fn from_csr(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        let mut self_loop = vec![0.0f64; n];
        for (u, v, w) in g.iter_edges() {
            if u == v {
                self_loop[u as usize] += w;
            } else {
                adj[u as usize].push((v, w));
            }
        }
        let deg: Vec<f64> = (0..n)
            .map(|v| adj[v].iter().map(|&(_, w)| w).sum::<f64>() + self_loop[v])
            .collect();
        let two_m = deg.iter().sum();
        LevelGraph {
            adj,
            self_loop,
            deg,
            two_m,
        }
    }

    pub(crate) fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Collapse each community to one node; intra weight becomes self-loop.
    pub(crate) fn aggregate(&self, p: &Partition) -> LevelGraph {
        let k = p.num_communities();
        let mut self_loop = vec![0.0f64; k];
        let mut maps: Vec<std::collections::HashMap<u32, f64>> =
            vec![std::collections::HashMap::new(); k];
        for v in 0..self.num_nodes() as u32 {
            let cv = p.community(v) as usize;
            self_loop[cv] += self.self_loop[v as usize];
            for &(u, w) in &self.adj[v as usize] {
                let cu = p.community(u);
                if cu as usize == cv {
                    self_loop[cv] += w;
                } else {
                    *maps[cv].entry(cu).or_default() += w;
                }
            }
        }
        let adj: Vec<Vec<(u32, f64)>> = maps
            .into_iter()
            .map(|m| {
                let mut v: Vec<(u32, f64)> = m.into_iter().collect();
                v.sort_unstable_by_key(|&(c, _)| c);
                v
            })
            .collect();
        let deg: Vec<f64> = (0..k)
            .map(|c| adj[c].iter().map(|&(_, w)| w).sum::<f64>() + self_loop[c])
            .collect();
        let two_m = deg.iter().sum();
        LevelGraph {
            adj,
            self_loop,
            deg,
            two_m,
        }
    }
}

/// One level of local moving. Returns (membership, whether anything moved).
pub(crate) fn local_moving(
    lg: &LevelGraph,
    gamma: f64,
    max_sweeps: usize,
    min_gain: f64,
    rng: &mut StdRng,
) -> (Vec<u32>, bool) {
    let n = lg.num_nodes();
    let mut community: Vec<u32> = (0..n as u32).collect();
    let mut tot: Vec<f64> = lg.deg.clone();
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut moved_any = false;
    // Scratch: weight from the current node to each community.
    let mut k_v_in: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    for _ in 0..max_sweeps {
        order.shuffle(rng);
        let mut moved_this_sweep = 0usize;
        for &v in &order {
            let vc = community[v as usize];
            let deg_v = lg.deg[v as usize];
            // Tally edge weight into each adjacent community.
            k_v_in.clear();
            for &(u, w) in &lg.adj[v as usize] {
                *k_v_in.entry(community[u as usize]).or_default() += w;
            }
            // Remove v from its community for the comparison.
            tot[vc as usize] -= deg_v;
            let stay_gain = k_v_in.get(&vc).copied().unwrap_or(0.0)
                - gamma * deg_v * tot[vc as usize] / lg.two_m;
            let mut best_c = vc;
            let mut best_gain = stay_gain;
            for (&c, &kin) in &k_v_in {
                if c == vc {
                    continue;
                }
                let gain = kin - gamma * deg_v * tot[c as usize] / lg.two_m;
                if gain > best_gain + min_gain {
                    best_gain = gain;
                    best_c = c;
                }
            }
            tot[best_c as usize] += deg_v;
            if best_c != vc {
                community[v as usize] = best_c;
                moved_this_sweep += 1;
                moved_any = true;
            }
        }
        if moved_this_sweep == 0 {
            break;
        }
    }
    (community, moved_any)
}

/// Run Louvain. Returns the final partition (finest-level membership).
pub fn louvain(g: &CsrGraph, opts: LouvainOptions) -> Partition {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut level = LevelGraph::from_csr(g);
    let mut overall = Partition::singletons(g.num_vertices());
    for _ in 0..opts.max_levels {
        let (membership, moved) =
            local_moving(&level, opts.gamma, opts.max_sweeps, opts.min_gain, &mut rng);
        let p = Partition::from_membership(&membership);
        if !moved || p.num_communities() == level.num_nodes() {
            break;
        }
        overall = overall.compose(&p);
        level = level.aggregate(&p);
    }
    overall
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modularity::modularity;
    use gee_graph::{Edge, EdgeList};

    pub(crate) fn ring_of_cliques(num_cliques: usize, clique_size: usize) -> CsrGraph {
        let n = num_cliques * clique_size;
        let mut pairs = Vec::new();
        for c in 0..num_cliques {
            let base = (c * clique_size) as u32;
            for i in 0..clique_size as u32 {
                for j in (i + 1)..clique_size as u32 {
                    pairs.push((base + i, base + j));
                }
            }
            // one edge to the next clique
            let next = (((c + 1) % num_cliques) * clique_size) as u32;
            pairs.push((base, next));
        }
        let edges: Vec<Edge> = pairs
            .iter()
            .flat_map(|&(u, v)| [Edge::unit(u, v), Edge::unit(v, u)])
            .collect();
        CsrGraph::from_edge_list(&EdgeList::new(n, edges).unwrap())
    }

    #[test]
    fn recovers_ring_of_cliques() {
        let g = ring_of_cliques(6, 5);
        let p = louvain(&g, LouvainOptions::default());
        assert_eq!(p.num_communities(), 6);
        // Every clique must be monochromatic.
        for c in 0..6 {
            let first = p.community((c * 5) as u32);
            for i in 1..5 {
                assert_eq!(p.community((c * 5 + i) as u32), first, "clique {c} split");
            }
        }
    }

    #[test]
    fn modularity_not_worse_than_singletons() {
        let el = gee_gen::erdos_renyi_gnm(120, 600, 5).symmetrized();
        let g = CsrGraph::from_edge_list(&el);
        let p = louvain(&g, LouvainOptions::default());
        let q = modularity(&g, &p, 1.0);
        let q0 = modularity(&g, &Partition::singletons(120), 1.0);
        assert!(q >= q0, "louvain {q} < singletons {q0}");
    }

    #[test]
    fn deterministic_for_seed() {
        let g = ring_of_cliques(4, 4);
        let a = louvain(&g, LouvainOptions::default());
        let b = louvain(&g, LouvainOptions::default());
        assert_eq!(a.membership(), b.membership());
    }

    #[test]
    fn sbm_recovery() {
        let sbm = gee_gen::sbm(&gee_gen::SbmParams::balanced(4, 30, 0.5, 0.01), 3);
        let g = CsrGraph::from_edge_list(&sbm.edges);
        let p = louvain(&g, LouvainOptions::default());
        // Communities should align with blocks (allow small discrepancies):
        // count the majority-block purity.
        let mut correct = 0usize;
        for b in 0..4u32 {
            let mut counts = std::collections::HashMap::new();
            for v in 0..120u32 {
                if sbm.truth[v as usize] == b {
                    *counts.entry(p.community(v)).or_insert(0usize) += 1;
                }
            }
            correct += counts.values().max().copied().unwrap_or(0);
        }
        assert!(correct >= 110, "recovered {correct}/120");
    }

    #[test]
    fn high_gamma_fragments() {
        let g = ring_of_cliques(4, 5);
        let low = louvain(
            &g,
            LouvainOptions {
                gamma: 0.1,
                seed: 1,
                ..Default::default()
            },
        );
        let high = louvain(
            &g,
            LouvainOptions {
                gamma: 8.0,
                seed: 1,
                ..Default::default()
            },
        );
        assert!(high.num_communities() >= low.num_communities());
    }
}
