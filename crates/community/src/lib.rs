//! Community detection: Louvain and Leiden.
//!
//! §II of the paper: "Y may represent the labels of a few known node ground
//! truths or it may be derived from unsupervised clustering, such as by
//! running the Leiden community detection algorithm (ref. 15 of the paper)". This crate
//! provides that label source so the examples and extension experiments can
//! run the full paper pipeline (detect communities → use as Y → embed).
//!
//! * [`louvain()`] — classic two-phase modularity optimization (Blondel et
//!   al. 2008): local moving + graph aggregation.
//! * [`leiden()`] — Traag, Waltman & van Eck 2019: adds the *refinement*
//!   phase between local moving and aggregation, guaranteeing
//!   well-connected communities (Louvain can produce internally
//!   disconnected ones).
//! * [`modularity()`] — the shared quality function (with resolution γ).
//!
//! Input graphs must be in the symmetric two-directed-edges encoding used
//! throughout this workspace.

pub mod leiden;
pub mod louvain;
pub mod modularity;
pub mod partition;

pub use leiden::{leiden, LeidenOptions};
pub use louvain::{louvain, LouvainOptions};
pub use modularity::modularity;
pub use partition::Partition;
