//! Modularity with resolution parameter γ for symmetric weighted graphs.
//!
//! `Q = Σ_c [ e_c / m  −  γ · (d_c / 2m)² ]` where `e_c` is the weight of
//! intra-community edges (counting each undirected edge once), `d_c` the
//! total degree of the community, and `m` the total undirected edge weight.
//! The symmetric two-directed-edge encoding makes `2m` simply the total
//! directed weight.

use gee_graph::CsrGraph;

use crate::partition::Partition;

/// Modularity of `partition` on symmetric graph `g` at resolution `gamma`.
pub fn modularity(g: &CsrGraph, partition: &Partition, gamma: f64) -> f64 {
    assert_eq!(
        g.num_vertices(),
        partition.len(),
        "partition must cover graph"
    );
    let two_m: f64 = g.total_weight();
    if two_m == 0.0 {
        return 0.0;
    }
    let k = partition.num_communities();
    let mut intra = vec![0.0f64; k]; // directed weight inside each community
    let mut degree = vec![0.0f64; k]; // total degree of each community
    for (u, v, w) in g.iter_edges() {
        let cu = partition.community(u) as usize;
        degree[cu] += w;
        if cu == partition.community(v) as usize {
            intra[cu] += w;
        }
    }
    let mut q = 0.0;
    for c in 0..k {
        q += intra[c] / two_m - gamma * (degree[c] / two_m) * (degree[c] / two_m);
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_graph::{Edge, EdgeList};

    fn two_cliques() -> CsrGraph {
        // Two triangles {0,1,2} and {3,4,5} joined by one edge (2,3).
        let pairs = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)];
        let edges: Vec<Edge> = pairs
            .iter()
            .flat_map(|&(u, v)| [Edge::unit(u, v), Edge::unit(v, u)])
            .collect();
        CsrGraph::from_edge_list(&EdgeList::new(6, edges).unwrap())
    }

    #[test]
    fn clique_partition_beats_singletons() {
        let g = two_cliques();
        let good = Partition::from_membership(&[0, 0, 0, 1, 1, 1]);
        let bad = Partition::singletons(6);
        assert!(modularity(&g, &good, 1.0) > modularity(&g, &bad, 1.0));
    }

    #[test]
    fn known_value_two_cliques() {
        // m = 7 undirected edges; e_c = 3 each; d_c = 7 each (2m = 14).
        // Q = 2·(3/7 − (7/14)²) = 6/7 − 1/2 = 5/14.
        let g = two_cliques();
        let p = Partition::from_membership(&[0, 0, 0, 1, 1, 1]);
        let q = modularity(&g, &p, 1.0);
        assert!((q - 5.0 / 14.0).abs() < 1e-12, "Q = {q}");
    }

    #[test]
    fn all_in_one_community_is_zero_at_gamma_one() {
        let g = two_cliques();
        let p = Partition::from_membership(&[0; 6]);
        let q = modularity(&g, &p, 1.0);
        assert!(q.abs() < 1e-12);
    }

    #[test]
    fn gamma_penalizes_large_communities() {
        let g = two_cliques();
        let p = Partition::from_membership(&[0, 0, 0, 1, 1, 1]);
        assert!(modularity(&g, &p, 2.0) < modularity(&g, &p, 1.0));
    }

    #[test]
    fn empty_graph_zero() {
        let g = CsrGraph::build(0, &[], false);
        assert_eq!(modularity(&g, &Partition::singletons(0), 1.0), 0.0);
    }
}
