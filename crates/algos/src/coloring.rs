//! Greedy parallel graph coloring (Jones–Plassmann): vertices color
//! themselves once all higher-priority neighbors are colored, taking the
//! smallest color unused by any colored neighbor.

use std::sync::atomic::{AtomicU32, Ordering};

use gee_graph::CsrGraph;
use rayon::prelude::*;

/// Sentinel for "not yet colored".
pub const UNCOLORED: u32 = u32::MAX;

/// Jones–Plassmann coloring of a **symmetric** graph. Returns a proper
/// coloring (adjacent vertices differ) using at most `max_degree + 1`
/// colors. Deterministic in `seed`.
pub fn color(g: &CsrGraph, seed: u64) -> Vec<u32> {
    let n = g.num_vertices();
    let colors: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNCOLORED)).collect();
    let priority: Vec<u64> = (0..n as u64)
        .map(|v| {
            let mut z = v ^ seed ^ 0xA24BAED4963EE407;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        })
        .collect();
    let pri = |v: u32| (priority[v as usize], v);
    let mut uncolored: Vec<u32> = (0..n as u32).collect();
    let mut rounds = 0;
    while !uncolored.is_empty() {
        rounds += 1;
        assert!(rounds <= n + 1, "coloring failed to converge");
        // Vertices whose every uncolored neighbor has lower priority color
        // themselves this round.
        let ready: Vec<u32> = uncolored
            .par_iter()
            .copied()
            .filter(|&v| {
                g.neighbors(v).iter().all(|&u| {
                    u == v
                        || colors[u as usize].load(Ordering::Relaxed) != UNCOLORED
                        || pri(v) > pri(u)
                })
            })
            .collect();
        ready.par_iter().for_each(|&v| {
            // Smallest color absent among colored neighbors.
            let mut used: Vec<u32> = g
                .neighbors(v)
                .iter()
                .filter(|&&u| u != v)
                .map(|&u| colors[u as usize].load(Ordering::Relaxed))
                .filter(|&c| c != UNCOLORED)
                .collect();
            used.sort_unstable();
            used.dedup();
            let mut c = 0u32;
            for &u in &used {
                if u == c {
                    c += 1;
                } else if u > c {
                    break;
                }
            }
            colors[v as usize].store(c, Ordering::Relaxed);
        });
        uncolored.retain(|&v| colors[v as usize].load(Ordering::Relaxed) == UNCOLORED);
    }
    colors.into_iter().map(|a| a.into_inner()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_graph::{Edge, EdgeList};

    fn undirected(pairs: &[(u32, u32)], n: usize) -> CsrGraph {
        let edges: Vec<Edge> = pairs
            .iter()
            .flat_map(|&(u, v)| [Edge::unit(u, v), Edge::unit(v, u)])
            .collect();
        CsrGraph::from_edge_list(&EdgeList::new(n, edges).unwrap())
    }

    fn verify_proper(g: &CsrGraph, colors: &[u32]) {
        for (u, v, _) in g.iter_edges() {
            if u != v {
                assert_ne!(
                    colors[u as usize], colors[v as usize],
                    "edge ({u},{v}) monochromatic"
                );
            }
        }
        assert!(colors.iter().all(|&c| c != UNCOLORED));
    }

    #[test]
    fn triangle_needs_three() {
        let g = undirected(&[(0, 1), (1, 2), (0, 2)], 3);
        let c = color(&g, 1);
        verify_proper(&g, &c);
        let mut set = c.clone();
        set.sort_unstable();
        set.dedup();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn bipartite_uses_two() {
        // Even cycle: 2-colorable; greedy JP may use up to 3 but must be
        // proper — check properness and the degree+1 bound.
        let pairs: Vec<(u32, u32)> = (0..10).map(|i| (i, (i + 1) % 10)).collect();
        let g = undirected(&pairs, 10);
        let c = color(&g, 3);
        verify_proper(&g, &c);
        assert!(c.iter().all(|&x| x <= 2));
    }

    #[test]
    fn proper_on_random_graphs_with_degree_bound() {
        for seed in 0..5u64 {
            let el = gee_gen::erdos_renyi_gnm(150, 600, seed).symmetrized();
            let g = CsrGraph::from_edge_list(&el);
            let c = color(&g, seed);
            verify_proper(&g, &c);
            let max_deg = (0..150u32).map(|v| g.out_degree(v)).max().unwrap();
            assert!(c.iter().all(|&x| x as usize <= max_deg));
        }
    }

    #[test]
    fn deterministic() {
        let el = gee_gen::erdos_renyi_gnm(80, 300, 7).symmetrized();
        let g = CsrGraph::from_edge_list(&el);
        assert_eq!(color(&g, 2), color(&g, 2));
    }

    #[test]
    fn isolated_vertices_get_color_zero() {
        let g = undirected(&[(0, 1)], 4);
        let c = color(&g, 1);
        assert_eq!(c[2], 0);
        assert_eq!(c[3], 0);
    }
}
