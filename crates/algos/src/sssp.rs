//! Single-source shortest paths on non-negative weighted graphs —
//! frontier-based Bellman-Ford, the canonical *weighted* Ligra program
//! (uses an f64 `writeMin`, complementing GEE's f64 `writeAdd`).

use std::sync::atomic::{AtomicU64, Ordering};

use gee_graph::{CsrGraph, VertexId, Weight};
use gee_ligra::{edge_map, EdgeMapFn, EdgeMapOptions, VertexSubset};

/// Atomic `writeMin` on an f64 distance stored as ordered u64 bits.
/// Works for non-negative finite doubles, whose IEEE-754 bit patterns
/// order identically to their values.
#[inline]
fn write_min_f64(cell: &AtomicU64, v: f64) -> bool {
    debug_assert!(v >= 0.0, "bit-ordered writeMin needs non-negative values");
    let bits = v.to_bits();
    let mut cur = cell.load(Ordering::Relaxed);
    while bits < cur {
        match cell.compare_exchange_weak(cur, bits, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(observed) => cur = observed,
        }
    }
    false
}

struct SsspStep<'a> {
    dist: &'a [AtomicU64],
}

impl EdgeMapFn for SsspStep<'_> {
    fn update(&self, s: VertexId, d: VertexId, w: Weight) -> bool {
        let nd = f64::from_bits(self.dist[s as usize].load(Ordering::Relaxed)) + w;
        if nd < f64::from_bits(self.dist[d as usize].load(Ordering::Relaxed)) {
            self.dist[d as usize].store(nd.to_bits(), Ordering::Relaxed);
            true
        } else {
            false
        }
    }
    fn update_atomic(&self, s: VertexId, d: VertexId, w: Weight) -> bool {
        let nd = f64::from_bits(self.dist[s as usize].load(Ordering::Relaxed)) + w;
        write_min_f64(&self.dist[d as usize], nd)
    }
}

/// Shortest-path distances from `source` over non-negative edge weights
/// (`f64::INFINITY` = unreachable). Frontier-based Bellman-Ford: each
/// round relaxes the out-edges of vertices whose distance improved.
pub fn sssp(g: &CsrGraph, source: VertexId) -> Vec<f64> {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let dist: Vec<AtomicU64> = (0..n)
        .map(|_| AtomicU64::new(f64::INFINITY.to_bits()))
        .collect();
    dist[source as usize].store(0f64.to_bits(), Ordering::Relaxed);
    let step = SsspStep { dist: &dist };
    let mut frontier = VertexSubset::single(n, source);
    let mut rounds = 0usize;
    while !frontier.is_empty() {
        frontier = edge_map(g, &frontier, &step, EdgeMapOptions::default());
        rounds += 1;
        assert!(rounds <= n + 1, "negative cycle or non-termination");
    }
    dist.into_iter()
        .map(|a| f64::from_bits(a.into_inner()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_graph::{Edge, EdgeList};

    fn weighted(edges: &[(u32, u32, f64)], n: usize) -> CsrGraph {
        let el: Vec<Edge> = edges.iter().map(|&(u, v, w)| Edge::new(u, v, w)).collect();
        CsrGraph::from_edge_list(&EdgeList::new(n, el).unwrap())
    }

    fn dijkstra(g: &CsrGraph, s: u32) -> Vec<f64> {
        let n = g.num_vertices();
        let mut dist = vec![f64::INFINITY; n];
        dist[s as usize] = 0.0;
        let mut heap = std::collections::BinaryHeap::new();
        heap.push((std::cmp::Reverse(0u64), s));
        while let Some((std::cmp::Reverse(db), u)) = heap.pop() {
            let d = f64::from_bits(db);
            if d > dist[u as usize] {
                continue;
            }
            for (i, &v) in g.neighbors(u).iter().enumerate() {
                let nd = d + g.weight_at(u, i);
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push((std::cmp::Reverse(nd.to_bits()), v));
                }
            }
        }
        dist
    }

    #[test]
    fn shorter_multi_hop_beats_direct() {
        // 0→2 direct cost 10; 0→1→2 cost 3.
        let g = weighted(&[(0, 2, 10.0), (0, 1, 1.0), (1, 2, 2.0)], 3);
        let d = sssp(&g, 0);
        assert_eq!(d, vec![0.0, 1.0, 3.0]);
    }

    #[test]
    fn unreachable_is_infinite() {
        let g = weighted(&[(0, 1, 1.0)], 3);
        let d = sssp(&g, 0);
        assert!(d[2].is_infinite());
    }

    #[test]
    fn matches_dijkstra_on_random_graph() {
        let el = gee_gen::erdos_renyi_gnm(200, 1500, 7);
        let weighted: Vec<Edge> = el
            .edges()
            .iter()
            .enumerate()
            .map(|(i, e)| Edge::new(e.u, e.v, 0.1 + (i % 17) as f64 * 0.3))
            .collect();
        let g = CsrGraph::from_edge_list(&EdgeList::new(200, weighted).unwrap());
        let a = sssp(&g, 0);
        let b = dijkstra(&g, 0);
        for v in 0..200 {
            if a[v].is_finite() || b[v].is_finite() {
                assert!(
                    (a[v] - b[v]).abs() < 1e-9,
                    "vertex {v}: {} vs {}",
                    a[v],
                    b[v]
                );
            }
        }
    }

    #[test]
    fn unweighted_equals_bfs_depth() {
        let el = gee_gen::erdos_renyi_gnm(150, 900, 13).symmetrized();
        let g = CsrGraph::from_edge_list(&el);
        let d = sssp(&g, 0);
        let bfs = crate::bfs::bfs_distances(&g, 0);
        for v in 0..150 {
            if bfs[v] == u32::MAX {
                assert!(d[v].is_infinite());
            } else {
                assert_eq!(d[v], bfs[v] as f64);
            }
        }
    }

    #[test]
    fn write_min_f64_orders_correctly() {
        let c = AtomicU64::new(5.0f64.to_bits());
        assert!(write_min_f64(&c, 3.5));
        assert!(!write_min_f64(&c, 4.0));
        assert_eq!(f64::from_bits(c.load(Ordering::Relaxed)), 3.5);
    }
}
