//! Semi-supervised label propagation — the classic baseline for the task
//! GEE's embedding serves (vertex classification from few labels). Each
//! round, every unlabeled vertex adopts the weighted majority label of its
//! neighbors; seeds stay fixed. Provides a quality baseline for the
//! `gee-eval` k-NN classifier in the integration tests.

use gee_graph::CsrGraph;
use rayon::prelude::*;

/// Propagate labels from `seeds` (`None` = unlabeled) for at most
/// `max_rounds` synchronous rounds. Returns the final labels (unlabeled
/// vertices in unreachable regions stay `None`).
pub fn label_propagation(
    g: &CsrGraph,
    seeds: &[Option<u32>],
    max_rounds: usize,
) -> Vec<Option<u32>> {
    let n = g.num_vertices();
    assert_eq!(seeds.len(), n, "seeds must cover every vertex");
    let num_classes = seeds.iter().flatten().max().map_or(0, |&m| m as usize + 1);
    let mut current: Vec<Option<u32>> = seeds.to_vec();
    for _ in 0..max_rounds {
        let next: Vec<Option<u32>> = (0..n as u32)
            .into_par_iter()
            .map(|v| {
                // Seeds are immutable.
                if seeds[v as usize].is_some() {
                    return seeds[v as usize];
                }
                let mut votes = vec![0.0f64; num_classes];
                let mut any = false;
                for (i, &u) in g.neighbors(v).iter().enumerate() {
                    if let Some(c) = current[u as usize] {
                        votes[c as usize] += g.weight_at(v, i);
                        any = true;
                    }
                }
                if !any {
                    return current[v as usize];
                }
                let best = votes
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(c, _)| c as u32);
                best
            })
            .collect();
        let changed = next
            .par_iter()
            .zip(current.par_iter())
            .filter(|(a, b)| a != b)
            .count();
        current = next;
        if changed == 0 {
            break;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_graph::{Edge, EdgeList};

    fn undirected(pairs: &[(u32, u32)], n: usize) -> CsrGraph {
        let edges: Vec<Edge> = pairs
            .iter()
            .flat_map(|&(u, v)| [Edge::unit(u, v), Edge::unit(v, u)])
            .collect();
        CsrGraph::from_edge_list(&EdgeList::new(n, edges).unwrap())
    }

    #[test]
    fn propagates_along_path() {
        // 0(seed A) - 1 - 2 - 3(seed B): 1 adopts A, 3 fixed B, 2 tie →
        // max_by picks the last max; just check 1 and endpoints.
        let g = undirected(&[(0, 1), (1, 2), (2, 3)], 4);
        let seeds = vec![Some(0), None, None, Some(1)];
        let out = label_propagation(&g, &seeds, 10);
        assert_eq!(out[0], Some(0));
        assert_eq!(out[3], Some(1));
        assert!(out[1].is_some() && out[2].is_some());
    }

    #[test]
    fn seeds_never_change() {
        let g = undirected(&[(0, 1), (1, 2)], 3);
        let seeds = vec![Some(1), Some(0), None];
        let out = label_propagation(&g, &seeds, 10);
        assert_eq!(out[0], Some(1));
        assert_eq!(out[1], Some(0));
    }

    #[test]
    fn isolated_unlabeled_stays_none() {
        let g = undirected(&[(0, 1)], 3);
        let out = label_propagation(&g, &[Some(0), None, None], 10);
        assert_eq!(out[2], None);
    }

    #[test]
    fn recovers_sbm_blocks() {
        let sbm = gee_gen::sbm(&gee_gen::SbmParams::balanced(3, 80, 0.25, 0.01), 5);
        let g = CsrGraph::from_edge_list(&sbm.edges);
        let seeds = gee_gen::subsample_labels(&sbm.truth, 0.1, 3);
        let out = label_propagation(&g, &seeds, 30);
        let correct = out
            .iter()
            .zip(&sbm.truth)
            .filter(|(o, t)| **o == Some(**t))
            .count();
        assert!(correct as f64 > 0.9 * 240.0, "recovered {correct}/240");
    }

    #[test]
    fn zero_rounds_returns_seeds() {
        let g = undirected(&[(0, 1)], 2);
        let seeds = vec![Some(0), None];
        assert_eq!(label_propagation(&g, &seeds, 0), seeds);
    }
}
