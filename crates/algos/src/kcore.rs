//! k-core decomposition by iterative peeling, expressed with vertex
//! filters — exercises the engine's frontier machinery on a
//! non-traversal-shaped algorithm.

use std::sync::atomic::{AtomicU32, Ordering};

use gee_graph::CsrGraph;
use gee_ligra::VertexSubset;

/// Core number of every vertex of a **symmetric** graph (peeling on
/// out-degree, which equals degree for symmetric inputs).
pub fn kcore(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    let degree: Vec<AtomicU32> = (0..n as u32)
        .map(|v| AtomicU32::new(g.out_degree(v) as u32))
        .collect();
    let mut core = vec![0u32; n];
    let mut removed = vec![false; n];
    let mut remaining = n;
    let mut k = 0u32;
    while remaining > 0 {
        // Collect the current shell: vertices with degree <= k.
        loop {
            let shell: Vec<u32> = (0..n as u32)
                .filter(|&v| {
                    !removed[v as usize] && degree[v as usize].load(Ordering::Relaxed) <= k
                })
                .collect();
            if shell.is_empty() {
                break;
            }
            let frontier = VertexSubset::from_ids(n, shell.clone());
            gee_ligra::vertex_map(&frontier, |v| {
                for &t in g.neighbors(v) {
                    degree[t as usize].fetch_sub(1, Ordering::Relaxed);
                }
            });
            for v in shell {
                removed[v as usize] = true;
                core[v as usize] = k;
                remaining -= 1;
            }
        }
        k += 1;
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_graph::{Edge, EdgeList};

    fn undirected(pairs: &[(u32, u32)], n: usize) -> CsrGraph {
        let edges: Vec<Edge> = pairs
            .iter()
            .flat_map(|&(u, v)| [Edge::unit(u, v), Edge::unit(v, u)])
            .collect();
        CsrGraph::from_edge_list(&EdgeList::new(n, edges).unwrap())
    }

    #[test]
    fn triangle_with_tail() {
        // triangle 0-1-2, tail 2-3
        let g = undirected(&[(0, 1), (1, 2), (0, 2), (2, 3)], 4);
        let core = kcore(&g);
        assert_eq!(core, vec![2, 2, 2, 1]);
    }

    #[test]
    fn clique_core_is_degree() {
        let mut pairs = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                pairs.push((u, v));
            }
        }
        let g = undirected(&pairs, 5);
        assert!(kcore(&g).iter().all(|&c| c == 4));
    }

    #[test]
    fn isolated_vertices_core_zero() {
        let g = undirected(&[(0, 1)], 4);
        let core = kcore(&g);
        assert_eq!(core[2], 0);
        assert_eq!(core[3], 0);
        assert_eq!(core[0], 1);
    }

    #[test]
    fn path_core_one() {
        let g = undirected(&[(0, 1), (1, 2), (2, 3)], 4);
        assert!(kcore(&g).iter().all(|&c| c == 1));
    }
}
