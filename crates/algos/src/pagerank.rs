//! PageRank as a dense edge-map program — the same shape as GEE: a full
//! frontier, `writeAdd` accumulation, two memory ops per edge.

use gee_graph::{CsrGraph, VertexId, Weight};
use gee_ligra::{edge_map, AtomicF64Vec, EdgeMapFn, EdgeMapOptions, TraversalKind, VertexSubset};
use rayon::prelude::*;

/// PageRank configuration.
#[derive(Debug, Clone, Copy)]
pub struct PageRankOptions {
    /// Damping factor (0.85 conventional).
    pub damping: f64,
    /// Maximum iterations.
    pub max_iters: usize,
    /// L1 convergence threshold.
    pub tolerance: f64,
}

impl Default for PageRankOptions {
    fn default() -> Self {
        PageRankOptions {
            damping: 0.85,
            max_iters: 100,
            tolerance: 1e-9,
        }
    }
}

struct PrStep<'a> {
    contrib: &'a [f64],
    next: &'a AtomicF64Vec,
}

impl EdgeMapFn for PrStep<'_> {
    fn update(&self, s: VertexId, d: VertexId, _w: Weight) -> bool {
        // Pull-side single-writer: still uses the atomic cell type, but no
        // contention exists by construction.
        self.next.fetch_add(d as usize, self.contrib[s as usize]);
        false
    }
    fn update_atomic(&self, s: VertexId, d: VertexId, w: Weight) -> bool {
        self.update(s, d, w)
    }
}

/// PageRank over out-edges. Returns per-vertex scores summing to ~1
/// (dangling mass redistributed uniformly).
pub fn pagerank(g: &CsrGraph, opts: PageRankOptions) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut rank = vec![1.0 / n as f64; n];
    let frontier = VertexSubset::full(n);
    for _ in 0..opts.max_iters {
        let contrib: Vec<f64> = (0..n)
            .into_par_iter()
            .map(|v| {
                let d = g.out_degree(v as u32);
                if d > 0 {
                    rank[v] / d as f64
                } else {
                    0.0
                }
            })
            .collect();
        let dangling: f64 = (0..n)
            .into_par_iter()
            .filter(|&v| g.out_degree(v as u32) == 0)
            .map(|v| rank[v])
            .sum();
        let next = AtomicF64Vec::zeros(n);
        let step = PrStep {
            contrib: &contrib,
            next: &next,
        };
        edge_map(
            g,
            &frontier,
            &step,
            EdgeMapOptions {
                kind: TraversalKind::DenseForward,
                no_output: true,
            },
        );
        let base = (1.0 - opts.damping) / n as f64 + opts.damping * dangling / n as f64;
        let new_rank: Vec<f64> = (0..n)
            .into_par_iter()
            .map(|v| base + opts.damping * next.load(v))
            .collect();
        let delta: f64 = rank
            .par_iter()
            .zip(new_rank.par_iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        rank = new_rank;
        if delta < opts.tolerance {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_graph::{Edge, EdgeList};

    fn serial_pagerank(g: &CsrGraph, opts: PageRankOptions) -> Vec<f64> {
        let n = g.num_vertices();
        let mut rank = vec![1.0 / n as f64; n];
        for _ in 0..opts.max_iters {
            let mut next = vec![0.0; n];
            let mut dangling = 0.0;
            for u in 0..n as u32 {
                let d = g.out_degree(u);
                if d == 0 {
                    dangling += rank[u as usize];
                    continue;
                }
                let c = rank[u as usize] / d as f64;
                for &v in g.neighbors(u) {
                    next[v as usize] += c;
                }
            }
            let base = (1.0 - opts.damping) / n as f64 + opts.damping * dangling / n as f64;
            let mut delta = 0.0;
            for v in 0..n {
                let nv = base + opts.damping * next[v];
                delta += (rank[v] - nv).abs();
                rank[v] = nv;
            }
            if delta < opts.tolerance {
                break;
            }
        }
        rank
    }

    #[test]
    fn sums_to_one() {
        let el = gee_gen::erdos_renyi_gnm(200, 1200, 3);
        let g = CsrGraph::from_edge_list(&el);
        let pr = pagerank(&g, PageRankOptions::default());
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn matches_serial_oracle() {
        let el = gee_gen::erdos_renyi_gnm(150, 900, 11);
        let g = CsrGraph::from_edge_list(&el);
        let opts = PageRankOptions {
            max_iters: 30,
            ..Default::default()
        };
        let par = pagerank(&g, opts);
        let ser = serial_pagerank(&g, opts);
        for (i, (a, b)) in par.iter().zip(&ser).enumerate() {
            assert!((a - b).abs() < 1e-9, "vertex {i}: {a} vs {b}");
        }
    }

    #[test]
    fn hub_outranks_leaves() {
        // 0 <- everyone
        let edges: Vec<Edge> = (1..20u32).map(|v| Edge::unit(v, 0)).collect();
        let g = CsrGraph::from_edge_list(&EdgeList::new(20, edges).unwrap());
        let pr = pagerank(&g, PageRankOptions::default());
        assert!(pr[0] > pr[1] * 5.0);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::build(0, &[], false);
        assert!(pagerank(&g, PageRankOptions::default()).is_empty());
    }

    #[test]
    fn cycle_is_uniform() {
        let edges: Vec<Edge> = (0..10u32).map(|v| Edge::unit(v, (v + 1) % 10)).collect();
        let g = CsrGraph::from_edge_list(&EdgeList::new(10, edges).unwrap());
        let pr = pagerank(&g, PageRankOptions::default());
        for &p in &pr {
            assert!((p - 0.1).abs() < 1e-9);
        }
    }
}
