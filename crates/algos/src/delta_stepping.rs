//! Δ-stepping single-source shortest paths (Meyer & Sanders, 2003) on the
//! engine's Julienne-style buckets — the priority-ordered alternative to
//! the frontier Bellman-Ford in [`crate::sssp`].
//!
//! Distances are binned into buckets of width Δ; buckets are settled in
//! increasing order, with an inner loop that re-relaxes vertices whose
//! tentative distance improves *within* the current bucket. Relaxations
//! run in parallel over the active set (atomic `writeMin` on the distance
//! array); bucket maintenance is serial and cheap — the same split
//! Julienne uses.
//!
//! This simplified variant relaxes all out-edges on every activation
//! instead of separating light (< Δ) and heavy (≥ Δ) edges. That costs
//! some repeated heavy relaxations but computes identical distances; the
//! tests check it against a Dijkstra oracle.

use std::sync::atomic::{AtomicU64, Ordering};

use gee_graph::{CsrGraph, VertexId};
use gee_ligra::{BucketOrder, Buckets};
use rayon::prelude::*;

/// Atomic `writeMin` on an f64 distance stored as ordered bits (valid for
/// non-negative finite values, whose IEEE-754 patterns order like values).
#[inline]
fn write_min_f64(cell: &AtomicU64, v: f64) -> bool {
    debug_assert!(v >= 0.0, "bit-ordered writeMin needs non-negative values");
    let bits = v.to_bits();
    let mut cur = cell.load(Ordering::Relaxed);
    while bits < cur {
        match cell.compare_exchange_weak(cur, bits, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(observed) => cur = observed,
        }
    }
    false
}

/// A Δ suggestion: the mean edge weight, which for unit weights recovers
/// Dijkstra-like bucket-per-hop behaviour and for skewed weights keeps
/// buckets usefully populated. Any positive Δ is correct.
pub fn suggest_delta(g: &CsrGraph) -> f64 {
    if g.num_edges() == 0 {
        return 1.0;
    }
    (g.total_weight() / g.num_edges() as f64).max(f64::MIN_POSITIVE)
}

/// Shortest-path distances from `source` over non-negative edge weights
/// using Δ-stepping (`f64::INFINITY` = unreachable).
///
/// Panics if `delta <= 0`, `source` is out of range, or a negative edge
/// weight is encountered.
pub fn delta_stepping(g: &CsrGraph, source: VertexId, delta: f64) -> Vec<f64> {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    assert!(delta > 0.0, "delta must be positive");
    let dist: Vec<AtomicU64> = (0..n)
        .map(|_| AtomicU64::new(f64::INFINITY.to_bits()))
        .collect();
    dist[source as usize].store(0f64.to_bits(), Ordering::Relaxed);

    let bucket_id = |d: f64| (d / delta) as u64;
    let mut buckets = Buckets::new(n, BucketOrder::Increasing, |v| (v == source).then_some(0));

    while let Some(bucket) = buckets.next_bucket() {
        let id = bucket.id;
        let mut active = bucket.vertices;
        // Inner loop: distances of vertices in this bucket can improve via
        // intra-bucket (light) relaxations; iterate until no activation
        // lands back in bucket `id`.
        while !active.is_empty() {
            // Parallel relaxation; collect winning (target, new bucket)
            // moves per worker chunk.
            let dist = &dist;
            let moves: Vec<(VertexId, u64)> = active
                .par_iter()
                .flat_map_iter(|&u| {
                    let du = f64::from_bits(dist[u as usize].load(Ordering::Relaxed));
                    g.neighbors(u)
                        .iter()
                        .enumerate()
                        .filter_map(move |(i, &v)| {
                            let w = g.weight_at(u, i);
                            assert!(w >= 0.0, "delta-stepping requires non-negative weights");
                            let nd = du + w;
                            write_min_f64(&dist[v as usize], nd).then(|| (v, bucket_id(nd)))
                        })
                })
                .collect();
            active.clear();
            let mut seen_this_round = vec![false; 0]; // lazily sized below
            for (v, b) in moves {
                // The recorded distance may have improved further since the
                // move was generated; rebin from the current value.
                let b = b.min(bucket_id(f64::from_bits(
                    dist[v as usize].load(Ordering::Relaxed),
                )));
                if b <= id {
                    if seen_this_round.is_empty() {
                        seen_this_round = vec![false; n];
                    }
                    if !seen_this_round[v as usize] {
                        seen_this_round[v as usize] = true;
                        buckets.remove(v); // supersedes any queued entry
                        active.push(v);
                    }
                } else {
                    buckets.update_bucket(v, b);
                }
            }
        }
    }
    dist.into_iter()
        .map(|a| f64::from_bits(a.into_inner()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_graph::{Edge, EdgeList};

    fn weighted(edges: &[(u32, u32, f64)], n: usize) -> CsrGraph {
        let el: Vec<Edge> = edges.iter().map(|&(u, v, w)| Edge::new(u, v, w)).collect();
        CsrGraph::from_edge_list(&EdgeList::new(n, el).unwrap())
    }

    fn dijkstra(g: &CsrGraph, s: u32) -> Vec<f64> {
        let n = g.num_vertices();
        let mut dist = vec![f64::INFINITY; n];
        dist[s as usize] = 0.0;
        let mut heap = std::collections::BinaryHeap::new();
        heap.push((std::cmp::Reverse(0u64), s));
        while let Some((std::cmp::Reverse(db), u)) = heap.pop() {
            let d = f64::from_bits(db);
            if d > dist[u as usize] {
                continue;
            }
            for (i, &v) in g.neighbors(u).iter().enumerate() {
                let nd = d + g.weight_at(u, i);
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push((std::cmp::Reverse(nd.to_bits()), v));
                }
            }
        }
        dist
    }

    fn assert_dists_eq(a: &[f64], b: &[f64]) {
        for (v, (&x, &y)) in a.iter().zip(b).enumerate() {
            if x.is_finite() || y.is_finite() {
                assert!((x - y).abs() < 1e-9, "vertex {v}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn multi_hop_beats_direct() {
        let g = weighted(&[(0, 2, 10.0), (0, 1, 1.0), (1, 2, 2.0)], 3);
        assert_eq!(delta_stepping(&g, 0, 1.0), vec![0.0, 1.0, 3.0]);
    }

    #[test]
    fn unreachable_is_infinite() {
        let g = weighted(&[(0, 1, 1.0)], 3);
        assert!(delta_stepping(&g, 0, 0.5)[2].is_infinite());
    }

    #[test]
    fn intra_bucket_chain_settles() {
        // All weights < delta: the whole path resolves inside bucket 0.
        let g = weighted(&[(0, 1, 0.1), (1, 2, 0.1), (2, 3, 0.1)], 4);
        let d = delta_stepping(&g, 0, 100.0);
        assert_dists_eq(&d, &[0.0, 0.1, 0.2, 0.3]);
    }

    #[test]
    fn matches_dijkstra_across_deltas() {
        let el = gee_gen::erdos_renyi_gnm(300, 2400, 17);
        let edges: Vec<Edge> = el
            .edges()
            .iter()
            .enumerate()
            .map(|(i, e)| Edge::new(e.u, e.v, 0.05 + (i % 23) as f64 * 0.21))
            .collect();
        let g = CsrGraph::from_edge_list(&EdgeList::new(300, edges).unwrap());
        let oracle = dijkstra(&g, 0);
        for delta in [0.1, 1.0, 5.0, 1e6] {
            assert_dists_eq(&delta_stepping(&g, 0, delta), &oracle);
        }
    }

    #[test]
    fn matches_frontier_bellman_ford() {
        let el = gee_gen::erdos_renyi_gnm(200, 1600, 5).symmetrized();
        let g = CsrGraph::from_edge_list(&el);
        let a = delta_stepping(&g, 3, suggest_delta(&g));
        let b = crate::sssp::sssp(&g, 3);
        assert_dists_eq(&a, &b);
    }

    #[test]
    fn zero_weight_edges_handled() {
        let g = weighted(&[(0, 1, 0.0), (1, 2, 0.0), (2, 0, 0.0), (1, 3, 2.0)], 4);
        let d = delta_stepping(&g, 0, 1.0);
        assert_dists_eq(&d, &[0.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn suggest_delta_positive() {
        let g = weighted(&[(0, 1, 2.0), (1, 0, 4.0)], 2);
        assert_eq!(suggest_delta(&g), 3.0);
        let empty = CsrGraph::build(3, &[], false);
        assert!(suggest_delta(&empty) > 0.0);
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn rejects_nonpositive_delta() {
        let g = weighted(&[(0, 1, 1.0)], 2);
        delta_stepping(&g, 0, 0.0);
    }
}
