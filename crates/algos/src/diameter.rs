//! Approximate graph diameter by the double-sweep heuristic: BFS from an
//! arbitrary seed, then BFS again from the farthest vertex found. The
//! second eccentricity is a lower bound on the true diameter that is
//! exact on trees and empirically tight on small-world graphs —
//! complementing [`crate::radii`]'s bit-parallel multi-source estimate.

use gee_graph::{CsrGraph, VertexId};

/// Result of [`double_sweep_diameter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiameterEstimate {
    /// Lower bound on the diameter (exact on trees).
    pub diameter_lower_bound: u32,
    /// The two endpoints realizing the bound.
    pub endpoints: (VertexId, VertexId),
}

/// Double-sweep diameter estimate of the component containing `seed`
/// (use a vertex of the largest component for whole-graph estimates).
/// Returns `None` if `seed` has no outgoing path (isolated vertex).
pub fn double_sweep_diameter(g: &CsrGraph, seed: VertexId) -> Option<DiameterEstimate> {
    let first = crate::bfs::bfs_distances(g, seed);
    let (a, da) = farthest(&first)?;
    if da == 0 {
        return None; // seed reaches nothing
    }
    let second = crate::bfs::bfs_distances(g, a);
    let (b, db) = farthest(&second)?;
    Some(DiameterEstimate {
        diameter_lower_bound: db,
        endpoints: (a, b),
    })
}

/// Farthest reachable vertex and its distance (ties: lowest id).
fn farthest(dist: &[u32]) -> Option<(VertexId, u32)> {
    dist.iter()
        .enumerate()
        .filter(|&(_, &d)| d != u32::MAX)
        .max_by_key(|&(v, &d)| (d, std::cmp::Reverse(v)))
        .map(|(v, &d)| (v as VertexId, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_graph::{Edge, EdgeList};

    fn undirected(pairs: &[(u32, u32)], n: usize) -> CsrGraph {
        let edges: Vec<Edge> = pairs
            .iter()
            .flat_map(|&(u, v)| [Edge::unit(u, v), Edge::unit(v, u)])
            .collect();
        CsrGraph::from_edge_list(&EdgeList::new(n, edges).unwrap())
    }

    /// Exact diameter by all-pairs BFS (test oracle).
    fn exact_diameter(g: &CsrGraph) -> u32 {
        (0..g.num_vertices() as u32)
            .filter_map(|s| {
                crate::bfs::bfs_distances(g, s)
                    .iter()
                    .filter(|&&d| d != u32::MAX)
                    .max()
                    .copied()
            })
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn exact_on_paths() {
        let pairs: Vec<(u32, u32)> = (0..9).map(|v| (v, v + 1)).collect();
        let g = undirected(&pairs, 10);
        // Seed mid-path: first sweep finds an end, second spans the path.
        let est = double_sweep_diameter(&g, 4).unwrap();
        assert_eq!(est.diameter_lower_bound, 9);
        let (a, b) = est.endpoints;
        assert_eq!(a.min(b), 0);
        assert_eq!(a.max(b), 9);
    }

    #[test]
    fn exact_on_trees() {
        // Caterpillar: spine 0-1-2-3 with legs.
        let g = undirected(&[(0, 1), (1, 2), (2, 3), (1, 4), (2, 5), (5, 6)], 7);
        let est = double_sweep_diameter(&g, 1).unwrap();
        assert_eq!(est.diameter_lower_bound, exact_diameter(&g));
    }

    #[test]
    fn lower_bounds_random_graphs() {
        for seed in [1u64, 5, 9] {
            let el = gee_gen::erdos_renyi_gnm(150, 450, seed).symmetrized();
            let g = CsrGraph::from_edge_list(&el);
            // Seed from a non-isolated vertex.
            let s = (0..150u32).find(|&v| g.out_degree(v) > 0).unwrap();
            if let Some(est) = double_sweep_diameter(&g, s) {
                let exact = exact_diameter(&g);
                assert!(est.diameter_lower_bound <= exact);
                // Double sweep on sparse ER is usually tight; require ≥ half.
                assert!(
                    est.diameter_lower_bound * 2 >= exact,
                    "{} vs {exact}",
                    est.diameter_lower_bound
                );
            }
        }
    }

    #[test]
    fn cycle_bound_is_half() {
        let pairs: Vec<(u32, u32)> = (0..10).map(|v| (v, (v + 1) % 10)).collect();
        let g = undirected(&pairs, 10);
        let est = double_sweep_diameter(&g, 0).unwrap();
        assert_eq!(est.diameter_lower_bound, 5);
    }

    #[test]
    fn isolated_seed_returns_none() {
        let g = undirected(&[(0, 1)], 3);
        assert!(double_sweep_diameter(&g, 2).is_none());
    }
}
