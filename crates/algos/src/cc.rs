//! Connected components via label propagation with `writeMin` — Ligra's
//! `Components` program.

use std::sync::atomic::{AtomicU32, Ordering};

use gee_graph::{CsrGraph, VertexId, Weight};
use gee_ligra::atomics::write_min_u32;
use gee_ligra::{edge_map, EdgeMapFn, EdgeMapOptions, VertexSubset};

struct CcStep<'a> {
    labels: &'a [AtomicU32],
}

impl EdgeMapFn for CcStep<'_> {
    fn update(&self, s: VertexId, d: VertexId, _w: Weight) -> bool {
        let ls = self.labels[s as usize].load(Ordering::Relaxed);
        if ls < self.labels[d as usize].load(Ordering::Relaxed) {
            self.labels[d as usize].store(ls, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn update_atomic(&self, s: VertexId, d: VertexId, _w: Weight) -> bool {
        let ls = self.labels[s as usize].load(Ordering::Relaxed);
        write_min_u32(&self.labels[d as usize], ls)
    }
}

/// Connected components of the graph **viewed as undirected** if the input
/// is symmetric (for directed inputs this computes reachability-closed
/// label minima along edge direction; symmetrize first for true CC).
/// Returns the minimum vertex id of each vertex's component.
pub fn connected_components(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let step = CcStep { labels: &labels };
    let mut frontier = VertexSubset::full(n);
    while !frontier.is_empty() {
        frontier = edge_map(g, &frontier, &step, EdgeMapOptions::default());
    }
    labels.into_iter().map(|a| a.into_inner()).collect()
}

/// Number of distinct components in a label vector.
pub fn num_components(labels: &[u32]) -> usize {
    let mut set: Vec<u32> = labels.to_vec();
    set.sort_unstable();
    set.dedup();
    set.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_graph::{Edge, EdgeList};

    fn union_find_cc(g: &CsrGraph) -> Vec<u32> {
        let n = g.num_vertices();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(p: &mut [u32], x: u32) -> u32 {
            let mut r = x;
            while p[r as usize] != r {
                r = p[r as usize];
            }
            let mut c = x;
            while p[c as usize] != r {
                let nxt = p[c as usize];
                p[c as usize] = r;
                c = nxt;
            }
            r
        }
        for (u, v, _) in g.iter_edges() {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                parent[ru.max(rv) as usize] = ru.min(rv);
            }
        }
        (0..n as u32).map(|v| find(&mut parent, v)).collect()
    }

    #[test]
    fn two_components() {
        let el = EdgeList::new(
            5,
            vec![
                Edge::unit(0, 1),
                Edge::unit(1, 0),
                Edge::unit(2, 3),
                Edge::unit(3, 2),
            ],
        )
        .unwrap();
        let g = CsrGraph::from_edge_list(&el);
        let cc = connected_components(&g);
        assert_eq!(cc[0], cc[1]);
        assert_eq!(cc[2], cc[3]);
        assert_ne!(cc[0], cc[2]);
        assert_eq!(cc[4], 4); // isolated
        assert_eq!(num_components(&cc), 3);
    }

    #[test]
    fn matches_union_find_on_random_graph() {
        let el = gee_gen::erdos_renyi_gnm(400, 500, 17).symmetrized();
        let g = CsrGraph::from_edge_list(&el);
        assert_eq!(connected_components(&g), union_find_cc(&g));
    }

    #[test]
    fn single_component_cycle() {
        let edges: Vec<Edge> = (0..10u32)
            .flat_map(|v| [Edge::unit(v, (v + 1) % 10), Edge::unit((v + 1) % 10, v)])
            .collect();
        let g = CsrGraph::from_edge_list(&EdgeList::new(10, edges).unwrap());
        let cc = connected_components(&g);
        assert!(cc.iter().all(|&c| c == 0));
    }

    #[test]
    fn labels_are_component_minima() {
        let el = gee_gen::erdos_renyi_gnm(200, 220, 23).symmetrized();
        let g = CsrGraph::from_edge_list(&el);
        let cc = connected_components(&g);
        for (v, &c) in cc.iter().enumerate() {
            assert!(
                c <= v as u32,
                "label must be the minimum id in the component"
            );
            assert_eq!(
                cc[c as usize], c,
                "component representative must label itself"
            );
        }
    }
}
