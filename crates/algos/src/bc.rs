//! Betweenness centrality from a single source (Brandes' algorithm in
//! frontier form): a forward BFS accumulating shortest-path counts, then a
//! backward sweep accumulating dependencies — both expressed as edge maps.

use std::sync::atomic::{AtomicU32, Ordering};

use gee_graph::{CsrGraph, VertexId, Weight};
use gee_ligra::{edge_map, AtomicF64Vec, EdgeMapFn, EdgeMapOptions, VertexSubset};

struct ForwardStep<'a> {
    /// Set only *between* rounds (Ligra does this with a vertexMap after the
    /// edgeMap) so that all same-level path counts accumulate; using it in
    /// `cond` during the round would drop sibling contributions.
    visited: &'a [AtomicU32],
    /// Claimed-this-traversal flags for output-frontier deduplication.
    claimed: &'a [AtomicU32],
    num_paths: &'a AtomicF64Vec,
}

impl EdgeMapFn for ForwardStep<'_> {
    fn update(&self, s: VertexId, d: VertexId, _w: Weight) -> bool {
        self.num_paths
            .fetch_add(d as usize, self.num_paths.load(s as usize));
        if self.claimed[d as usize].load(Ordering::Relaxed) == 0 {
            self.claimed[d as usize].store(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }
    fn update_atomic(&self, s: VertexId, d: VertexId, _w: Weight) -> bool {
        self.num_paths
            .fetch_add(d as usize, self.num_paths.load(s as usize));
        self.claimed[d as usize]
            .compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }
    fn cond(&self, d: VertexId) -> bool {
        self.visited[d as usize].load(Ordering::Relaxed) == 0
    }
}

struct BackwardStep<'a> {
    in_next_level: &'a [bool],
    num_paths: &'a [f64],
    dependency: &'a AtomicF64Vec,
}

impl EdgeMapFn for BackwardStep<'_> {
    fn update(&self, s: VertexId, d: VertexId, _w: Weight) -> bool {
        // s is one level farther than d: accumulate dependency into d.
        if self.in_next_level[s as usize] {
            let contrib = self.num_paths[d as usize] / self.num_paths[s as usize]
                * (1.0 + self.dependency.load(s as usize));
            self.dependency.fetch_add(d as usize, contrib);
        }
        false
    }
    fn update_atomic(&self, s: VertexId, d: VertexId, w: Weight) -> bool {
        self.update(s, d, w)
    }
}

/// Single-source betweenness dependencies (Brandes). The graph must be
/// symmetric (undirected encoding) for the backward pass over out-edges to
/// equal the in-edge pass. Returns per-vertex dependency scores.
pub fn betweenness(g: &CsrGraph, source: VertexId) -> Vec<f64> {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let visited: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let claimed: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    visited[source as usize].store(1, Ordering::Relaxed);
    claimed[source as usize].store(1, Ordering::Relaxed);
    let num_paths = AtomicF64Vec::zeros(n);
    num_paths.store(source as usize, 1.0);

    // Forward phase: record each BFS level. `visited` is published only
    // after each round so same-level σ contributions are not cut off.
    let mut levels: Vec<VertexSubset> = vec![VertexSubset::single(n, source)];
    loop {
        let step = ForwardStep {
            visited: &visited,
            claimed: &claimed,
            num_paths: &num_paths,
        };
        let next = edge_map(g, levels.last().unwrap(), &step, EdgeMapOptions::default());
        if next.is_empty() {
            break;
        }
        gee_ligra::vertex_map(&next, |v| visited[v as usize].store(1, Ordering::Relaxed));
        levels.push(next);
    }

    // Backward phase: walk levels deepest-first; for each vertex d in level
    // L, sum over its neighbors s in level L+1.
    let paths: Vec<f64> = (0..n).map(|i| num_paths.load(i)).collect();
    let dependency = AtomicF64Vec::zeros(n);
    for li in (0..levels.len().saturating_sub(1)).rev() {
        let mut next_flags = vec![false; n];
        for v in levels[li + 1].iter() {
            next_flags[v as usize] = true;
        }
        // Traverse out-edges of level li; the functor filters targets in
        // level li+1. Roles are inverted relative to the usual edgeMap (the
        // *source* accumulates), so `update` writes to `d = the source` of
        // the conceptual dependency edge. We achieve this by traversing from
        // level li and treating s=li-vertex, d=neighbor: contribution flows
        // neighbor→s, so swap in the functor.
        struct Swapped<'a>(BackwardStep<'a>);
        impl EdgeMapFn for Swapped<'_> {
            fn update(&self, s: VertexId, d: VertexId, w: Weight) -> bool {
                // invert: dependency of s accumulates from d
                self.0.update(d, s, w)
            }
            fn update_atomic(&self, s: VertexId, d: VertexId, w: Weight) -> bool {
                self.update(s, d, w)
            }
        }
        let step = Swapped(BackwardStep {
            in_next_level: &next_flags,
            num_paths: &paths,
            dependency: &dependency,
        });
        edge_map(
            g,
            &levels[li],
            &step,
            EdgeMapOptions {
                no_output: true,
                ..Default::default()
            },
        );
    }
    dependency.into_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_graph::{Edge, EdgeList};

    fn undirected(edges: &[(u32, u32)], n: usize) -> CsrGraph {
        let el: Vec<Edge> = edges
            .iter()
            .flat_map(|&(u, v)| [Edge::unit(u, v), Edge::unit(v, u)])
            .collect();
        CsrGraph::from_edge_list(&EdgeList::new(n, el).unwrap())
    }

    /// Serial Brandes single-source dependencies for validation.
    fn serial_brandes(g: &CsrGraph, s: u32) -> Vec<f64> {
        let n = g.num_vertices();
        let mut stack = Vec::new();
        let mut dist = vec![-1i64; n];
        let mut sigma = vec![0.0f64; n];
        let mut delta = vec![0.0f64; n];
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        dist[s as usize] = 0;
        sigma[s as usize] = 1.0;
        let mut q = std::collections::VecDeque::new();
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            stack.push(u);
            for &v in g.neighbors(u) {
                if dist[v as usize] < 0 {
                    dist[v as usize] = dist[u as usize] + 1;
                    q.push_back(v);
                }
                if dist[v as usize] == dist[u as usize] + 1 {
                    sigma[v as usize] += sigma[u as usize];
                    preds[v as usize].push(u);
                }
            }
        }
        while let Some(w) = stack.pop() {
            for &u in &preds[w as usize] {
                delta[u as usize] +=
                    sigma[u as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
            }
        }
        delta
    }

    #[test]
    fn path_center_has_dependency() {
        // 0 - 1 - 2: from source 0, vertex 1 lies on the path to 2.
        let g = undirected(&[(0, 1), (1, 2)], 3);
        let dep = betweenness(&g, 0);
        assert!((dep[1] - 1.0).abs() < 1e-12, "dep = {dep:?}");
        assert_eq!(dep[2], 0.0);
    }

    #[test]
    fn matches_serial_brandes_small() {
        let g = undirected(&[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)], 5);
        let par = betweenness(&g, 0);
        let ser = serial_brandes(&g, 0);
        for i in 0..5 {
            assert!(
                (par[i] - ser[i]).abs() < 1e-9,
                "vertex {i}: {} vs {}",
                par[i],
                ser[i]
            );
        }
    }

    #[test]
    fn matches_serial_brandes_random() {
        let el = gee_gen::erdos_renyi_gnm(60, 180, 5).symmetrized();
        let g = CsrGraph::from_edge_list(&el);
        let par = betweenness(&g, 3);
        let ser = serial_brandes(&g, 3);
        for i in 0..60 {
            assert!(
                (par[i] - ser[i]).abs() < 1e-6,
                "vertex {i}: {} vs {}",
                par[i],
                ser[i]
            );
        }
    }
}
