//! Graph eccentricity/radii estimation via multi-source BFS with
//! bit-parallel frontiers — Ligra's `Radii` application.
//!
//! `k = 64` random sources run simultaneously; each vertex carries a
//! 64-bit visited mask, and a round's changed vertices form the next
//! frontier. A vertex's estimated eccentricity is the last round in which
//! its mask changed — a lower bound on the true eccentricity that becomes
//! exact for the sampled sources.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use gee_graph::{CsrGraph, VertexId, Weight};
use gee_ligra::{edge_map, EdgeMapFn, EdgeMapOptions, VertexSubset};

struct RadiiStep<'a> {
    visited: &'a [AtomicU64],
    next_visited: &'a [AtomicU64],
    radii: &'a [AtomicU32],
    round: u32,
}

impl EdgeMapFn for RadiiStep<'_> {
    fn update(&self, s: VertexId, d: VertexId, _w: Weight) -> bool {
        let sv = self.visited[s as usize].load(Ordering::Relaxed);
        let dv = self.visited[d as usize].load(Ordering::Relaxed);
        let add = sv & !dv;
        if add != 0 {
            let prev = self.next_visited[d as usize].fetch_or(add | dv, Ordering::Relaxed);
            self.radii[d as usize].store(self.round, Ordering::Relaxed);
            // Report d once per round: when this call is the first to set
            // new bits beyond what next_visited already had.
            return (add & !prev) != 0;
        }
        false
    }
    fn update_atomic(&self, s: VertexId, d: VertexId, w: Weight) -> bool {
        self.update(s, d, w)
    }
}

/// Estimate per-vertex eccentricities from `num_sources ≤ 64` random
/// sources (deterministic in `seed`). Returns the radii estimates
/// (0 for vertices never reached).
pub fn radii_estimate(g: &CsrGraph, num_sources: usize, seed: u64) -> Vec<u32> {
    let n = g.num_vertices();
    let k = num_sources.clamp(1, 64);
    if n == 0 {
        return Vec::new();
    }
    // Pick k distinct sources via SplitMix64 probing.
    let mut sources = Vec::with_capacity(k);
    let mut x = seed;
    while sources.len() < k.min(n) {
        x = x.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        let v = ((z ^ (z >> 31)) % n as u64) as u32;
        if !sources.contains(&v) {
            sources.push(v);
        }
    }
    let visited: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let next_visited: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let radii: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    for (i, &s) in sources.iter().enumerate() {
        visited[s as usize].store(1 << i, Ordering::Relaxed);
        next_visited[s as usize].store(1 << i, Ordering::Relaxed);
    }
    let mut frontier = VertexSubset::from_ids(n, sources);
    let mut round = 0;
    while !frontier.is_empty() {
        round += 1;
        let step = RadiiStep {
            visited: &visited,
            next_visited: &next_visited,
            radii: &radii,
            round,
        };
        frontier = edge_map(g, &frontier, &step, EdgeMapOptions::default());
        // Publish next_visited into visited for the new round.
        for v in 0..n {
            let nv = next_visited[v].load(Ordering::Relaxed);
            visited[v].store(nv, Ordering::Relaxed);
        }
    }
    radii.into_iter().map(|a| a.into_inner()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_graph::{Edge, EdgeList};

    fn path(n: usize) -> CsrGraph {
        let edges: Vec<Edge> = (0..n as u32 - 1)
            .flat_map(|v| [Edge::unit(v, v + 1), Edge::unit(v + 1, v)])
            .collect();
        CsrGraph::from_edge_list(&EdgeList::new(n, edges).unwrap())
    }

    #[test]
    fn path_radii_bounded_by_diameter() {
        let g = path(10);
        let r = radii_estimate(&g, 8, 3);
        // The maximum estimate cannot exceed the diameter (9).
        assert!(r.iter().all(|&x| x <= 9), "{r:?}");
        // With several sources, some vertex near an end sees a long path.
        assert!(r.iter().any(|&x| x >= 5), "{r:?}");
    }

    #[test]
    fn estimates_lower_bound_true_eccentricity() {
        let el = gee_gen::erdos_renyi_gnm(120, 500, 5).symmetrized();
        let g = CsrGraph::from_edge_list(&el);
        let r = radii_estimate(&g, 16, 7);
        // True eccentricity via BFS from each vertex (oracle).
        for v in 0..120u32 {
            let d = crate::bfs::bfs_distances(&g, v);
            let ecc = d
                .iter()
                .filter(|&&x| x != u32::MAX)
                .max()
                .copied()
                .unwrap_or(0);
            assert!(
                r[v as usize] <= ecc,
                "vertex {v}: estimate {} > ecc {ecc}",
                r[v as usize]
            );
        }
    }

    #[test]
    fn deterministic() {
        let el = gee_gen::erdos_renyi_gnm(80, 400, 9).symmetrized();
        let g = CsrGraph::from_edge_list(&el);
        assert_eq!(radii_estimate(&g, 8, 1), radii_estimate(&g, 8, 1));
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::build(0, &[], false);
        assert!(radii_estimate(&g, 4, 1).is_empty());
    }

    #[test]
    fn single_source_on_star() {
        let edges: Vec<Edge> = (1..9u32)
            .flat_map(|v| [Edge::unit(0, v), Edge::unit(v, 0)])
            .collect();
        let g = CsrGraph::from_edge_list(&EdgeList::new(9, edges).unwrap());
        let r = radii_estimate(&g, 64, 2);
        // Star diameter is 2; estimates are within it.
        assert!(r.iter().all(|&x| x <= 2));
    }
}
