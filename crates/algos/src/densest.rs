//! Approximate densest subgraph by greedy peeling (Charikar): remove
//! minimum-degree vertices and report the suffix with the best density
//! `|E(S)| / |S|`. Peeling proceeds at *bucket* granularity — the whole
//! minimum bucket is processed before re-binning takes effect — which is
//! the standard parallel relaxation of the exact min-degree schedule
//! (Dhulipala et al.'s (2+ε)-style variant). The schedule is exactly a
//! k-core peel, so this reuses the engine's bucket structure.

use std::sync::atomic::{AtomicU64, Ordering};

use gee_graph::{CsrGraph, VertexId};
use gee_ligra::{BucketOrder, Buckets};
use rayon::prelude::*;

/// Result of [`densest_subgraph`].
#[derive(Debug, Clone)]
pub struct DensestResult {
    /// Vertices of the chosen subgraph.
    pub vertices: Vec<VertexId>,
    /// `|E(S)| / |S|` of the chosen subgraph, counting undirected edges
    /// once (a symmetric input stores each edge twice).
    pub density: f64,
}

/// Greedy 2-approximate densest subgraph of a **symmetric** graph.
pub fn densest_subgraph(g: &CsrGraph) -> DensestResult {
    let n = g.num_vertices();
    if n == 0 {
        return DensestResult {
            vertices: Vec::new(),
            density: 0.0,
        };
    }
    let degree: Vec<AtomicU64> = (0..n as VertexId)
        .map(|v| AtomicU64::new(g.out_degree(v) as u64))
        .collect();
    // Directed arcs remaining in the current suffix (2 per undirected edge).
    let mut live_arcs: u64 = degree.iter().map(|d| d.load(Ordering::Relaxed)).sum();
    let mut live_vertices = n as u64;
    let mut removed = vec![false; n];
    // Peel in min-degree order and remember the removal sequence; the
    // best suffix density decides the cut.
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    let mut best_density = live_arcs as f64 / 2.0 / live_vertices as f64;
    let mut best_prefix_len = 0usize; // removals applied before the best suffix
    let mut buckets = Buckets::new(n, BucketOrder::Increasing, |v| {
        Some(degree[v as usize].load(Ordering::Relaxed))
    });
    while let Some(bucket) = buckets.next_bucket() {
        for v in bucket.vertices {
            // Lazy re-validation: the recorded bucket may be stale higher
            // than the true degree never happens (degrees only drop), but
            // a vertex can sit in a *stale low* bucket only transiently;
            // both cases are safe because we recompute from `degree`.
            if removed[v as usize] {
                continue;
            }
            removed[v as usize] = true;
            order.push(v);
            let d = degree[v as usize].load(Ordering::Relaxed);
            // v's outgoing live arcs (d) plus the mirror arcs from its
            // live neighbors (d minus self-loop arcs, which have no
            // separate mirror in the degree accounting) disappear.
            let self_arcs = g.neighbors(v).iter().filter(|&&t| t == v).count() as u64;
            live_arcs -= 2 * d - self_arcs;
            live_vertices -= 1;
            let moves: Vec<(VertexId, u64)> = g
                .neighbors(v)
                .par_iter()
                .filter(|&&t| t != v && !removed[t as usize])
                .map(|&t| {
                    let nd = degree[t as usize]
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| d.checked_sub(1))
                        .expect("degree underflow")
                        - 1;
                    (t, nd)
                })
                .collect();
            for (t, nd) in moves {
                buckets.update_bucket(t, nd);
            }
            if live_vertices > 0 {
                let density = live_arcs as f64 / 2.0 / live_vertices as f64;
                if density > best_density {
                    best_density = density;
                    best_prefix_len = order.len();
                }
            }
        }
    }
    // The best suffix = everything not removed within the best prefix.
    let cut: std::collections::HashSet<VertexId> =
        order[..best_prefix_len].iter().copied().collect();
    let vertices: Vec<VertexId> = (0..n as VertexId).filter(|v| !cut.contains(v)).collect();
    DensestResult {
        vertices,
        density: best_density,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_graph::{Edge, EdgeList};

    fn undirected(pairs: &[(u32, u32)], n: usize) -> CsrGraph {
        let edges: Vec<Edge> = pairs
            .iter()
            .flat_map(|&(u, v)| [Edge::unit(u, v), Edge::unit(v, u)])
            .collect();
        CsrGraph::from_edge_list(&EdgeList::new(n, edges).unwrap())
    }

    /// Exact density of a vertex subset (undirected edges counted once).
    fn density_of(g: &CsrGraph, vs: &[u32]) -> f64 {
        let set: std::collections::HashSet<u32> = vs.iter().copied().collect();
        let mut arcs = 0usize;
        for &v in vs {
            arcs += g.neighbors(v).iter().filter(|t| set.contains(t)).count();
        }
        arcs as f64 / 2.0 / vs.len() as f64
    }

    #[test]
    fn finds_planted_clique() {
        // 6-clique (density 2.5) planted in a long path (density < 1).
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                pairs.push((u, v));
            }
        }
        for v in 6..40u32 {
            pairs.push((v - 1, v));
        }
        let g = undirected(&pairs, 40);
        let r = densest_subgraph(&g);
        assert!((r.density - 2.5).abs() < 1e-9, "density {}", r.density);
        let mut vs = r.vertices.clone();
        vs.sort_unstable();
        assert_eq!(vs, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn clique_is_its_own_densest_subgraph() {
        let mut pairs = Vec::new();
        for u in 0..8u32 {
            for v in (u + 1)..8 {
                pairs.push((u, v));
            }
        }
        let g = undirected(&pairs, 8);
        let r = densest_subgraph(&g);
        assert_eq!(r.vertices.len(), 8);
        assert!((r.density - 3.5).abs() < 1e-9);
    }

    #[test]
    fn reported_density_matches_reported_vertices() {
        let el = gee_gen::erdos_renyi_gnm(300, 2400, 5).symmetrized();
        let g = CsrGraph::from_edge_list(&el);
        let r = densest_subgraph(&g);
        assert!(!r.vertices.is_empty());
        let actual = density_of(&g, &r.vertices);
        assert!(
            (actual - r.density).abs() < 1e-9,
            "claimed {} actual {actual}",
            r.density
        );
    }

    #[test]
    fn two_approximation_bound_on_random_graph() {
        // Greedy density ≥ (max density)/2 ≥ (m/n)/2 — check the weaker,
        // certifiable bound against the whole graph's density.
        let el = gee_gen::rmat(10, 8_000, Default::default(), 9).symmetrized();
        let g = CsrGraph::from_edge_list(&el);
        let whole = g.num_edges() as f64 / 2.0 / g.num_vertices() as f64;
        let r = densest_subgraph(&g);
        assert!(
            r.density >= whole,
            "greedy {} below whole-graph {whole}",
            r.density
        );
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let r = densest_subgraph(&CsrGraph::build(0, &[], false));
        assert!(r.vertices.is_empty());
        let r = densest_subgraph(&CsrGraph::build(5, &[], false));
        assert_eq!(r.density, 0.0);
        assert_eq!(r.vertices.len(), 5); // nothing beats the initial suffix
    }
}
