//! Parallel maximal matching by random edge priorities — Luby's strategy
//! on the line graph, implemented with the engine's lock-free `writeMin`
//! and CAS primitives (the same toolkit GEE's `writeAdd` comes from).
//!
//! Each round assigns every live edge a hash priority; an edge joins the
//! matching iff it holds the minimum priority at *both* endpoints, which
//! makes concurrent decisions conflict-free. Matched and covered edges
//! drop out; whp O(log s) rounds remain.

use std::sync::atomic::{AtomicU64, Ordering};

use gee_graph::{CsrGraph, VertexId};
use rayon::prelude::*;

const UNMATCHED: u32 = u32::MAX;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Atomic `writeMin` on a u64 cell.
#[inline]
fn write_min_u64(cell: &AtomicU64, v: u64) {
    let mut cur = cell.load(Ordering::Relaxed);
    while v < cur {
        match cell.compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(observed) => cur = observed,
        }
    }
}

/// Maximal matching of a **symmetric** graph. Returns `match_of[v]` = the
/// partner of `v`, or `u32::MAX` if unmatched. Self-loops never match.
/// Deterministic in `seed`.
pub fn maximal_matching(g: &CsrGraph, seed: u64) -> Vec<u32> {
    let n = g.num_vertices();
    let match_of: Vec<std::sync::atomic::AtomicU32> = (0..n)
        .map(|_| std::sync::atomic::AtomicU32::new(UNMATCHED))
        .collect();
    // Live edges as canonical (u < v) pairs.
    let mut live: Vec<(VertexId, VertexId)> = (0..n as VertexId)
        .flat_map(|u| {
            g.neighbors(u)
                .iter()
                .filter(move |&&v| u < v)
                .map(move |&v| (u, v))
        })
        .collect();
    let mut round = 0u64;
    while !live.is_empty() {
        // Priority of each live edge this round; min per endpoint.
        let best: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
        let prio = |u: VertexId, v: VertexId| {
            // Never u64::MAX, so a live edge always registers a priority.
            splitmix64(seed ^ round.rotate_left(32) ^ ((u as u64) << 32 | v as u64)) >> 1
        };
        live.par_iter().for_each(|&(u, v)| {
            let p = prio(u, v);
            write_min_u64(&best[u as usize], p);
            write_min_u64(&best[v as usize], p);
        });
        // An edge that is the minimum at both endpoints matches; the two
        // endpoints cannot be claimed by any other minimum edge this
        // round, so plain stores suffice.
        live.par_iter().for_each(|&(u, v)| {
            let p = prio(u, v);
            if best[u as usize].load(Ordering::Relaxed) == p
                && best[v as usize].load(Ordering::Relaxed) == p
            {
                match_of[u as usize].store(v, Ordering::Relaxed);
                match_of[v as usize].store(u, Ordering::Relaxed);
            }
        });
        // Drop matched-endpoint edges.
        live = live
            .into_par_iter()
            .filter(|&(u, v)| {
                match_of[u as usize].load(Ordering::Relaxed) == UNMATCHED
                    && match_of[v as usize].load(Ordering::Relaxed) == UNMATCHED
            })
            .collect();
        round += 1;
        assert!(round <= 64 + n as u64, "matching failed to converge");
    }
    match_of
        .into_iter()
        .map(std::sync::atomic::AtomicU32::into_inner)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_graph::{Edge, EdgeList};

    fn undirected(pairs: &[(u32, u32)], n: usize) -> CsrGraph {
        let edges: Vec<Edge> = pairs
            .iter()
            .flat_map(|&(u, v)| [Edge::unit(u, v), Edge::unit(v, u)])
            .collect();
        CsrGraph::from_edge_list(&EdgeList::new(n, edges).unwrap())
    }

    /// Validity: symmetric partners, partners are real edges, no self-match.
    fn assert_valid_matching(g: &CsrGraph, m: &[u32]) {
        for v in 0..g.num_vertices() as u32 {
            let p = m[v as usize];
            if p != UNMATCHED {
                assert_ne!(p, v, "self-match at {v}");
                assert_eq!(m[p as usize], v, "asymmetric match {v}<->{p}");
                assert!(g.neighbors(v).contains(&p), "matched non-edge {v}-{p}");
            }
        }
    }

    /// Maximality: every edge has at least one matched endpoint.
    fn assert_maximal(g: &CsrGraph, m: &[u32]) {
        for u in 0..g.num_vertices() as u32 {
            for &v in g.neighbors(u) {
                if u != v {
                    assert!(
                        m[u as usize] != UNMATCHED || m[v as usize] != UNMATCHED,
                        "edge {u}-{v} uncovered"
                    );
                }
            }
        }
    }

    #[test]
    fn single_edge_matches() {
        let g = undirected(&[(0, 1)], 2);
        let m = maximal_matching(&g, 1);
        assert_eq!(m, vec![1, 0]);
    }

    #[test]
    fn path_of_three_matches_one_edge() {
        let g = undirected(&[(0, 1), (1, 2)], 3);
        let m = maximal_matching(&g, 1);
        assert_valid_matching(&g, &m);
        assert_maximal(&g, &m);
        let matched = m.iter().filter(|&&p| p != UNMATCHED).count();
        assert_eq!(matched, 2); // exactly one edge
    }

    #[test]
    fn valid_and_maximal_on_random_graphs() {
        for seed in [1u64, 7, 23] {
            let el = gee_gen::erdos_renyi_gnm(400, 2400, seed).symmetrized();
            let g = CsrGraph::from_edge_list(&el);
            let m = maximal_matching(&g, seed);
            assert_valid_matching(&g, &m);
            assert_maximal(&g, &m);
        }
    }

    #[test]
    fn valid_on_skewed_graph() {
        let el = gee_gen::rmat(11, 20_000, Default::default(), 3).symmetrized();
        let g = CsrGraph::from_edge_list(&el);
        let m = maximal_matching(&g, 5);
        assert_valid_matching(&g, &m);
        assert_maximal(&g, &m);
    }

    #[test]
    fn self_loops_never_match() {
        let el = EdgeList::new(
            2,
            vec![Edge::unit(0, 0), Edge::unit(0, 1), Edge::unit(1, 0)],
        )
        .unwrap();
        let g = CsrGraph::from_edge_list(&el);
        let m = maximal_matching(&g, 3);
        assert_eq!(m, vec![1, 0]);
    }

    #[test]
    fn deterministic_in_seed() {
        let el = gee_gen::erdos_renyi_gnm(200, 1000, 9).symmetrized();
        let g = CsrGraph::from_edge_list(&el);
        assert_eq!(maximal_matching(&g, 42), maximal_matching(&g, 42));
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::build(3, &[], false);
        assert_eq!(maximal_matching(&g, 0), vec![UNMATCHED; 3]);
    }

    #[test]
    fn perfect_matching_on_disjoint_edges() {
        let g = undirected(&[(0, 1), (2, 3), (4, 5)], 6);
        let m = maximal_matching(&g, 11);
        assert!(m.iter().all(|&p| p != UNMATCHED));
    }
}
