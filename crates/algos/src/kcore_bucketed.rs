//! k-core decomposition via Julienne-style buckets — peel vertices in
//! degree-priority order instead of scanning all vertices per level as
//! [`crate::kcore`] does.
//!
//! Each vertex starts in the bucket of its degree. Buckets are extracted
//! in increasing order; extracting bucket `k` finalizes `core = k` for its
//! members, decrements the induced degree of their unfinalized neighbors
//! in parallel, and rebins each affected neighbor to `max(degree, k)` —
//! the clamping that makes bucket ids monotone. Work is
//! O(|E| + |V| log |V|)-ish versus the level-scan's O(|V| · k_max).

use std::sync::atomic::{AtomicU32, Ordering};

use gee_graph::{CsrGraph, VertexId};
use gee_ligra::{BucketOrder, Buckets};
use rayon::prelude::*;

/// Core number of every vertex of a **symmetric** graph (peeling on
/// out-degree, which equals degree for symmetric inputs). Produces the
/// same result as [`crate::kcore::kcore`].
pub fn kcore_bucketed(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    let degree: Vec<AtomicU32> = (0..n as VertexId)
        .map(|v| AtomicU32::new(g.out_degree(v) as u32))
        .collect();
    let mut core = vec![0u32; n];
    let mut finalized = vec![false; n];
    let mut buckets = Buckets::new(n, BucketOrder::Increasing, |v| {
        Some(u64::from(degree[v as usize].load(Ordering::Relaxed)))
    });

    while let Some(bucket) = buckets.next_bucket() {
        let k = bucket.id as u32;
        for &v in &bucket.vertices {
            core[v as usize] = k;
            finalized[v as usize] = true;
        }
        // Parallel decrement of unfinalized neighbors, clamped at k so a
        // vertex's bucket never drops below the current peeling level.
        let affected: Vec<VertexId> = bucket
            .vertices
            .par_iter()
            .flat_map_iter(|&v| {
                g.neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&t| !finalized[t as usize])
                    .inspect(|&t| {
                        let _ = degree[t as usize].fetch_update(
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                            |d| (d > k).then(|| d - 1),
                        );
                    })
            })
            .collect();
        // Rebin each affected neighbor from its *final* degree this round;
        // Buckets::update_bucket ignores moves to the current bucket, so
        // duplicate entries in `affected` are cheap.
        for t in affected {
            let d = degree[t as usize].load(Ordering::Relaxed).max(k);
            buckets.update_bucket(t, u64::from(d));
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_graph::{Edge, EdgeList};

    fn undirected(pairs: &[(u32, u32)], n: usize) -> CsrGraph {
        let edges: Vec<Edge> = pairs
            .iter()
            .flat_map(|&(u, v)| [Edge::unit(u, v), Edge::unit(v, u)])
            .collect();
        CsrGraph::from_edge_list(&EdgeList::new(n, edges).unwrap())
    }

    #[test]
    fn triangle_with_tail() {
        let g = undirected(&[(0, 1), (1, 2), (0, 2), (2, 3)], 4);
        assert_eq!(kcore_bucketed(&g), vec![2, 2, 2, 1]);
    }

    #[test]
    fn clique_core_is_degree() {
        let mut pairs = Vec::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                pairs.push((u, v));
            }
        }
        let g = undirected(&pairs, 6);
        assert!(kcore_bucketed(&g).iter().all(|&c| c == 5));
    }

    #[test]
    fn two_cliques_joined_by_bridge() {
        // Two 4-cliques (core 3) joined by a single bridge edge.
        let mut pairs = Vec::new();
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    pairs.push((base + i, base + j));
                }
            }
        }
        pairs.push((0, 4));
        let g = undirected(&pairs, 8);
        assert!(kcore_bucketed(&g).iter().all(|&c| c == 3));
    }

    #[test]
    fn matches_level_scan_on_random_graphs() {
        for seed in [1u64, 9, 42] {
            let el = gee_gen::erdos_renyi_gnm(250, 1800, seed).symmetrized();
            let g = CsrGraph::from_edge_list(&el);
            assert_eq!(kcore_bucketed(&g), crate::kcore::kcore(&g), "seed {seed}");
        }
    }

    #[test]
    fn matches_level_scan_on_skewed_graph() {
        let el = gee_gen::rmat(12, 8 << 12, Default::default(), 77).symmetrized();
        let g = CsrGraph::from_edge_list(&el);
        assert_eq!(kcore_bucketed(&g), crate::kcore::kcore(&g));
    }

    #[test]
    fn isolated_vertices_core_zero() {
        let g = undirected(&[(0, 1)], 5);
        let core = kcore_bucketed(&g);
        assert_eq!(&core[2..], &[0, 0, 0]);
        assert_eq!(core[0], 1);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::build(0, &[], false);
        assert!(kcore_bucketed(&g).is_empty());
    }
}
