//! Reference graph algorithms on the Ligra-style engine.
//!
//! §II of the paper: "[the edgeMap/vertexMap interface] captures almost all
//! modern graph algorithms, including PageRank, Connected Components, and
//! Betweenness Centrality. The frontier subset enables search-style
//! algorithms like breadth-first search."
//!
//! These implementations exist to validate the engine substrate the GEE
//! port runs on — each has a serial oracle in its tests — and to serve as
//! working examples of the engine API.

pub mod bc;
pub mod bfs;
pub mod cc;
pub mod coloring;
pub mod delta_stepping;
pub mod densest;
pub mod diameter;
pub mod dominating_set;
pub mod kcore;
pub mod kcore_bucketed;
pub mod label_prop;
pub mod matching;
pub mod mis;
pub mod pagerank;
pub mod radii;
pub mod sssp;
pub mod triangles;

pub use bc::betweenness;
pub use bfs::{bfs, bfs_distances};
pub use cc::connected_components;
pub use coloring::color;
pub use delta_stepping::{delta_stepping, suggest_delta};
pub use densest::{densest_subgraph, DensestResult};
pub use diameter::{double_sweep_diameter, DiameterEstimate};
pub use dominating_set::dominating_set;
pub use kcore::kcore;
pub use kcore_bucketed::kcore_bucketed;
pub use label_prop::label_propagation;
pub use matching::maximal_matching;
pub use mis::maximal_independent_set;
pub use pagerank::{pagerank, PageRankOptions};
pub use radii::radii_estimate;
pub use sssp::sssp;
pub use triangles::triangle_count;
