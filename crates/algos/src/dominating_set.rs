//! Greedy approximate dominating set on **decreasing** buckets — the
//! lazy-greedy pattern of Julienne's approximate set cover, specialized
//! to the domination instance (every vertex covers itself and its
//! neighbors; greedy gives the classic (1 + ln Δ)-approximation).
//!
//! Buckets are keyed by *claimed* coverage and popped largest-first. The
//! pop is validated lazily: if a vertex's true current coverage fell
//! below its bucket (because neighbors were covered in the meantime) it
//! is re-binned instead of taken — this lazy re-evaluation is exactly
//! what makes greedy set cover efficient, and [`gee_ligra::Buckets`]'s
//! stale-entry filtering implements it for free.

use gee_graph::{CsrGraph, VertexId};
use gee_ligra::{BucketOrder, Buckets};

/// Coverage of `v` = 1 (itself, if uncovered) + uncovered neighbors.
fn coverage(g: &CsrGraph, covered: &[bool], v: VertexId) -> u64 {
    let own = u64::from(!covered[v as usize]);
    own + g
        .neighbors(v)
        .iter()
        .filter(|&&t| t != v && !covered[t as usize])
        .count() as u64
}

/// Greedy dominating set of a **symmetric** graph: returns the chosen
/// vertex set (every vertex is in it or adjacent to it).
pub fn dominating_set(g: &CsrGraph) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut covered = vec![false; n];
    let mut chosen = Vec::new();
    let mut remaining = n;
    // Initial bucket = degree + 1 (all vertices uncovered).
    let mut buckets = Buckets::new(n, BucketOrder::Decreasing, |v| {
        Some(g.out_degree(v) as u64 + 1)
    });
    while remaining > 0 {
        let bucket = buckets
            .next_bucket()
            .expect("uncovered vertices remain, so some candidate must too");
        for v in bucket.vertices {
            let cov = coverage(g, &covered, v);
            if cov == 0 {
                continue; // contributes nothing; drop from candidacy
            }
            if cov < bucket.id {
                // Stale claim: its neighborhood was covered since it was
                // binned. Lazy-greedy re-bins at the true value.
                buckets.update_bucket(v, cov);
                continue;
            }
            // cov == bucket.id (cov can never exceed the claim): no other
            // candidate can beat it, take it greedily.
            chosen.push(v);
            if !covered[v as usize] {
                covered[v as usize] = true;
                remaining -= 1;
            }
            for &t in g.neighbors(v) {
                if !covered[t as usize] {
                    covered[t as usize] = true;
                    remaining -= 1;
                }
            }
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_graph::{Edge, EdgeList};

    fn undirected(pairs: &[(u32, u32)], n: usize) -> CsrGraph {
        let edges: Vec<Edge> = pairs
            .iter()
            .flat_map(|&(u, v)| [Edge::unit(u, v), Edge::unit(v, u)])
            .collect();
        CsrGraph::from_edge_list(&EdgeList::new(n, edges).unwrap())
    }

    fn assert_dominating(g: &CsrGraph, ds: &[u32]) {
        let mut covered = vec![false; g.num_vertices()];
        for &v in ds {
            covered[v as usize] = true;
            for &t in g.neighbors(v) {
                covered[t as usize] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "set does not dominate");
    }

    #[test]
    fn star_graph_needs_one_vertex() {
        let pairs: Vec<(u32, u32)> = (1..8).map(|v| (0, v)).collect();
        let g = undirected(&pairs, 8);
        let ds = dominating_set(&g);
        assert_eq!(ds, vec![0]);
    }

    #[test]
    fn isolated_vertices_must_all_be_chosen() {
        let g = undirected(&[(0, 1)], 4);
        let mut ds = dominating_set(&g);
        ds.sort_unstable();
        assert_dominating(&g, &ds);
        assert!(ds.contains(&2) && ds.contains(&3));
    }

    #[test]
    fn path_graph_greedy_is_small() {
        // Path of 9: optimum is 3 centers; greedy must dominate with ≤ 4.
        let pairs: Vec<(u32, u32)> = (0..8).map(|v| (v, v + 1)).collect();
        let g = undirected(&pairs, 9);
        let ds = dominating_set(&g);
        assert_dominating(&g, &ds);
        assert!(ds.len() <= 4, "greedy used {} centers", ds.len());
    }

    #[test]
    fn dominates_random_graphs() {
        for seed in [3u64, 13, 31] {
            let el = gee_gen::erdos_renyi_gnm(300, 1500, seed).symmetrized();
            let g = CsrGraph::from_edge_list(&el);
            let ds = dominating_set(&g);
            assert_dominating(&g, &ds);
            // Greedy on a dense-ish random graph is far below n.
            assert!(ds.len() < 150, "{} of 300 chosen", ds.len());
        }
    }

    #[test]
    fn dominates_skewed_graph_cheaply() {
        let el = gee_gen::rmat(10, 10_000, Default::default(), 7).symmetrized();
        let g = CsrGraph::from_edge_list(&el);
        let ds = dominating_set(&g);
        assert_dominating(&g, &ds);
        // Hubs cover most of an R-MAT graph; the set must exploit that.
        assert!(ds.len() < g.num_vertices() / 2);
    }

    #[test]
    fn clique_needs_one() {
        let mut pairs = Vec::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                pairs.push((u, v));
            }
        }
        let g = undirected(&pairs, 6);
        assert_eq!(dominating_set(&g).len(), 1);
    }

    #[test]
    fn empty_graph_chooses_everyone() {
        let g = CsrGraph::build(5, &[], false);
        let mut ds = dominating_set(&g);
        ds.sort_unstable();
        assert_eq!(ds, vec![0, 1, 2, 3, 4]);
    }
}
