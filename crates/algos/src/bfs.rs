//! Frontier-based parallel BFS — the canonical Ligra program.

use std::sync::atomic::{AtomicU32, Ordering};

use gee_graph::{CsrGraph, VertexId, Weight};
use gee_ligra::{edge_map, EdgeMapFn, EdgeMapOptions, VertexSubset};

/// Sentinel for "unreached".
pub const UNREACHED: u32 = u32::MAX;

struct BfsStep<'a> {
    parent: &'a [AtomicU32],
}

impl EdgeMapFn for BfsStep<'_> {
    fn update(&self, s: VertexId, d: VertexId, _w: Weight) -> bool {
        // Single-writer context: plain check-and-set.
        if self.parent[d as usize].load(Ordering::Relaxed) == UNREACHED {
            self.parent[d as usize].store(s, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn update_atomic(&self, s: VertexId, d: VertexId, _w: Weight) -> bool {
        // CAS so exactly one in-edge claims each destination per round.
        self.parent[d as usize]
            .compare_exchange(UNREACHED, s, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }

    fn cond(&self, d: VertexId) -> bool {
        self.parent[d as usize].load(Ordering::Relaxed) == UNREACHED
    }
}

/// Parallel BFS from `source`. Returns the parent array (`UNREACHED` where
/// the vertex was not reached; `parent[source] == source`).
pub fn bfs(g: &CsrGraph, source: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let parent: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHED)).collect();
    parent[source as usize].store(source, Ordering::Relaxed);
    let step = BfsStep { parent: &parent };
    let mut frontier = VertexSubset::single(n, source);
    while !frontier.is_empty() {
        frontier = edge_map(g, &frontier, &step, EdgeMapOptions::default());
    }
    parent.into_iter().map(|a| a.into_inner()).collect()
}

/// Level-synchronous BFS distances (`u32::MAX` = unreached).
pub fn bfs_distances(g: &CsrGraph, source: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let parent: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHED)).collect();
    parent[source as usize].store(source, Ordering::Relaxed);
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHED)).collect();
    dist[source as usize].store(0, Ordering::Relaxed);
    let step = BfsStep { parent: &parent };
    let mut frontier = VertexSubset::single(n, source);
    let mut level = 0u32;
    while !frontier.is_empty() {
        frontier = edge_map(g, &frontier, &step, EdgeMapOptions::default());
        level += 1;
        gee_ligra::vertex_map(&frontier, |v| {
            dist[v as usize].store(level, Ordering::Relaxed)
        });
    }
    dist.into_iter().map(|a| a.into_inner()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_graph::{Edge, EdgeList};

    fn serial_bfs_dist(g: &CsrGraph, src: u32) -> Vec<u32> {
        let mut dist = vec![UNREACHED; g.num_vertices()];
        let mut q = std::collections::VecDeque::new();
        dist[src as usize] = 0;
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            for &v in g.neighbors(u) {
                if dist[v as usize] == UNREACHED {
                    dist[v as usize] = dist[u as usize] + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    #[test]
    fn path_graph_parents() {
        let el = EdgeList::new(
            4,
            vec![Edge::unit(0, 1), Edge::unit(1, 2), Edge::unit(2, 3)],
        )
        .unwrap();
        let g = CsrGraph::from_edge_list(&el);
        let p = bfs(&g, 0);
        assert_eq!(p, vec![0, 0, 1, 2]);
    }

    #[test]
    fn unreachable_vertices() {
        let el = EdgeList::new(3, vec![Edge::unit(0, 1)]).unwrap();
        let g = CsrGraph::from_edge_list(&el);
        let p = bfs(&g, 0);
        assert_eq!(p[2], UNREACHED);
    }

    #[test]
    fn distances_match_serial_on_random_graph() {
        let el = gee_gen::erdos_renyi_gnm(500, 3000, 42).symmetrized();
        let g = CsrGraph::from_edge_list(&el);
        let par = bfs_distances(&g, 0);
        let ser = serial_bfs_dist(&g, 0);
        assert_eq!(par, ser);
    }

    #[test]
    fn parent_array_is_a_valid_bfs_tree() {
        let el = gee_gen::erdos_renyi_gnm(300, 2400, 7).symmetrized();
        let g = CsrGraph::from_edge_list(&el);
        let p = bfs(&g, 5);
        let d = serial_bfs_dist(&g, 5);
        for v in 0..300usize {
            if p[v] == UNREACHED {
                assert_eq!(d[v], UNREACHED);
            } else if v != 5 {
                // Parent must be exactly one level closer.
                assert_eq!(d[v], d[p[v] as usize] + 1, "vertex {v}");
                // And adjacent.
                assert!(g.neighbors(p[v]).contains(&(v as u32)));
            }
        }
    }

    #[test]
    fn star_distances() {
        let edges: Vec<Edge> = (1..64u32).map(|v| Edge::unit(0, v)).collect();
        let g = CsrGraph::from_edge_list(&EdgeList::new(64, edges).unwrap());
        let d = bfs_distances(&g, 0);
        assert_eq!(d[0], 0);
        assert!(d[1..].iter().all(|&x| x == 1));
    }
}
