//! Triangle counting by rank-ordered neighborhood intersection, parallel
//! over vertices — the standard shared-memory formulation.

use gee_graph::CsrGraph;
use rayon::prelude::*;

/// Count triangles in a **symmetric** graph (each undirected edge present
/// in both directions). Each triangle is counted exactly once using the
/// degree-ordering trick: only count (u < v < w in rank order).
pub fn triangle_count(g: &CsrGraph) -> u64 {
    let n = g.num_vertices();
    // Rank = (degree, id) — orient each edge from lower to higher rank.
    let rank = |v: u32| (g.out_degree(v), v);
    // Build forward adjacency (higher-rank neighbors only), sorted.
    let fwd: Vec<Vec<u32>> = (0..n as u32)
        .into_par_iter()
        .map(|u| {
            let ru = rank(u);
            let mut out: Vec<u32> = g
                .neighbors(u)
                .iter()
                .copied()
                .filter(|&v| v != u && rank(v) > ru)
                .collect();
            out.sort_unstable();
            out.dedup();
            out
        })
        .collect();
    (0..n as u32)
        .into_par_iter()
        .map(|u| {
            let mut local = 0u64;
            let nu = &fwd[u as usize];
            for &v in nu {
                // |fwd(u) ∩ fwd(v)| via sorted merge.
                let nv = &fwd[v as usize];
                let (mut i, mut j) = (0, 0);
                while i < nu.len() && j < nv.len() {
                    match nu[i].cmp(&nv[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            local += 1;
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
            local
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_graph::{Edge, EdgeList};

    fn undirected(pairs: &[(u32, u32)], n: usize) -> CsrGraph {
        let edges: Vec<Edge> = pairs
            .iter()
            .flat_map(|&(u, v)| [Edge::unit(u, v), Edge::unit(v, u)])
            .collect();
        CsrGraph::from_edge_list(&EdgeList::new(n, edges).unwrap())
    }

    #[test]
    fn single_triangle() {
        let g = undirected(&[(0, 1), (1, 2), (0, 2)], 3);
        assert_eq!(triangle_count(&g), 1);
    }

    #[test]
    fn square_has_none() {
        let g = undirected(&[(0, 1), (1, 2), (2, 3), (3, 0)], 4);
        assert_eq!(triangle_count(&g), 0);
    }

    #[test]
    fn clique_combinatorics() {
        let mut pairs = Vec::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                pairs.push((u, v));
            }
        }
        let g = undirected(&pairs, 6);
        assert_eq!(triangle_count(&g), 20); // C(6,3)
    }

    #[test]
    fn matches_brute_force_on_random_graph() {
        let el = gee_gen::erdos_renyi_gnm(60, 400, 9).symmetrized();
        let g = CsrGraph::from_edge_list(&el);
        // brute force over unordered triples using an adjacency set
        let n = g.num_vertices();
        let mut adj = vec![std::collections::HashSet::new(); n];
        for (u, v, _) in g.iter_edges() {
            if u != v {
                adj[u as usize].insert(v);
            }
        }
        let mut expected = 0u64;
        for a in 0..n as u32 {
            for b in (a + 1)..n as u32 {
                if !adj[a as usize].contains(&b) {
                    continue;
                }
                for c in (b + 1)..n as u32 {
                    if adj[a as usize].contains(&c) && adj[b as usize].contains(&c) {
                        expected += 1;
                    }
                }
            }
        }
        assert_eq!(triangle_count(&g), expected);
    }

    #[test]
    fn self_loops_ignored() {
        let g = undirected(&[(0, 1), (1, 2), (0, 2), (0, 0)], 3);
        assert_eq!(triangle_count(&g), 1);
    }
}
