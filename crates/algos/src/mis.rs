//! Maximal independent set via Luby's algorithm over random priorities —
//! a rootless, frontier-less parallel pattern that exercises `vertex_map`
//! and iteration-to-fixpoint on the engine.

use std::sync::atomic::{AtomicU8, Ordering};

use gee_graph::CsrGraph;
use rayon::prelude::*;

const UNDECIDED: u8 = 0;
const IN_SET: u8 = 1;
const OUT: u8 = 2;

/// Luby's MIS on a **symmetric** graph. Returns a flag per vertex (true =
/// in the set). Deterministic in `seed`.
pub fn maximal_independent_set(g: &CsrGraph, seed: u64) -> Vec<bool> {
    let n = g.num_vertices();
    let state: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(UNDECIDED)).collect();
    // Static random priorities (SplitMix64 of id ⊕ seed), distinct with
    // overwhelming probability; ties broken by id.
    let priority: Vec<u64> = (0..n as u64)
        .map(|v| {
            let mut z = v ^ seed ^ 0xD1B54A32D192ED03;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        })
        .collect();
    let pri = |v: u32| (priority[v as usize], v);
    let mut remaining = n;
    let mut rounds = 0;
    while remaining > 0 {
        rounds += 1;
        assert!(rounds <= n + 1, "MIS failed to converge");
        // Phase 1: every undecided vertex that is a local priority maximum
        // among undecided neighbors joins the set.
        let joined: Vec<u32> = (0..n as u32)
            .into_par_iter()
            .filter(|&v| {
                if state[v as usize].load(Ordering::Relaxed) != UNDECIDED {
                    return false;
                }
                g.neighbors(v).iter().all(|&u| {
                    u == v || state[u as usize].load(Ordering::Relaxed) == OUT || pri(v) > pri(u)
                })
            })
            .collect();
        if joined.is_empty() {
            // Only possible if no undecided vertex is a local max — cannot
            // happen with distinct priorities, but guard anyway.
            break;
        }
        for &v in &joined {
            state[v as usize].store(IN_SET, Ordering::Relaxed);
        }
        // Phase 2: neighbors of the new members drop out.
        let dropped: Vec<u32> = joined
            .par_iter()
            .flat_map_iter(|&v| g.neighbors(v).iter().copied().filter(move |&u| u != v))
            .filter(|&u| {
                state[u as usize]
                    .compare_exchange(UNDECIDED, OUT, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            })
            .collect();
        remaining -= joined.len() + dropped.len();
    }
    state
        .into_iter()
        .map(|s| s.into_inner() == IN_SET)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_graph::{Edge, EdgeList};

    fn undirected(pairs: &[(u32, u32)], n: usize) -> CsrGraph {
        let edges: Vec<Edge> = pairs
            .iter()
            .flat_map(|&(u, v)| [Edge::unit(u, v), Edge::unit(v, u)])
            .collect();
        CsrGraph::from_edge_list(&EdgeList::new(n, edges).unwrap())
    }

    fn verify_mis(g: &CsrGraph, mis: &[bool]) {
        // Independence: no two adjacent members.
        for (u, v, _) in g.iter_edges() {
            if u != v {
                assert!(
                    !(mis[u as usize] && mis[v as usize]),
                    "edge ({u},{v}) inside the set"
                );
            }
        }
        // Maximality: every non-member has a member neighbor.
        for v in 0..g.num_vertices() as u32 {
            if !mis[v as usize] {
                assert!(
                    g.neighbors(v).iter().any(|&u| mis[u as usize]),
                    "vertex {v} could be added"
                );
            }
        }
    }

    #[test]
    fn triangle_has_exactly_one() {
        let g = undirected(&[(0, 1), (1, 2), (0, 2)], 3);
        let mis = maximal_independent_set(&g, 1);
        assert_eq!(mis.iter().filter(|&&b| b).count(), 1);
        verify_mis(&g, &mis);
    }

    #[test]
    fn isolated_vertices_always_in() {
        let g = undirected(&[(0, 1)], 4);
        let mis = maximal_independent_set(&g, 5);
        assert!(mis[2] && mis[3]);
        verify_mis(&g, &mis);
    }

    #[test]
    fn valid_on_random_graphs() {
        for seed in 0..5u64 {
            let el = gee_gen::erdos_renyi_gnm(200, 800, seed).symmetrized();
            let g = CsrGraph::from_edge_list(&el);
            let mis = maximal_independent_set(&g, seed);
            verify_mis(&g, &mis);
        }
    }

    #[test]
    fn deterministic() {
        let el = gee_gen::erdos_renyi_gnm(100, 400, 3).symmetrized();
        let g = CsrGraph::from_edge_list(&el);
        assert_eq!(
            maximal_independent_set(&g, 9),
            maximal_independent_set(&g, 9)
        );
    }

    #[test]
    fn path_alternates_roughly() {
        let pairs: Vec<(u32, u32)> = (0..19).map(|i| (i, i + 1)).collect();
        let g = undirected(&pairs, 20);
        let mis = maximal_independent_set(&g, 7);
        verify_mis(&g, &mis);
        // A maximal independent set on P20 has at least 7 members.
        assert!(mis.iter().filter(|&&b| b).count() >= 7);
    }
}
