//! Deterministic workload generators for the GEE reproduction.
//!
//! The paper's evaluation uses two workload families:
//!
//! * **SNAP social graphs** (Table I, Figures 2–3). These are unavailable
//!   offline, so the bench harness substitutes [`rmat()`] graphs whose
//!   `(n, s)` shape matches each SNAP graph — R-MAT's skewed degree
//!   distribution is the standard synthetic stand-in for social networks.
//! * **Erdős–Rényi graphs** with growing edge counts (Figure 4), provided by
//!   [`er::erdos_renyi_gnm`].
//!
//! For *statistical* validation (the embedding actually separates
//! communities), [`sbm()`] generates stochastic block model graphs with known
//! ground-truth labels.
//!
//! Everything takes an explicit `u64` seed and is reproducible run-to-run.
//! Large generators are parallelized per-chunk with independent
//! seed-derived streams, so output is deterministic regardless of thread
//! count.

pub mod config_model;
pub mod er;
pub mod labels;
pub mod pa;
pub mod rmat;
pub mod sbm;
pub mod weights;
pub mod ws;

pub use config_model::{config_model, config_model_simple, power_law_degrees};
pub use er::{erdos_renyi_gnm, erdos_renyi_gnp};
pub use labels::{full_labels, random_labels, subsample_labels, LabelSpec};
pub use pa::preferential_attachment;
pub use rmat::{rmat, RmatParams};
pub use sbm::{sbm, SbmParams};
pub use weights::{assign_weights, assign_weights_symmetric, WeightDistribution};
pub use ws::{watts_strogatz, WsParams};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derive an independent RNG for stream `stream` of a run seeded by `seed`.
///
/// Uses SplitMix64 over (seed, stream) so chunked parallel generation is
/// deterministic and streams are decorrelated.
pub(crate) fn stream_rng(seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix64(seed ^ splitmix64(stream)))
}

/// SplitMix64 mixer — the standard seed-expansion function.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn stream_rngs_decorrelated() {
        use rand::Rng;
        let a: u64 = stream_rng(42, 0).gen();
        let b: u64 = stream_rng(42, 1).gen();
        assert_ne!(a, b);
    }
}
