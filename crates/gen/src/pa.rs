//! Preferential attachment (Barabási–Albert) graphs.
//!
//! A second heavy-tailed family besides R-MAT, used in extension benches to
//! show GEE-Ligra's edge-parallel scaling is robust to extreme hub vertices
//! (a hub's edge list is one sequential task under `edgeMapDense`-forward
//! scheduling, the load-imbalance worst case the paper's §III discusses).

use gee_graph::{Edge, EdgeList};
use rand::Rng;

use crate::stream_rng;

/// Barabási–Albert: start from a small seed clique, then each new vertex
/// attaches `m_per_vertex` edges to existing vertices with probability
/// proportional to degree (implemented with the repeated-endpoint trick:
/// sample uniformly from the endpoint list built so far).
pub fn preferential_attachment(n: usize, m_per_vertex: usize, seed: u64) -> EdgeList {
    assert!(
        m_per_vertex >= 1,
        "each vertex must attach at least one edge"
    );
    let m0 = (m_per_vertex + 1).min(n);
    let mut rng = stream_rng(seed, 0);
    let mut edges: Vec<Edge> = Vec::new();
    // Endpoint pool: each edge contributes both endpoints, so sampling
    // uniformly from the pool is degree-proportional sampling.
    let mut pool: Vec<u32> = Vec::new();
    // Seed clique on vertices 0..m0.
    for u in 0..m0 as u32 {
        for v in (u + 1)..m0 as u32 {
            edges.push(Edge::unit(u, v));
            pool.push(u);
            pool.push(v);
        }
    }
    for v in m0 as u32..n as u32 {
        let mut chosen = Vec::with_capacity(m_per_vertex);
        let mut guard = 0;
        while chosen.len() < m_per_vertex && guard < 100 * m_per_vertex {
            guard += 1;
            let t = if pool.is_empty() {
                0
            } else {
                pool[rng.gen_range(0..pool.len())]
            };
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            edges.push(Edge::unit(v, t));
            pool.push(v);
            pool.push(t);
        }
    }
    EdgeList::new_unchecked(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_graph::{stats::graph_stats, CsrGraph};

    #[test]
    fn edge_count() {
        let n = 500;
        let m = 3;
        let el = preferential_attachment(n, m, 1);
        let m0 = m + 1;
        let expected = m0 * (m0 - 1) / 2 + (n - m0) * m;
        assert_eq!(el.num_edges(), expected);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            preferential_attachment(100, 2, 9),
            preferential_attachment(100, 2, 9)
        );
    }

    #[test]
    fn produces_hubs() {
        let el = preferential_attachment(2000, 2, 3).symmetrized();
        let g = CsrGraph::from_edge_list(&el);
        let s = graph_stats(&g);
        assert!(
            s.max_degree as f64 > 5.0 * s.avg_degree,
            "expected hubs, max {} avg {}",
            s.max_degree,
            s.avg_degree
        );
    }

    #[test]
    fn no_self_loops() {
        let el = preferential_attachment(300, 3, 5);
        assert!(el.edges().iter().all(|e| e.u != e.v));
    }

    #[test]
    fn tiny_graphs() {
        let el = preferential_attachment(2, 1, 1);
        assert_eq!(el.num_vertices(), 2);
        assert!(el.num_edges() >= 1);
    }
}
