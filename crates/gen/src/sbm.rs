//! Stochastic block model graphs with ground-truth community labels.
//!
//! GEE's statistical claim (it converges to the spectral embedding, which is
//! consistent under random dot product graphs / SBMs) is validated on these:
//! the embedding of an SBM with strong within-block connectivity must
//! cluster by block. The evaluation crate's ARI tests and the community
//! pipeline example both consume this generator.

use gee_graph::{Edge, EdgeList};
use rand::Rng;

use crate::stream_rng;

/// Parameters of a K-block planted-partition SBM.
#[derive(Debug, Clone)]
pub struct SbmParams {
    /// Number of vertices per block (blocks may differ in size).
    pub block_sizes: Vec<usize>,
    /// Within-block edge probability.
    pub p_in: f64,
    /// Between-block edge probability.
    pub p_out: f64,
}

impl SbmParams {
    /// Equal-sized blocks convenience constructor.
    pub fn balanced(num_blocks: usize, block_size: usize, p_in: f64, p_out: f64) -> Self {
        SbmParams {
            block_sizes: vec![block_size; num_blocks],
            p_in,
            p_out,
        }
    }

    /// Total vertex count.
    pub fn num_vertices(&self) -> usize {
        self.block_sizes.iter().sum()
    }

    fn validate(&self) {
        assert!(!self.block_sizes.is_empty(), "need at least one block");
        assert!(
            (0.0..=1.0).contains(&self.p_in),
            "p_in must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&self.p_out),
            "p_out must be a probability"
        );
    }
}

/// Output of [`sbm`]: the (undirected, symmetrized) graph and the
/// ground-truth block of every vertex.
#[derive(Debug, Clone)]
pub struct SbmGraph {
    /// Symmetrized edge list (each undirected edge appears in both
    /// directions, the encoding §II of the paper uses).
    pub edges: EdgeList,
    /// Ground-truth block id per vertex, in `0..block_sizes.len()`.
    pub truth: Vec<u32>,
}

/// Sample an SBM. Undirected edges are sampled once per unordered pair
/// (geometric skipping within each block pair) and then symmetrized.
pub fn sbm(params: &SbmParams, seed: u64) -> SbmGraph {
    params.validate();
    let k = params.block_sizes.len();
    // Block start offsets and truth labels.
    let mut starts = Vec::with_capacity(k + 1);
    let mut acc = 0usize;
    for &b in &params.block_sizes {
        starts.push(acc);
        acc += b;
    }
    starts.push(acc);
    let n = acc;
    let mut truth = vec![0u32; n];
    for (b, w) in params.block_sizes.iter().enumerate() {
        #[allow(clippy::needless_range_loop)] // v is a vertex id, not just an index
        for v in starts[b]..starts[b] + w {
            truth[v] = b as u32;
        }
    }

    let mut edges: Vec<Edge> = Vec::new();
    let mut stream = 0u64;
    for bi in 0..k {
        for bj in bi..k {
            let p = if bi == bj { params.p_in } else { params.p_out };
            let mut rng = stream_rng(seed, stream);
            stream += 1;
            if p <= 0.0 {
                continue;
            }
            // Candidate unordered pairs between block bi and bj.
            let (ri, rj) = (starts[bi]..starts[bi + 1], starts[bj]..starts[bj + 1]);
            let total: u128 = if bi == bj {
                let s = ri.len() as u128;
                s * (s - 1) / 2
            } else {
                ri.len() as u128 * rj.len() as u128
            };
            let mut slot: u128 = 0;
            let log1mp = (1.0 - p).ln();
            while slot < total {
                if p < 1.0 {
                    let r: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    slot = slot.saturating_add((r.ln() / log1mp).floor() as u128);
                    if slot >= total {
                        break;
                    }
                }
                let (u, v) = if bi == bj {
                    // Decode triangular index: slot -> (row, col), row < col.
                    let s = ri.len() as u128;
                    let (row, col) = decode_triangular(slot, s);
                    (
                        (starts[bi] + row as usize) as u32,
                        (starts[bi] + col as usize) as u32,
                    )
                } else {
                    let cols = rj.len() as u128;
                    let row = (slot / cols) as usize;
                    let col = (slot % cols) as usize;
                    ((starts[bi] + row) as u32, (starts[bj] + col) as u32)
                };
                edges.push(Edge::unit(u, v));
                slot += 1;
            }
        }
    }
    let el = EdgeList::new_unchecked(n, edges).symmetrized();
    SbmGraph { edges: el, truth }
}

/// Decode linear index `t` into the strict upper triangle of an `s × s`
/// matrix, row-major: returns `(row, col)` with `row < col`.
fn decode_triangular(t: u128, s: u128) -> (u128, u128) {
    // Row r owns (s-1-r) entries; find r by solving the quadratic.
    // entries before row r: r*s - r*(r+1)/2
    let tf = t as f64;
    let sf = s as f64;
    let mut r = ((2.0 * sf - 1.0 - ((2.0 * sf - 1.0).powi(2) - 8.0 * tf).max(0.0).sqrt()) / 2.0)
        .floor() as u128;
    // Guard against FP error: adjust r so t falls inside row r's span.
    let before = |r: u128| r * s - r * (r + 1) / 2;
    while r > 0 && before(r) > t {
        r -= 1;
    }
    while before(r + 1) <= t {
        r += 1;
    }
    let c = r + 1 + (t - before(r));
    (r, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_labels_match_blocks() {
        let g = sbm(&SbmParams::balanced(3, 10, 0.5, 0.01), 1);
        assert_eq!(g.truth.len(), 30);
        assert_eq!(g.truth[0], 0);
        assert_eq!(g.truth[10], 1);
        assert_eq!(g.truth[29], 2);
    }

    #[test]
    fn deterministic() {
        let p = SbmParams::balanced(2, 20, 0.3, 0.05);
        assert_eq!(sbm(&p, 7).edges, sbm(&p, 7).edges);
    }

    #[test]
    fn symmetrized_output() {
        let g = sbm(&SbmParams::balanced(2, 15, 0.4, 0.1), 3);
        let edges = g.edges.edges();
        for e in edges {
            assert!(
                edges.iter().any(|f| f.u == e.v && f.v == e.u),
                "missing reverse of {e:?}"
            );
        }
    }

    #[test]
    fn assortative_structure() {
        // With p_in >> p_out most edges must be within-block.
        let g = sbm(&SbmParams::balanced(4, 50, 0.3, 0.01), 11);
        let within = g
            .edges
            .edges()
            .iter()
            .filter(|e| g.truth[e.u as usize] == g.truth[e.v as usize])
            .count();
        assert!(
            within * 2 > g.edges.num_edges(),
            "expected mostly within-block edges: {within}/{}",
            g.edges.num_edges()
        );
    }

    #[test]
    fn expected_edge_count() {
        let b = 100usize;
        let p_in = 0.2;
        let g = sbm(&SbmParams::balanced(2, b, p_in, 0.0), 5);
        // Each block: C(100,2) * 0.2 expected undirected edges, ×2 blocks,
        // ×2 directions after symmetrization.
        let expected = 2.0 * (b * (b - 1) / 2) as f64 * p_in * 2.0;
        let got = g.edges.num_edges() as f64;
        let sd = (2.0 * (b * (b - 1) / 2) as f64 * p_in * (1.0 - p_in)).sqrt() * 2.0;
        assert!(
            (got - expected).abs() < 6.0 * sd,
            "got {got}, expected {expected}±{sd}"
        );
    }

    #[test]
    fn p_in_one_is_complete_blocks() {
        let g = sbm(&SbmParams::balanced(1, 10, 1.0, 0.0), 2);
        assert_eq!(g.edges.num_edges(), 10 * 9); // complete, both directions
    }

    #[test]
    fn unbalanced_blocks() {
        let g = sbm(
            &SbmParams {
                block_sizes: vec![5, 15],
                p_in: 1.0,
                p_out: 0.0,
            },
            4,
        );
        assert_eq!(g.edges.num_vertices(), 20);
        assert_eq!(g.edges.num_edges(), 5 * 4 + 15 * 14);
    }

    #[test]
    fn triangular_decode_roundtrip() {
        let s = 17u128;
        let mut t = 0u128;
        for r in 0..s {
            for c in (r + 1)..s {
                assert_eq!(decode_triangular(t, s), (r, c), "at t={t}");
                t += 1;
            }
        }
    }
}
