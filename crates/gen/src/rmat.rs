//! R-MAT recursive-matrix graphs (Chakrabarti, Zhan, Faloutsos 2004).
//!
//! The benchmark harness uses R-MAT as the stand-in for the paper's SNAP
//! social graphs (Table I): with the canonical `(a, b, c) = (0.57, 0.19,
//! 0.19)` parameters R-MAT produces the heavy-tailed degree distributions
//! that make social-graph traversal cache-hostile, which is the property
//! that stresses the atomics and memory system in the paper's experiments.

use rayon::prelude::*;

use gee_graph::{Edge, EdgeList};
use rand::Rng;

use crate::stream_rng;

/// R-MAT quadrant probabilities. `d` is implied (`1 - a - b - c`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Per-level probability perturbation (Graph500-style noise), 0.0–0.5.
    pub noise: f64,
}

impl Default for RmatParams {
    /// Graph500/social-network canonical parameters.
    fn default() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.1,
        }
    }
}

impl RmatParams {
    /// The implied bottom-right probability.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }

    fn validate(&self) {
        assert!(
            self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0,
            "probabilities must be non-negative"
        );
        assert!(self.d() >= -1e-12, "a + b + c must be <= 1");
        assert!(
            (0.0..=0.5).contains(&self.noise),
            "noise must be in [0, 0.5]"
        );
    }
}

/// Generate `m` directed edges on `2^scale` vertices.
///
/// Deterministic in `seed`, independent of thread count (fixed chunking with
/// derived streams). Duplicate edges and self-loops are kept, as in Graph500
/// reference generators; GEE treats each occurrence as a distinct edge.
pub fn rmat(scale: u32, m: usize, params: RmatParams, seed: u64) -> EdgeList {
    params.validate();
    assert!(scale <= 31, "scale must fit u32 vertex ids");
    let n = 1usize << scale;
    const CHUNK: usize = 1 << 15;
    let chunks = m.div_ceil(CHUNK).max(1);
    let edges: Vec<Edge> = (0..chunks)
        .into_par_iter()
        .flat_map_iter(|ci| {
            let lo = ci * CHUNK;
            let hi = ((ci + 1) * CHUNK).min(m);
            let mut rng = stream_rng(seed, ci as u64);
            (lo..hi).map(move |_| sample_edge(scale, params, &mut rng))
        })
        .collect();
    EdgeList::new_unchecked(n, edges)
}

fn sample_edge<R: Rng>(scale: u32, p: RmatParams, rng: &mut R) -> Edge {
    let mut u: u32 = 0;
    let mut v: u32 = 0;
    for _ in 0..scale {
        // Perturb quadrant probabilities per level to break the exact
        // self-similarity (Graph500 "noise" trick, keeps degree tail heavy
        // without striping).
        let jitter = |x: f64, r: &mut R| -> f64 {
            if p.noise > 0.0 {
                x * (1.0 - p.noise + 2.0 * p.noise * r.gen::<f64>())
            } else {
                x
            }
        };
        let a = jitter(p.a, rng);
        let b = jitter(p.b, rng);
        let c = jitter(p.c, rng);
        let d = jitter(p.d().max(0.0), rng);
        let total = a + b + c + d;
        let r = rng.gen::<f64>() * total;
        u <<= 1;
        v <<= 1;
        if r < a {
            // top-left: no bits set
        } else if r < a + b {
            v |= 1;
        } else if r < a + b + c {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    Edge::unit(u, v)
}

/// Pick the smallest scale whose vertex count covers `n`, then generate `m`
/// edges — convenience for matching a Table I `(n, s)` pair.
pub fn rmat_matching(n: usize, m: usize, params: RmatParams, seed: u64) -> EdgeList {
    let scale = (usize::BITS - n.next_power_of_two().leading_zeros() - 1).max(1);
    rmat(scale, m, params, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_graph::{stats::graph_stats, CsrGraph};

    #[test]
    fn edge_count_and_range() {
        let el = rmat(10, 20_000, RmatParams::default(), 3);
        assert_eq!(el.num_edges(), 20_000);
        assert_eq!(el.num_vertices(), 1024);
        assert!(el.edges().iter().all(|e| e.u < 1024 && e.v < 1024));
    }

    #[test]
    fn deterministic() {
        let a = rmat(8, 1000, RmatParams::default(), 5);
        let b = rmat(8, 1000, RmatParams::default(), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn skewed_degrees() {
        // R-MAT should produce a max degree far above the average.
        let el = rmat(12, 1 << 16, RmatParams::default(), 7);
        let g = CsrGraph::from_edge_list(&el);
        let s = graph_stats(&g);
        assert!(
            s.max_degree as f64 > 8.0 * s.avg_degree,
            "expected heavy tail: max {} vs avg {}",
            s.max_degree,
            s.avg_degree
        );
    }

    #[test]
    fn uniform_params_not_skewed() {
        // a=b=c=d=0.25 degenerates to ER; tail should be mild.
        let p = RmatParams {
            a: 0.25,
            b: 0.25,
            c: 0.25,
            noise: 0.0,
        };
        let el = rmat(12, 1 << 16, p, 7);
        let g = CsrGraph::from_edge_list(&el);
        let s = graph_stats(&g);
        assert!((s.max_degree as f64) < 6.0 * s.avg_degree.max(1.0) + 32.0);
    }

    #[test]
    fn matching_covers_n() {
        let el = rmat_matching(1000, 5000, RmatParams::default(), 1);
        assert!(el.num_vertices() >= 1000);
        assert_eq!(el.num_edges(), 5000);
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn rejects_negative_probability() {
        rmat(
            4,
            10,
            RmatParams {
                a: -0.1,
                b: 0.5,
                c: 0.5,
                noise: 0.0,
            },
            1,
        );
    }
}
