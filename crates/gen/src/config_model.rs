//! Configuration-model graphs — sample a graph with a *prescribed degree
//! sequence* by the stub-matching construction, plus a discrete power-law
//! degree-sequence sampler.
//!
//! R-MAT approximates social-graph skew through recursive quadrant
//! splitting; the configuration model hits an exact target degree
//! sequence instead, which makes it the right workload for studying how
//! degree skew alone affects the GEE edge pass (cache misses concentrate
//! on high-degree rows of `Z`).
//!
//! Stub matching may produce self-loops and multi-edges; GEE is defined
//! over multigraphs (contributions sum per edge occurrence, §II), so they
//! are kept by default and [`config_model_simple`] erases them for
//! callers that need a simple graph.

use gee_graph::{Edge, EdgeList, VertexId};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::stream_rng;

/// Sample a multigraph with the given degree sequence by uniform stub
/// matching. The sum of `degrees` must be even (pad with a single extra
/// stub on vertex 0 otherwise — callers get an assertion instead to keep
/// the sequence exact). Output is symmetrized (both directions per edge).
pub fn config_model(degrees: &[usize], seed: u64) -> EdgeList {
    let total: usize = degrees.iter().sum();
    assert!(
        total.is_multiple_of(2),
        "degree sequence must have even sum (got {total})"
    );
    let n = degrees.len();
    let mut stubs: Vec<VertexId> = Vec::with_capacity(total);
    for (v, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(v as VertexId, d));
    }
    let mut rng = stream_rng(seed, 0x434D); // "CM"
    stubs.shuffle(&mut rng);
    let mut edges: Vec<Edge> = Vec::with_capacity(total);
    for pair in stubs.chunks_exact(2) {
        edges.push(Edge::unit(pair[0], pair[1]));
        edges.push(Edge::unit(pair[1], pair[0]));
    }
    EdgeList::new_unchecked(n, edges)
}

/// Configuration model with self-loops and duplicate undirected edges
/// removed (degree sequence then holds only approximately).
pub fn config_model_simple(degrees: &[usize], seed: u64) -> EdgeList {
    let multi = config_model(degrees, seed);
    let n = multi.num_vertices();
    let mut seen = std::collections::HashSet::new();
    let mut edges = Vec::new();
    for e in multi.edges() {
        let key = (e.u.min(e.v), e.u.max(e.v));
        if e.u != e.v && seen.insert(key) {
            edges.push(Edge::unit(key.0, key.1));
            edges.push(Edge::unit(key.1, key.0));
        }
    }
    EdgeList::new_unchecked(n, edges)
}

/// Sample `n` degrees from a discrete power law `P(d) ∝ d^-alpha` on
/// `d_min..=d_max` by inverse-CDF over the finite support, then fix the
/// parity of the sum by incrementing one vertex. `alpha ≈ 2–3` matches
/// measured social-network skew.
pub fn power_law_degrees(
    n: usize,
    alpha: f64,
    d_min: usize,
    d_max: usize,
    seed: u64,
) -> Vec<usize> {
    assert!(d_min >= 1 && d_min <= d_max, "need 1 <= d_min <= d_max");
    assert!(alpha > 0.0, "alpha must be positive");
    // Finite-support CDF.
    let weights: Vec<f64> = (d_min..=d_max).map(|d| (d as f64).powf(-alpha)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let mut rng = stream_rng(seed, 0x504C); // "PL"
    let mut degrees: Vec<usize> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            d_min + cdf.partition_point(|&c| c < u)
        })
        .collect();
    if degrees.iter().sum::<usize>() % 2 == 1 {
        degrees[0] += 1;
    }
    degrees
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_degree_sequence() {
        let degrees = vec![3, 2, 2, 1, 0, 2];
        let el = config_model(&degrees, 5);
        // Out-degree per vertex in the symmetrized list counts each stub
        // once (self-loops give two stubs on the same vertex → two
        // directed edges).
        let mut out = vec![0usize; degrees.len()];
        for e in el.edges() {
            out[e.u as usize] += 1;
        }
        assert_eq!(out, degrees);
    }

    #[test]
    #[should_panic(expected = "even sum")]
    fn odd_sum_rejected() {
        config_model(&[1, 1, 1], 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let degrees = vec![2; 40];
        let a = config_model(&degrees, 3);
        let b = config_model(&degrees, 3);
        assert!(a
            .edges()
            .iter()
            .zip(b.edges())
            .all(|(x, y)| x.u == y.u && x.v == y.v));
    }

    #[test]
    fn simple_variant_has_no_loops_or_multi_edges() {
        let degrees = power_law_degrees(200, 2.2, 1, 40, 9);
        let el = config_model_simple(&degrees, 9);
        assert!(el.edges().iter().all(|e| e.u != e.v));
        let mut keys: Vec<(u32, u32)> = el
            .edges()
            .iter()
            .filter(|e| e.u < e.v)
            .map(|e| (e.u, e.v))
            .collect();
        let before = keys.len();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), before);
    }

    #[test]
    fn power_law_sum_even_and_in_range() {
        let d = power_law_degrees(1001, 2.5, 2, 50, 17);
        assert_eq!(d.len(), 1001);
        assert_eq!(d.iter().sum::<usize>() % 2, 0);
        assert!(d.iter().all(|&x| (2..=51).contains(&x))); // +1 parity fix allowed
    }

    #[test]
    fn power_law_is_skewed() {
        // With alpha=2.5 the minimum degree dominates: more than half of
        // all vertices should sit at d_min.
        let d = power_law_degrees(5000, 2.5, 1, 100, 21);
        let at_min = d.iter().filter(|&&x| x == 1).count();
        assert!(at_min > 2500, "expected >50% at d_min, got {at_min}/5000");
        // And a heavy tail exists.
        assert!(d.iter().any(|&x| x >= 10));
    }

    #[test]
    fn regular_graph_from_constant_sequence() {
        let el = config_model(&vec![4usize; 50], 13);
        assert_eq!(el.num_edges(), 50 * 4);
    }
}
