//! Label generators matching the paper's experimental configuration:
//! "We generated the Y labels uniformly at random from [0, K = 50] for 10%
//! of nodes, which were also selected uniformly at random" (§IV).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::stream_rng;

/// Specification of the semi-supervised labeling experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelSpec {
    /// Number of classes K.
    pub num_classes: usize,
    /// Fraction of vertices that receive a label (paper: 0.10).
    pub labeled_fraction: f64,
}

impl Default for LabelSpec {
    /// The paper's configuration: K = 50, 10% labeled.
    fn default() -> Self {
        LabelSpec {
            num_classes: 50,
            labeled_fraction: 0.10,
        }
    }
}

/// Generate per-vertex labels: a uniformly random `labeled_fraction` subset
/// of vertices gets a uniform class in `0..num_classes`; the rest are
/// unknown (`None`, encoded as `-1` by the GEE crate's `Labels` type).
pub fn random_labels(n: usize, spec: LabelSpec, seed: u64) -> Vec<Option<u32>> {
    assert!(spec.num_classes >= 1, "need at least one class");
    assert!(
        (0.0..=1.0).contains(&spec.labeled_fraction),
        "labeled_fraction must be a probability"
    );
    let mut rng = stream_rng(seed, 0);
    let num_labeled = ((n as f64) * spec.labeled_fraction).round() as usize;
    let mut ids: Vec<u32> = (0..n as u32).collect();
    ids.partial_shuffle(&mut rng, num_labeled);
    let mut out = vec![None; n];
    for &v in ids.iter().take(num_labeled) {
        out[v as usize] = Some(rng.gen_range(0..spec.num_classes as u32));
    }
    out
}

/// Fully-labeled variant (used by correctness tests where every vertex must
/// contribute, and by the unsupervised-refinement warm start).
pub fn full_labels(n: usize, num_classes: usize, seed: u64) -> Vec<Option<u32>> {
    assert!(num_classes >= 1);
    let mut rng = stream_rng(seed, 1);
    (0..n)
        .map(|_| Some(rng.gen_range(0..num_classes as u32)))
        .collect()
}

/// Corrupt ground-truth labels: keep each with probability `keep`, set the
/// rest to unknown. Used to study semi-supervision strength vs embedding
/// quality (extension experiment).
pub fn subsample_labels(truth: &[u32], keep: f64, seed: u64) -> Vec<Option<u32>> {
    assert!((0.0..=1.0).contains(&keep));
    let mut rng = stream_rng(seed, 2);
    truth
        .iter()
        .map(|&t| {
            if rng.gen::<f64>() < keep {
                Some(t)
            } else {
                None
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_respected_exactly() {
        let labels = random_labels(
            1000,
            LabelSpec {
                num_classes: 5,
                labeled_fraction: 0.1,
            },
            3,
        );
        let labeled = labels.iter().filter(|l| l.is_some()).count();
        assert_eq!(labeled, 100);
    }

    #[test]
    fn classes_in_range() {
        let labels = random_labels(
            500,
            LabelSpec {
                num_classes: 7,
                labeled_fraction: 0.5,
            },
            4,
        );
        assert!(labels.iter().flatten().all(|&c| c < 7));
    }

    #[test]
    fn deterministic() {
        let s = LabelSpec::default();
        assert_eq!(random_labels(100, s, 9), random_labels(100, s, 9));
        assert_ne!(random_labels(100, s, 9), random_labels(100, s, 10));
    }

    #[test]
    fn all_classes_used_eventually() {
        let labels = random_labels(
            5000,
            LabelSpec {
                num_classes: 10,
                labeled_fraction: 1.0,
            },
            5,
        );
        let mut seen = [false; 10];
        for l in labels.iter().flatten() {
            seen[*l as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn full_labels_all_present() {
        assert!(full_labels(100, 3, 1).iter().all(|l| l.is_some()));
    }

    #[test]
    fn subsample_extremes() {
        let truth = vec![1u32; 50];
        assert!(subsample_labels(&truth, 1.0, 1).iter().all(|l| l.is_some()));
        assert!(subsample_labels(&truth, 0.0, 1).iter().all(|l| l.is_none()));
    }

    #[test]
    fn zero_fraction_labels_nothing() {
        let labels = random_labels(
            100,
            LabelSpec {
                num_classes: 5,
                labeled_fraction: 0.0,
            },
            2,
        );
        assert!(labels.iter().all(|l| l.is_none()));
    }
}
