//! Watts–Strogatz small-world graphs — a low-diameter, *low-skew* workload
//! that complements R-MAT (high skew) and Erdős–Rényi (no structure) in
//! the scaling sweeps.
//!
//! Start from a ring lattice where each vertex connects to its `k/2`
//! nearest neighbors on each side, then rewire each edge's far endpoint
//! with probability `beta` to a uniform random vertex (avoiding self-loops
//! and duplicate targets per source where possible). `beta = 0` keeps the
//! lattice; `beta = 1` approaches G(n, m).

use gee_graph::{Edge, EdgeList, VertexId};
use rand::Rng;

use crate::stream_rng;

/// Parameters for [`watts_strogatz`].
#[derive(Debug, Clone, Copy)]
pub struct WsParams {
    /// Number of vertices in the ring.
    pub n: usize,
    /// Even number of lattice neighbors per vertex (`k/2` on each side).
    pub k: usize,
    /// Rewiring probability in `[0, 1]`.
    pub beta: f64,
}

impl WsParams {
    fn validate(&self) {
        assert!(self.n >= 3, "ring needs at least 3 vertices");
        assert!(
            self.k >= 2 && self.k.is_multiple_of(2),
            "k must be even and >= 2"
        );
        assert!(self.k < self.n, "lattice degree must be below n");
        assert!(
            (0.0..=1.0).contains(&self.beta),
            "beta must be a probability"
        );
    }
}

/// Sample a Watts–Strogatz graph. Returns the undirected edge list in
/// symmetrized form (each edge in both directions, the §II encoding).
/// `n·k/2` undirected edges, deterministic in `seed`.
pub fn watts_strogatz(params: WsParams, seed: u64) -> EdgeList {
    params.validate();
    let WsParams { n, k, beta } = params;
    let mut rng = stream_rng(seed, 0x5753); // "WS"
    let mut edges: Vec<Edge> = Vec::with_capacity(n * k);
    for u in 0..n {
        for j in 1..=(k / 2) {
            let lattice_v = (u + j) % n;
            let v = if rng.gen::<f64>() < beta {
                // Rewire to a uniform non-self target (duplicates across
                // sources are permitted, matching the classic model's
                // tolerance for multi-edges after rewiring).
                let mut t = rng.gen_range(0..n - 1);
                if t >= u {
                    t += 1;
                }
                t
            } else {
                lattice_v
            };
            edges.push(Edge::unit(u as VertexId, v as VertexId));
            edges.push(Edge::unit(v as VertexId, u as VertexId));
        }
    }
    EdgeList::new_unchecked(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_zero_is_ring_lattice() {
        let el = watts_strogatz(
            WsParams {
                n: 10,
                k: 4,
                beta: 0.0,
            },
            1,
        );
        assert_eq!(el.num_edges(), 10 * 4);
        // Vertex 0 must link to 1, 2 (right) and 8, 9 (left, via their
        // right-links).
        let mut nbrs: Vec<u32> = el
            .edges()
            .iter()
            .filter(|e| e.u == 0)
            .map(|e| e.v)
            .collect();
        nbrs.sort_unstable();
        nbrs.dedup();
        assert_eq!(nbrs, vec![1, 2, 8, 9]);
    }

    #[test]
    fn edge_count_invariant_under_rewiring() {
        for beta in [0.0, 0.3, 1.0] {
            let el = watts_strogatz(WsParams { n: 50, k: 6, beta }, 7);
            assert_eq!(el.num_edges(), 50 * 6, "beta={beta}");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let p = WsParams {
            n: 40,
            k: 4,
            beta: 0.5,
        };
        let a = watts_strogatz(p, 9);
        let b = watts_strogatz(p, 9);
        assert_eq!(a.edges().len(), b.edges().len());
        assert!(a
            .edges()
            .iter()
            .zip(b.edges())
            .all(|(x, y)| x.u == y.u && x.v == y.v));
        let c = watts_strogatz(p, 10);
        assert!(a.edges().iter().zip(c.edges()).any(|(x, y)| x.v != y.v));
    }

    #[test]
    fn no_self_loops() {
        let el = watts_strogatz(
            WsParams {
                n: 30,
                k: 4,
                beta: 1.0,
            },
            3,
        );
        assert!(el.edges().iter().all(|e| e.u != e.v));
    }

    #[test]
    fn symmetrized_output() {
        let el = watts_strogatz(
            WsParams {
                n: 20,
                k: 2,
                beta: 0.4,
            },
            11,
        );
        let mut fwd: Vec<(u32, u32)> = el.edges().iter().map(|e| (e.u, e.v)).collect();
        let mut rev: Vec<(u32, u32)> = el.edges().iter().map(|e| (e.v, e.u)).collect();
        fwd.sort_unstable();
        rev.sort_unstable();
        assert_eq!(fwd, rev);
    }

    #[test]
    #[should_panic(expected = "k must be even")]
    fn odd_k_rejected() {
        watts_strogatz(
            WsParams {
                n: 10,
                k: 3,
                beta: 0.0,
            },
            1,
        );
    }

    #[test]
    #[should_panic(expected = "below n")]
    fn oversized_k_rejected() {
        watts_strogatz(
            WsParams {
                n: 4,
                k: 4,
                beta: 0.0,
            },
            1,
        );
    }
}
