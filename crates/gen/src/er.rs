//! Erdős–Rényi random graphs — the Figure 4 workload.
//!
//! The paper sweeps `log2(edges)` from 13 to 29 on ER graphs and shows
//! linear runtime in the edge count. `erdos_renyi_gnm` draws exactly `m`
//! directed edges with endpoints uniform on `0..n` (the G(n, m) model with
//! replacement — duplicates and self-loops are kept, which is harmless for
//! GEE and matches the "stream of s edges" cost model).

use rayon::prelude::*;

use gee_graph::{Edge, EdgeList};
use rand::Rng;

use crate::stream_rng;

/// G(n, m): exactly `m` directed edges, endpoints i.i.d. uniform.
///
/// Deterministic in `seed` and independent of the number of threads: edges
/// are generated in fixed chunks, each from its own derived RNG stream.
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> EdgeList {
    assert!(n > 0 || m == 0, "cannot place edges in an empty graph");
    const CHUNK: usize = 1 << 16;
    let chunks = m.div_ceil(CHUNK.max(1)).max(1);
    let edges: Vec<Edge> = (0..chunks)
        .into_par_iter()
        .flat_map_iter(|c| {
            let lo = c * CHUNK;
            let hi = ((c + 1) * CHUNK).min(m);
            let mut rng = stream_rng(seed, c as u64);
            (lo..hi).map(move |_| {
                let u = rng.gen_range(0..n as u32);
                let v = rng.gen_range(0..n as u32);
                Edge::unit(u, v)
            })
        })
        .collect();
    EdgeList::new_unchecked(n, edges)
}

/// G(n, p): every ordered pair `(u, v)`, `u != v`, is an edge independently
/// with probability `p`. Uses geometric skipping, O(expected edges), suitable
/// only for graphs where `n*n*p` is laptop-scale.
pub fn erdos_renyi_gnp(n: usize, p: f64, seed: u64) -> EdgeList {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    let mut edges = Vec::new();
    if p == 0.0 || n == 0 {
        return EdgeList::new_unchecked(n, edges);
    }
    let mut rng = stream_rng(seed, 0);
    if p >= 1.0 {
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                if u != v {
                    edges.push(Edge::unit(u, v));
                }
            }
        }
        return EdgeList::new_unchecked(n, edges);
    }
    // Geometric skipping over the n*(n-1) candidate slots (self-loops are
    // excluded by construction of the slot→pair decoding below).
    let total = (n as u128) * (n as u128 - 1);
    let log1mp = (1.0 - p).ln();
    let mut slot: u128 = 0;
    loop {
        let r: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let skip = (r.ln() / log1mp).floor() as u128;
        slot = slot.saturating_add(skip);
        if slot >= total {
            break;
        }
        let u = (slot / (n as u128 - 1)) as u32;
        let mut v = (slot % (n as u128 - 1)) as u32;
        if v >= u {
            v += 1; // skip the diagonal
        }
        edges.push(Edge::unit(u, v));
        slot += 1;
    }
    EdgeList::new_unchecked(n, edges)
}

/// The Figure 4 convention: an ER graph with `2^log2_edges` edges and
/// `n = max(m / avg_degree, 2)` vertices (the paper holds average degree
/// roughly constant as edges grow).
pub fn fig4_graph(log2_edges: u32, avg_degree: usize, seed: u64) -> EdgeList {
    let m = 1usize << log2_edges;
    let n = (m / avg_degree.max(1)).max(2);
    erdos_renyi_gnm(n, m, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_exact_edge_count() {
        let el = erdos_renyi_gnm(100, 5000, 7);
        assert_eq!(el.num_edges(), 5000);
        assert_eq!(el.num_vertices(), 100);
    }

    #[test]
    fn gnm_deterministic() {
        let a = erdos_renyi_gnm(50, 1000, 9);
        let b = erdos_renyi_gnm(50, 1000, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn gnm_seeds_differ() {
        assert_ne!(erdos_renyi_gnm(50, 1000, 1), erdos_renyi_gnm(50, 1000, 2));
    }

    #[test]
    fn gnm_endpoints_in_range() {
        let el = erdos_renyi_gnm(10, 500, 3);
        assert!(el.edges().iter().all(|e| e.u < 10 && e.v < 10));
    }

    #[test]
    fn gnp_zero_and_one() {
        assert_eq!(erdos_renyi_gnp(10, 0.0, 1).num_edges(), 0);
        assert_eq!(erdos_renyi_gnp(10, 1.0, 1).num_edges(), 90);
    }

    #[test]
    fn gnp_expected_count_close() {
        let n = 200;
        let p = 0.05;
        let el = erdos_renyi_gnp(n, p, 11);
        let expected = (n * (n - 1)) as f64 * p;
        let got = el.num_edges() as f64;
        // within 5 standard deviations
        let sd = (expected * (1.0 - p)).sqrt();
        assert!(
            (got - expected).abs() < 5.0 * sd,
            "got {got}, expected {expected}±{sd}"
        );
    }

    #[test]
    fn gnp_no_self_loops() {
        let el = erdos_renyi_gnp(50, 0.1, 13);
        assert!(el.edges().iter().all(|e| e.u != e.v));
    }

    #[test]
    fn fig4_shape() {
        let el = fig4_graph(13, 16, 5);
        assert_eq!(el.num_edges(), 1 << 13);
        assert_eq!(el.num_vertices(), (1 << 13) / 16);
    }
}
