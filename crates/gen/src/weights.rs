//! Edge-weight assigners — turn any generated unit-weight graph into a
//! weighted workload (GEE's Algorithm 1 is defined for weighted graphs;
//! Δ-stepping needs non-trivial weight distributions to exercise its
//! buckets).

use gee_graph::{Edge, EdgeList};
use rand::Rng;

use crate::stream_rng;

/// The weight distribution to draw from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightDistribution {
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive; must exceed `lo`).
        hi: f64,
    },
    /// `exp(N(mu, sigma²))` approximated by a 12-uniform sum — heavy right
    /// tail, the standard model for latency/capacity-like weights.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal (≥ 0).
        sigma: f64,
    },
    /// Zipf-like discrete weights `1..=max` with `P(w) ∝ w^-alpha`.
    Zipf {
        /// Largest weight value.
        max: usize,
        /// Skew exponent (> 0).
        alpha: f64,
    },
}

/// Assign weights drawn from `dist` to every edge, preserving topology
/// and edge order. Deterministic in `seed`.
///
/// For **symmetrized** graphs, mirrored directions are assigned
/// independently; use [`assign_weights_symmetric`] to keep the two
/// directions of each undirected edge equal.
pub fn assign_weights(el: &EdgeList, dist: WeightDistribution, seed: u64) -> EdgeList {
    let mut rng = stream_rng(seed, 0x5747); // "WG"
    let mut draw = make_sampler(dist);
    let edges: Vec<Edge> = el
        .edges()
        .iter()
        .map(|e| Edge::new(e.u, e.v, draw(&mut rng)))
        .collect();
    EdgeList::new_unchecked(el.num_vertices(), edges)
}

/// Assign weights so that `(u, v)` and `(v, u)` always receive the same
/// value: the weight is drawn from a hash-seeded stream of the unordered
/// pair, so mirrored edges agree no matter where they sit in the list.
pub fn assign_weights_symmetric(el: &EdgeList, dist: WeightDistribution, seed: u64) -> EdgeList {
    let mut draw = make_sampler(dist);
    let edges: Vec<Edge> = el
        .edges()
        .iter()
        .map(|e| {
            let (a, b) = (e.u.min(e.v) as u64, e.u.max(e.v) as u64);
            let mut rng = stream_rng(seed, (a << 32) | b);
            Edge::new(e.u, e.v, draw(&mut rng))
        })
        .collect();
    EdgeList::new_unchecked(el.num_vertices(), edges)
}

fn make_sampler(dist: WeightDistribution) -> impl FnMut(&mut rand::rngs::StdRng) -> f64 {
    match dist {
        WeightDistribution::Uniform { lo, hi } => {
            assert!(hi > lo, "need lo < hi");
        }
        WeightDistribution::LogNormal { sigma, .. } => {
            assert!(sigma >= 0.0, "sigma must be non-negative");
        }
        WeightDistribution::Zipf { max, alpha } => {
            assert!(max >= 1, "zipf needs max >= 1");
            assert!(alpha > 0.0, "zipf needs alpha > 0");
        }
    }
    // Zipf CDF precomputed once.
    let zipf_cdf: Vec<f64> = if let WeightDistribution::Zipf { max, alpha } = dist {
        let weights: Vec<f64> = (1..=max).map(|w| (w as f64).powf(-alpha)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect()
    } else {
        Vec::new()
    };
    move |rng| match dist {
        WeightDistribution::Uniform { lo, hi } => rng.gen_range(lo..hi),
        WeightDistribution::LogNormal { mu, sigma } => {
            let z: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
            (mu + sigma * z).exp()
        }
        WeightDistribution::Zipf { .. } => {
            let u: f64 = rng.gen();
            (1 + zipf_cdf.partition_point(|&c| c < u)) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> EdgeList {
        crate::erdos_renyi_gnm(100, 1_000, 3)
    }

    #[test]
    fn uniform_weights_in_range() {
        let el = assign_weights(&base(), WeightDistribution::Uniform { lo: 2.0, hi: 5.0 }, 7);
        assert!(el.edges().iter().all(|e| (2.0..5.0).contains(&e.w)));
        assert_eq!(el.num_edges(), 1_000);
    }

    #[test]
    fn topology_preserved() {
        let b = base();
        let el = assign_weights(&b, WeightDistribution::Uniform { lo: 0.0, hi: 1.0 }, 7);
        assert!(b
            .edges()
            .iter()
            .zip(el.edges())
            .all(|(x, y)| x.u == y.u && x.v == y.v));
    }

    #[test]
    fn lognormal_is_positive_and_skewed() {
        let el = assign_weights(
            &base(),
            WeightDistribution::LogNormal {
                mu: 0.0,
                sigma: 1.0,
            },
            9,
        );
        assert!(el.edges().iter().all(|e| e.w > 0.0));
        let mean: f64 = el.edges().iter().map(|e| e.w).sum::<f64>() / 1_000.0;
        let median = {
            let mut ws: Vec<f64> = el.edges().iter().map(|e| e.w).collect();
            ws.sort_by(f64::total_cmp);
            ws[500]
        };
        assert!(
            mean > median,
            "right-skew: mean {mean} must exceed median {median}"
        );
    }

    #[test]
    fn zipf_discrete_and_skewed() {
        let el = assign_weights(
            &base(),
            WeightDistribution::Zipf {
                max: 10,
                alpha: 1.5,
            },
            11,
        );
        assert!(el
            .edges()
            .iter()
            .all(|e| e.w >= 1.0 && e.w <= 10.0 && e.w.fract() == 0.0));
        let ones = el.edges().iter().filter(|e| e.w == 1.0).count();
        assert!(ones > 300, "w=1 should dominate, got {ones}/1000");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = assign_weights(
            &base(),
            WeightDistribution::Uniform { lo: 0.0, hi: 1.0 },
            13,
        );
        let b = assign_weights(
            &base(),
            WeightDistribution::Uniform { lo: 0.0, hi: 1.0 },
            13,
        );
        assert!(a.edges().iter().zip(b.edges()).all(|(x, y)| x.w == y.w));
        let c = assign_weights(
            &base(),
            WeightDistribution::Uniform { lo: 0.0, hi: 1.0 },
            14,
        );
        assert!(a.edges().iter().zip(c.edges()).any(|(x, y)| x.w != y.w));
    }

    #[test]
    fn symmetric_assigner_mirrors_weights() {
        let el = base().symmetrized();
        let w = assign_weights_symmetric(&el, WeightDistribution::Uniform { lo: 1.0, hi: 9.0 }, 15);
        let mut by_pair = std::collections::HashMap::new();
        for e in w.edges() {
            let key = (e.u.min(e.v), e.u.max(e.v));
            let prev = by_pair.insert(key, e.w);
            if let Some(p) = prev {
                assert_eq!(p, e.w, "mirrored edge {key:?} weights differ");
            }
        }
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn uniform_validates_bounds() {
        assign_weights(&base(), WeightDistribution::Uniform { lo: 1.0, hi: 1.0 }, 0);
    }
}
