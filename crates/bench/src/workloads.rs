//! The paper's Table I workloads, regenerated as R-MAT stand-ins.
//!
//! The SNAP graphs themselves are not redistributable inside this repo and
//! Friendster (1.8B edges) exceeds laptop memory; per DESIGN.md the harness
//! generates R-MAT graphs whose `(n, s)` *shape* matches each paper graph
//! at `1/scale` size. R-MAT with the canonical social-network parameters
//! reproduces the skewed degree distributions that drive the paper's cache
//! and atomics behaviour.

use gee_gen::{rmat, RmatParams};
use gee_graph::EdgeList;

/// One Table I row: the paper's graph and its scaled stand-in.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Paper's graph name.
    pub name: &'static str,
    /// Paper's vertex count.
    pub paper_n: usize,
    /// Paper's edge count.
    pub paper_s: usize,
    /// Paper's reported runtimes (seconds): [python, numba, ligra-serial,
    /// ligra-parallel] — printed beside our measurements.
    pub paper_runtimes: [f64; 4],
}

/// The six Table I graphs with the paper's reported numbers.
pub fn table1_workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "Twitch",
            paper_n: 168_000,
            paper_s: 6_800_000,
            paper_runtimes: [12.18, 0.20, 0.11, 0.013],
        },
        Workload {
            name: "soc-Pokec",
            paper_n: 1_600_000,
            paper_s: 30_000_000,
            paper_runtimes: [133.21, 1.68, 0.99, 0.12],
        },
        Workload {
            name: "soc-LiveJournal",
            paper_n: 6_400_000,
            paper_s: 69_000_000,
            paper_runtimes: [301.64, 4.29, 2.39, 0.39],
        },
        Workload {
            name: "soc-orkut",
            paper_n: 3_000_000,
            paper_s: 117_000_000,
            paper_runtimes: [499.83, 4.48, 2.97, 0.26],
        },
        Workload {
            name: "orkut-groups",
            paper_n: 3_000_000,
            paper_s: 327_000_000,
            paper_runtimes: [595.29, 11.43, 6.06, 2.36],
        },
        Workload {
            name: "Friendster",
            paper_n: 65_000_000,
            paper_s: 1_800_000_000,
            paper_runtimes: [3374.72, 112.33, 77.23, 6.42],
        },
    ]
}

impl Workload {
    /// Scaled stand-in sizes.
    pub fn scaled(&self, scale: usize) -> (usize, usize) {
        (
            (self.paper_n / scale).max(64),
            (self.paper_s / scale).max(1024),
        )
    }

    /// Generate the R-MAT stand-in at `1/scale`.
    pub fn generate(&self, scale: usize, seed: u64) -> EdgeList {
        let (n, s) = self.scaled(scale);
        let bits = (usize::BITS - (n - 1).leading_zeros()).max(6);
        rmat(bits, s, RmatParams::default(), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_workloads_match_paper_shapes() {
        let w = table1_workloads();
        assert_eq!(w.len(), 6);
        assert_eq!(w[5].paper_s, 1_800_000_000);
    }

    #[test]
    fn scaled_sizes_divide() {
        let w = &table1_workloads()[0];
        let (n, s) = w.scaled(64);
        assert_eq!(n, 168_000 / 64);
        assert_eq!(s, 6_800_000 / 64);
    }

    #[test]
    fn generation_covers_scaled_shape() {
        let w = &table1_workloads()[0];
        let el = w.generate(512, 1);
        let (n, s) = w.scaled(512);
        assert_eq!(el.num_edges(), s);
        assert!(
            el.num_vertices() >= n,
            "vertex space must cover the target n"
        );
    }

    #[test]
    fn floor_sizes_apply_at_huge_scale() {
        let w = &table1_workloads()[0];
        let (n, s) = w.scaled(usize::MAX / 2);
        assert_eq!((n, s), (64, 1024));
    }
}
