//! Shared infrastructure for the paper-reproduction benchmark binaries.
//!
//! Each binary regenerates one table or figure of "Edge-Parallel Graph
//! Encoder Embedding" (see DESIGN.md's per-experiment index):
//!
//! | binary            | paper artifact |
//! |-------------------|----------------|
//! | `table1`          | Table I        |
//! | `fig2`            | Figure 2       |
//! | `fig3`            | Figure 3       |
//! | `fig4`            | Figure 4       |
//! | `ablation-atomics`| §IV atomics-off experiment |
//! | `ablation-init`   | §III O(nk) projection-init claim |
//! | `ablation-determinism` | extension: cost of bit-reproducible kernels |
//! | `ablation-dynamic`     | extension: incremental updates vs recompute |
//! | `ablation-batch`       | extension: fused multi-labeling passes |
//!
//! All binaries accept `--scale <divisor>` (shrink the paper's graph sizes
//! by this factor; default 64), `--runs <r>` (median-of-r timing, default
//! 3), and print both a human table and a JSON block for EXPERIMENTS.md.

pub mod args;
pub mod perfmodel;
pub mod runner;
pub mod table;
pub mod workloads;

pub use args::Args;
pub use perfmodel::{gee_bytes_per_edge, measure_bandwidth, predicted_edge_pass_seconds};
pub use runner::{time_implementation, timed, verify_embedding, Measurement};
pub use workloads::{table1_workloads, Workload};
