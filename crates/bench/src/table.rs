//! Plain-text table rendering for the benchmark binaries.

/// Render rows of equal length as an aligned table with a header.
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (i, h) in header.iter().enumerate() {
        out.push_str(&format!("| {:<w$} ", h, w = widths[i]));
    }
    out.push_str("|\n");
    sep(&mut out);
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("| {:<w$} ", cell, w = widths[i]));
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

/// Format seconds compactly (µs → s).
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.2}s", s)
    }
}

/// Format a speedup factor.
pub fn fmt_speedup(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}×")
    } else {
        format!("{x:.1}×")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let t = render(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["33".into(), "4".into()]],
        );
        assert!(t.contains("| a  | bb |"));
        assert!(t.contains("| 33 | 4  |"));
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(fmt_secs(0.0000005), "0.5µs");
        assert_eq!(fmt_secs(0.005), "5.00ms");
        assert_eq!(fmt_secs(2.5), "2.50s");
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(fmt_speedup(3.17), "3.2×");
        assert_eq!(fmt_speedup(525.0), "525×");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        render(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
