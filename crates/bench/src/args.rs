//! Minimal CLI argument parsing shared by the bench binaries (no external
//! dependency — the offline crate set does not include a CLI parser, and
//! six flags do not justify one).

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Args {
    /// Divisor applied to the paper's graph sizes (64 → 1/64th scale).
    pub scale: usize,
    /// Timing repetitions; the median is reported.
    pub runs: usize,
    /// Embedding classes K (paper: 50).
    pub k: usize,
    /// Labeled fraction (paper: 0.10).
    pub labeled_fraction: f64,
    /// Max log2(edges) for the Figure 4 sweep.
    pub max_log2: u32,
    /// Thread count override (0 = all cores).
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
    /// Emit machine-readable JSON after the table.
    pub json: bool,
    /// Also write the results as a `gee-bench-v1` report file
    /// (`--json PATH`), the same schema `gee bench` emits.
    pub json_path: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: 64,
            runs: 3,
            k: 50,
            labeled_fraction: 0.10,
            max_log2: 23,
            threads: 0,
            seed: 20240206, // arXiv date of the paper
            json: true,
            json_path: None,
        }
    }
}

impl Args {
    /// Parse from `std::env::args`, exiting with usage on error.
    pub fn parse() -> Args {
        let mut out = Args::default();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let flag = argv[i].as_str();
            let mut next = |what: &str| -> String {
                i += 1;
                argv.get(i)
                    .unwrap_or_else(|| {
                        eprintln!("missing value for {what}");
                        std::process::exit(2);
                    })
                    .clone()
            };
            match flag {
                "--scale" => out.scale = next("--scale").parse().expect("--scale takes an integer"),
                "--runs" => out.runs = next("--runs").parse().expect("--runs takes an integer"),
                "--k" => out.k = next("--k").parse().expect("--k takes an integer"),
                "--labeled" => {
                    out.labeled_fraction = next("--labeled")
                        .parse()
                        .expect("--labeled takes a fraction")
                }
                "--max-log2" => {
                    out.max_log2 = next("--max-log2")
                        .parse()
                        .expect("--max-log2 takes an integer")
                }
                "--threads" => {
                    out.threads = next("--threads")
                        .parse()
                        .expect("--threads takes an integer")
                }
                "--seed" => out.seed = next("--seed").parse().expect("--seed takes an integer"),
                "--no-json" => out.json = false,
                "--json" => out.json_path = Some(next("--json")),
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --scale <div=64> --runs <r=3> --k <K=50> --labeled <f=0.1> \
                         --max-log2 <b=23> --threads <t=all> --seed <s> --no-json \
                         --json <report-path>"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; try --help");
                    std::process::exit(2);
                }
            }
            i += 1;
        }
        assert!(out.scale >= 1, "--scale must be >= 1");
        assert!(out.runs >= 1, "--runs must be >= 1");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_config() {
        let a = Args::default();
        assert_eq!(a.k, 50);
        assert!((a.labeled_fraction - 0.10).abs() < 1e-12);
    }
}
