//! Serving-layer throughput: batched queries/sec against `gee-serve` as
//! the shard count grows, on an SBM workload with community structure.
//!
//! Three phases per shard count:
//!
//! * **classify** — batches of kNN classification queries (the paper's
//!   "subsequent inference" task served online);
//! * **similar**  — nearest-neighbor sweeps (full shard-parallel scans);
//! * **mixed + updates** — read batches interleaved with epoch-publishing
//!   update batches, measuring serving throughput under write pressure.
//!
//! ```text
//! cargo run --release -p gee-bench --bin serve_throughput -- --scale 64
//! ```

use std::sync::Arc;

use gee_bench::table::render;
use gee_bench::{timed, Args};
use gee_core::Labels;
use gee_serve::{Engine, Envelope, Registry, Request, Update};

fn main() {
    let args = Args::parse();
    // Scale the workload like the paper binaries: 1/scale of a 200k-vertex
    // 8-block SBM.
    let blocks = 8usize;
    let per_block = (200_000 / blocks / args.scale).max(50);
    let sbm = gee_gen::sbm(
        &gee_gen::SbmParams::balanced(blocks, per_block, 0.01, 0.0005),
        args.seed,
    );
    let n = sbm.edges.num_vertices();
    let labels = Labels::from_options_with_k(
        &gee_gen::subsample_labels(
            &sbm.truth,
            args.labeled_fraction.max(0.05),
            args.seed ^ 0x5E,
        ),
        blocks,
    );
    let classify_batch = 256usize.min(n);
    let similar_batch = 32usize.min(n);
    println!(
        "serve-throughput — SBM {blocks}×{per_block} ({n} vertices, {} edges), K = {blocks}, \
         {} labeled; classify batches of {classify_batch}, similar batches of {similar_batch}\n",
        sbm.edges.num_edges(),
        labels.num_labeled(),
    );

    let max_threads = if args.threads > 0 {
        args.threads
    } else {
        std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(8)
    };
    let mut shard_counts = vec![1usize, 2, 4];
    let mut s = 8;
    while s <= max_threads.max(8) {
        shard_counts.push(s);
        s *= 2;
    }
    shard_counts.dedup();

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &shards in &shard_counts {
        let registry = Arc::new(Registry::new(shards));
        let (reg_secs, _, _) = timed(args.runs, || {
            registry.register("g", &sbm.edges, &labels).unwrap()
        });
        let engine = Engine::new(registry.clone());

        // Classify throughput.
        let vertices: Vec<u32> = (0..classify_batch as u32)
            .map(|i| (i * 97) % n as u32)
            .collect();
        let (classify_secs, _, _) = timed(args.runs, || {
            let reqs = vec![Envelope::new("g", Request::classify(vertices.clone(), 5))];
            let r = engine.execute_batch(reqs);
            assert!(r.iter().all(Result::is_ok));
        });
        let classify_qps = classify_batch as f64 / classify_secs;

        // Similar throughput.
        let (similar_secs, _, _) = timed(args.runs, || {
            let reqs: Vec<Envelope> = (0..similar_batch as u32)
                .map(|i| Envelope::new("g", Request::similar((i * 131) % n as u32, 10)))
                .collect();
            let r = engine.execute_batch(reqs);
            assert!(r.iter().all(Result::is_ok));
        });
        let similar_qps = similar_batch as f64 / similar_secs;

        // Mixed read/write batch: 64 rows + an update batch + 64 rows.
        let (mixed_secs, _, _) = timed(args.runs, || {
            let mut reqs: Vec<Envelope> = (0..64u32)
                .map(|i| Envelope::new("g", Request::embed_row((i * 11) % n as u32)))
                .collect();
            let updates: Vec<Update> = (0..128u32)
                .map(|i| Update::InsertEdge {
                    u: (i * 7) % n as u32,
                    v: (i * 13 + 1) % n as u32,
                    w: 1.0,
                })
                .collect();
            reqs.push(Envelope::new("g", Request::ApplyUpdates { updates }));
            reqs.extend(
                (0..64u32).map(|i| Envelope::new("g", Request::embed_row((i * 17) % n as u32))),
            );
            let r = engine.execute_batch(reqs);
            assert!(r.iter().all(Result::is_ok));
        });
        let mixed_rps = 129.0 / mixed_secs;

        // CoW vs full republish: publish latency of an update batch as a
        // function of the fraction of shards it touches. Edge batches
        // confined to one shard republish one ShardBlock; a label move
        // rescales whole columns and republishes everything — the
        // full-rebuild baseline.
        let layout = gee_serve::ShardLayout::new(n, shards);
        let publish_ms = |fraction_shards: usize| -> f64 {
            let touched = fraction_shards.clamp(1, layout.num_shards());
            let (secs, _, _) = timed(args.runs, || {
                let updates: Vec<Update> = (0..touched)
                    .flat_map(|s| {
                        let (lo, hi) = layout.range(s % layout.num_shards());
                        let span = (hi - lo).max(2);
                        (0..4u32).map(move |i| Update::InsertEdge {
                            u: lo + (i * 5) % span,
                            v: lo + (i * 11 + 1) % span,
                            w: 1.0,
                        })
                    })
                    .collect();
                registry.apply_updates("g", &updates).unwrap();
            });
            secs * 1e3
        };
        let cow_one = publish_ms(1);
        let cow_half = publish_ms(shards.div_ceil(2));
        let cow_all = publish_ms(shards);
        // Full-republish baseline: one label move dirties every shard's
        // rows (class-count rescale), exactly the pre-CoW publish cost.
        let (full_secs, _, _) = timed(args.runs, || {
            registry
                .apply_updates(
                    "g",
                    &[
                        Update::SetLabel {
                            v: 0,
                            label: Some(1),
                        },
                        Update::SetLabel {
                            v: 0,
                            label: Some(0),
                        },
                    ],
                )
                .unwrap();
        });
        let full_ms = full_secs * 1e3;

        rows.push(vec![
            shards.to_string(),
            format!("{:.1} ms", reg_secs * 1e3),
            format!("{classify_qps:.0}"),
            format!("{similar_qps:.0}"),
            format!("{mixed_rps:.0}"),
            format!("{cow_one:.2} ms"),
            format!("{cow_half:.2} ms"),
            format!("{cow_all:.2} ms"),
            format!("{full_ms:.2} ms"),
            format!("{:.1}x", full_ms / cow_one.max(1e-9)),
        ]);
        json.push(serde_json::json!({
            "shards": shards,
            "register_seconds": reg_secs,
            "classify_qps": classify_qps,
            "similar_qps": similar_qps,
            "mixed_rps": mixed_rps,
            "cow_publish_ms_1_shard": cow_one,
            "cow_publish_ms_half_shards": cow_half,
            "cow_publish_ms_all_shards": cow_all,
            "full_republish_ms": full_ms,
        }));
        eprintln!("done: {shards} shards");
    }
    println!(
        "{}",
        render(
            &[
                "Shards",
                "Register",
                "Classify q/s",
                "Similar q/s",
                "Mixed r/s (w/ updates)",
                "CoW pub 1/S",
                "CoW pub ½",
                "CoW pub all",
                "Full repub",
                "CoW speedup"
            ],
            &rows
        )
    );
    println!("expected shape: q/s grows with shards until the scan is bandwidth-bound.");
    println!(
        "expected shape: CoW publish cost scales with the fraction of shards a batch \
         touches; single-shard batches approach full-republish/S."
    );
    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::json!({ "serve_throughput": json })).unwrap()
        );
    }
}
