//! Serving-layer throughput: batched queries/sec against `gee-serve` as
//! the shard count grows, on an SBM workload with community structure.
//!
//! Three phases per shard count:
//!
//! * **classify** — batches of kNN classification queries (the paper's
//!   "subsequent inference" task served online);
//! * **similar**  — nearest-neighbor sweeps (full shard-parallel scans);
//! * **mixed + updates** — read batches interleaved with epoch-publishing
//!   update batches, measuring serving throughput under write pressure.
//!
//! A second table compares **exact vs ANN (IVF)** `Similar`/`Classify`
//! throughput across graph sizes and shard counts, reporting the
//! *measured* recall@top of the approximate answers against the exact
//! scan as the oracle — speed claims without a recall column are
//! meaningless.
//!
//! ```text
//! cargo run --release -p gee-bench --bin serve_throughput -- --scale 64
//! ```

use std::collections::HashSet;
use std::sync::Arc;

use gee_bench::table::render;
use gee_bench::{timed, Args};
use gee_core::Labels;
use gee_serve::{Engine, Envelope, Registry, Request, SearchPolicy, Update};

fn main() {
    let args = Args::parse();
    // Scale the workload like the paper binaries: 1/scale of a 200k-vertex
    // 8-block SBM.
    let blocks = 8usize;
    let per_block = (200_000 / blocks / args.scale).max(50);
    let sbm = gee_gen::sbm(
        &gee_gen::SbmParams::balanced(blocks, per_block, 0.01, 0.0005),
        args.seed,
    );
    let n = sbm.edges.num_vertices();
    let labels = Labels::from_options_with_k(
        &gee_gen::subsample_labels(
            &sbm.truth,
            args.labeled_fraction.max(0.05),
            args.seed ^ 0x5E,
        ),
        blocks,
    );
    let classify_batch = 256usize.min(n);
    let similar_batch = 32usize.min(n);
    println!(
        "serve-throughput — SBM {blocks}×{per_block} ({n} vertices, {} edges), K = {blocks}, \
         {} labeled; classify batches of {classify_batch}, similar batches of {similar_batch}\n",
        sbm.edges.num_edges(),
        labels.num_labeled(),
    );

    let max_threads = if args.threads > 0 {
        args.threads
    } else {
        std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(8)
    };
    let mut shard_counts = vec![1usize, 2, 4];
    let mut s = 8;
    while s <= max_threads.max(8) {
        shard_counts.push(s);
        s *= 2;
    }
    shard_counts.dedup();

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &shards in &shard_counts {
        let registry = Arc::new(Registry::new(shards));
        let (reg_secs, _, _) = timed(args.runs, || {
            registry.register("g", &sbm.edges, &labels).unwrap()
        });
        let engine = Engine::new(registry.clone());

        // Classify throughput.
        let vertices: Vec<u32> = (0..classify_batch as u32)
            .map(|i| (i * 97) % n as u32)
            .collect();
        let (classify_secs, _, _) = timed(args.runs, || {
            let reqs = vec![Envelope::new("g", Request::classify(vertices.clone(), 5))];
            let r = engine.execute_batch(reqs);
            assert!(r.iter().all(Result::is_ok));
        });
        let classify_qps = classify_batch as f64 / classify_secs;

        // Similar throughput.
        let (similar_secs, _, _) = timed(args.runs, || {
            let reqs: Vec<Envelope> = (0..similar_batch as u32)
                .map(|i| Envelope::new("g", Request::similar((i * 131) % n as u32, 10)))
                .collect();
            let r = engine.execute_batch(reqs);
            assert!(r.iter().all(Result::is_ok));
        });
        let similar_qps = similar_batch as f64 / similar_secs;

        // Mixed read/write batch: 64 rows + an update batch + 64 rows.
        let (mixed_secs, _, _) = timed(args.runs, || {
            let mut reqs: Vec<Envelope> = (0..64u32)
                .map(|i| Envelope::new("g", Request::embed_row((i * 11) % n as u32)))
                .collect();
            let updates: Vec<Update> = (0..128u32)
                .map(|i| Update::InsertEdge {
                    u: (i * 7) % n as u32,
                    v: (i * 13 + 1) % n as u32,
                    w: 1.0,
                })
                .collect();
            reqs.push(Envelope::new("g", Request::ApplyUpdates { updates }));
            reqs.extend(
                (0..64u32).map(|i| Envelope::new("g", Request::embed_row((i * 17) % n as u32))),
            );
            let r = engine.execute_batch(reqs);
            assert!(r.iter().all(Result::is_ok));
        });
        let mixed_rps = 129.0 / mixed_secs;

        // CoW vs full republish: publish latency of an update batch as a
        // function of the fraction of shards it touches. Edge batches
        // confined to one shard republish one ShardBlock; a label move
        // rescales whole columns and republishes everything — the
        // full-rebuild baseline.
        let layout = gee_serve::ShardLayout::new(n, shards);
        let publish_ms = |fraction_shards: usize| -> f64 {
            let touched = fraction_shards.clamp(1, layout.num_shards());
            let (secs, _, _) = timed(args.runs, || {
                let updates: Vec<Update> = (0..touched)
                    .flat_map(|s| {
                        let (lo, hi) = layout.range(s % layout.num_shards());
                        let span = (hi - lo).max(2);
                        (0..4u32).map(move |i| Update::InsertEdge {
                            u: lo + (i * 5) % span,
                            v: lo + (i * 11 + 1) % span,
                            w: 1.0,
                        })
                    })
                    .collect();
                registry.apply_updates("g", &updates).unwrap();
            });
            secs * 1e3
        };
        let cow_one = publish_ms(1);
        let cow_half = publish_ms(shards.div_ceil(2));
        let cow_all = publish_ms(shards);
        // Full-republish baseline: one label move dirties every shard's
        // rows (class-count rescale), exactly the pre-CoW publish cost.
        let (full_secs, _, _) = timed(args.runs, || {
            registry
                .apply_updates(
                    "g",
                    &[
                        Update::SetLabel {
                            v: 0,
                            label: Some(1),
                        },
                        Update::SetLabel {
                            v: 0,
                            label: Some(0),
                        },
                    ],
                )
                .unwrap();
        });
        let full_ms = full_secs * 1e3;

        rows.push(vec![
            shards.to_string(),
            format!("{:.1} ms", reg_secs * 1e3),
            format!("{classify_qps:.0}"),
            format!("{similar_qps:.0}"),
            format!("{mixed_rps:.0}"),
            format!("{cow_one:.2} ms"),
            format!("{cow_half:.2} ms"),
            format!("{cow_all:.2} ms"),
            format!("{full_ms:.2} ms"),
            format!("{:.1}x", full_ms / cow_one.max(1e-9)),
        ]);
        json.push(serde_json::json!({
            "shards": shards,
            "register_seconds": reg_secs,
            "classify_qps": classify_qps,
            "similar_qps": similar_qps,
            "mixed_rps": mixed_rps,
            "cow_publish_ms_1_shard": cow_one,
            "cow_publish_ms_half_shards": cow_half,
            "cow_publish_ms_all_shards": cow_all,
            "full_republish_ms": full_ms,
        }));
        eprintln!("done: {shards} shards");
    }
    println!(
        "{}",
        render(
            &[
                "Shards",
                "Register",
                "Classify q/s",
                "Similar q/s",
                "Mixed r/s (w/ updates)",
                "CoW pub 1/S",
                "CoW pub ½",
                "CoW pub all",
                "Full repub",
                "CoW speedup"
            ],
            &rows
        )
    );
    println!("expected shape: q/s grows with shards until the scan is bandwidth-bound.");
    println!(
        "expected shape: CoW publish cost scales with the fraction of shards a batch \
         touches; single-shard batches approach full-republish/S."
    );

    // --- Exact vs ANN (IVF): q/s and measured recall across graph
    // sizes and shard counts. One engine per cell with the exact scan as
    // the default; ANN runs as per-request overrides against the *same*
    // snapshot, so the recall comparison is apples-to-apples.
    let nprobe = 8usize;
    let refine = SearchPolicy::DEFAULT_REFINE;
    let ann = SearchPolicy::Ann { nprobe, refine };
    let top = 10usize;
    let mut ann_rows = Vec::new();
    let mut ann_json = Vec::new();
    for &size_div in &[4usize, 1] {
        let pb = (per_block / size_div).max(50);
        // Keep the expected degree (~22) and label density scale-
        // invariant: with the main table's fixed probabilities a small
        // scale leaves most vertices without labeled neighbors, so
        // their embedding rows are all zero and kNN answers degenerate
        // into tie-breaking noise — meaningless for an exact-vs-ANN
        // agreement column.
        let n_total = pb * blocks;
        let p_in = (20.0 / pb as f64).min(1.0);
        let p_out = (2.0 / (n_total - pb).max(1) as f64).min(1.0);
        let sbm_s = gee_gen::sbm(
            &gee_gen::SbmParams::balanced(blocks, pb, p_in, p_out),
            args.seed ^ size_div as u64,
        );
        let sn = sbm_s.edges.num_vertices();
        let labels_s = Labels::from_options_with_k(
            &gee_gen::subsample_labels(
                &sbm_s.truth,
                args.labeled_fraction.max(0.2),
                args.seed ^ 0x5E,
            ),
            blocks,
        );
        for &shards in &shard_counts {
            let registry = Arc::new(Registry::new(shards));
            registry.register("g", &sbm_s.edges, &labels_s).unwrap();
            let engine = Engine::new(registry.clone());
            let snap = registry.snapshot("g").unwrap();
            let (index_secs, _, indexed) = timed(1, || snap.warm_ann_indexes());
            let queries: Vec<u32> = (0..similar_batch as u32)
                .map(|i| (i * 131 + 7) % sn as u32)
                .collect();
            let run_similar = |policy: Option<SearchPolicy>| -> (f64, Vec<Vec<(u32, f64)>>) {
                let mut answers = Vec::new();
                let (secs, _, _) = timed(args.runs, || {
                    let reqs: Vec<Envelope> = queries
                        .iter()
                        .map(|&q| {
                            let r = Request::similar(q, top);
                            let r = match policy {
                                Some(p) => r.with_search(p),
                                None => r,
                            };
                            Envelope::new("g", r)
                        })
                        .collect();
                    answers = engine
                        .execute_batch(reqs)
                        .into_iter()
                        .map(|r| match r.unwrap() {
                            gee_serve::Response::Neighbors(x) => x,
                            other => panic!("unexpected response {other:?}"),
                        })
                        .collect();
                });
                (queries.len() as f64 / secs, answers)
            };
            let (exact_qps, exact_answers) = run_similar(None);
            let (ann_qps, ann_answers) = run_similar(Some(ann));
            let recall: f64 = exact_answers
                .iter()
                .zip(&ann_answers)
                .map(|(e, a)| {
                    let want: HashSet<u32> = e.iter().map(|&(v, _)| v).collect();
                    if want.is_empty() {
                        return 1.0;
                    }
                    a.iter().filter(|(v, _)| want.contains(v)).count() as f64 / want.len() as f64
                })
                .sum::<f64>()
                / exact_answers.len() as f64;
            // Classify: exact vs ANN agreement at the same k.
            let cls: Vec<u32> = (0..classify_batch as u32)
                .map(|i| (i * 97) % sn as u32)
                .collect();
            let run_classify = |policy: Option<SearchPolicy>| -> (f64, Vec<u32>) {
                let mut got = Vec::new();
                let (secs, _, _) = timed(args.runs, || {
                    let r = Request::classify(cls.clone(), 5);
                    let r = match policy {
                        Some(p) => r.with_search(p),
                        None => r,
                    };
                    got = match engine.execute("g", r).unwrap() {
                        gee_serve::Response::Classes(c) => c,
                        other => panic!("unexpected response {other:?}"),
                    };
                });
                (cls.len() as f64 / secs, got)
            };
            let (cls_exact_qps, cls_exact) = run_classify(None);
            let (cls_ann_qps, cls_ann) = run_classify(Some(ann));
            let agree = cls_exact
                .iter()
                .zip(&cls_ann)
                .filter(|(a, b)| a == b)
                .count() as f64
                / cls_exact.len().max(1) as f64;
            ann_rows.push(vec![
                sn.to_string(),
                shards.to_string(),
                format!("{indexed}/{shards} in {:.0} ms", index_secs * 1e3),
                format!("{exact_qps:.0}"),
                format!("{ann_qps:.0}"),
                format!("{:.1}x", ann_qps / exact_qps.max(1e-9)),
                format!("{recall:.3}"),
                format!("{cls_exact_qps:.0}"),
                format!("{cls_ann_qps:.0}"),
                format!("{agree:.3}"),
            ]);
            ann_json.push(serde_json::json!({
                "vertices": sn,
                "shards": shards,
                "nprobe": nprobe,
                "refine": refine,
                "index_build_seconds": index_secs,
                "shards_indexed": indexed,
                "similar_exact_qps": exact_qps,
                "similar_ann_qps": ann_qps,
                "similar_ann_speedup": ann_qps / exact_qps.max(1e-9),
                "similar_recall_at_top": recall,
                "classify_exact_qps": cls_exact_qps,
                "classify_ann_qps": cls_ann_qps,
                "classify_agreement": agree,
            }));
        }
        eprintln!("done: ann table, {sn} vertices");
    }
    println!(
        "{}",
        render(
            &[
                "Vertices",
                "Shards",
                "IVF build",
                "Sim exact q/s",
                "Sim ANN q/s",
                "ANN speedup",
                &format!("Recall@{top}"),
                "Cls exact q/s",
                "Cls ANN q/s",
                "Cls agree"
            ],
            &ann_rows
        )
    );
    println!(
        "expected shape: ANN speedup grows with rows/shard (probe cost ~ sqrt(rows) + \
         rows·nprobe/nlist vs the full scan); recall stays near 1 because SBM embeddings \
         cluster. Shards below {} rows fall back to the exact scan.",
        gee_serve::ANN_MIN_SHARD_ROWS
    );

    if let Some(path) = &args.json_path {
        let meta = serde_json::json!({
            "scale": args.scale,
            "runs": args.runs,
            "seed": args.seed,
            "threads": args.threads,
        });
        let mut report = gee_loadgen::bench_envelope("serve_throughput", meta);
        gee_loadgen::report::push_field(
            &mut report,
            "rows",
            serde_json::Value::Array(json.clone()),
        );
        gee_loadgen::report::push_field(
            &mut report,
            "ann_vs_exact",
            serde_json::Value::Array(ann_json.clone()),
        );
        gee_loadgen::write_json(path, &report).expect("write --json report");
        eprintln!("wrote {path}");
    }

    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(
                &serde_json::json!({ "serve_throughput": json, "ann_vs_exact": ann_json })
            )
            .unwrap()
        );
    }
}
