//! **Extension ablation: incremental vs recompute.** GEE is a linear
//! sketch, so `gee_core::dynamic::DynamicGee` applies edge/label updates
//! in O(1)/O(deg). This bench measures update throughput and finds the
//! batch size at which a full O(s) recompute would be cheaper — the
//! operating envelope for streaming deployments of the paper's kernel.
//!
//! ```text
//! cargo run --release -p gee-bench --bin ablation-dynamic -- --scale 64
//! ```

use std::time::Instant;

use gee_bench::table::{fmt_secs, render};
use gee_bench::{table1_workloads, timed, Args};
use gee_core::dynamic::DynamicGee;
use gee_core::{serial_optimized, Labels};
use gee_gen::LabelSpec;

fn main() {
    let args = Args::parse();
    let w = table1_workloads()
        .into_iter()
        .last()
        .expect("have workloads");
    println!(
        "dynamic-update ablation — {} stand-in (1/{} scale), K = {}\n",
        w.name, args.scale, args.k
    );
    let el = w.generate(args.scale, args.seed);
    let n = el.num_vertices() as u32;
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(
            el.num_vertices(),
            LabelSpec {
                num_classes: args.k,
                labeled_fraction: args.labeled_fraction,
            },
            args.seed ^ 0xD1,
        ),
        args.k,
    );

    let t0 = Instant::now();
    let mut dg = DynamicGee::new(&el, &labels);
    let init_seconds = t0.elapsed().as_secs_f64();

    // Recompute cost for the same state (the alternative to deltas).
    let (recompute_seconds, _, fresh) = timed(args.runs, || serial_optimized::embed(&el, &labels));
    fresh.assert_close(&dg.embedding(), 1e-9);

    // Measure per-update cost over batches of inserts, label moves, and
    // insert+remove churn.
    let batch = 100_000u32;
    let time_batch = |dg: &mut DynamicGee, op: &dyn Fn(&mut DynamicGee, u32)| -> f64 {
        let t = Instant::now();
        for i in 0..batch {
            op(dg, i);
        }
        t.elapsed().as_secs_f64() / f64::from(batch)
    };
    let ins = time_batch(&mut dg, &|dg, i| {
        dg.insert_edge((i * 2_654_435_761) % n, (i * 40_503 + 1) % n, 1.0)
    });
    let lbl = time_batch(&mut dg, &|dg, i| dg.set_label((i * 97) % n, Some(i % 7)));
    let churn = time_batch(&mut dg, &|dg, i| {
        let (u, v) = (i % n, (i + 1) % n);
        dg.insert_edge(u, v, 3.0);
        assert!(dg.remove_edge(u, v, 3.0));
    });

    let rows = vec![
        vec![
            "bulk init (O(s))".to_string(),
            fmt_secs(init_seconds),
            "-".to_string(),
        ],
        vec![
            "full recompute (O(s))".to_string(),
            fmt_secs(recompute_seconds),
            "-".to_string(),
        ],
        vec![
            "edge insert".to_string(),
            format!("{:.0} ns", ins * 1e9),
            format!("{:.1e} inserts ≈ 1 recompute", recompute_seconds / ins),
        ],
        vec![
            "label move (O(deg))".to_string(),
            format!("{:.0} ns", lbl * 1e9),
            format!("{:.1e} moves ≈ 1 recompute", recompute_seconds / lbl),
        ],
        vec![
            "insert+remove churn".to_string(),
            format!("{:.0} ns", churn * 1e9),
            format!("{:.1e} churns ≈ 1 recompute", recompute_seconds / churn),
        ],
    ];
    println!(
        "{}",
        render(&["Operation", "Cost", "Crossover vs recompute"], &rows)
    );

    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::json!({
                "ablation_dynamic": {
                    "init_seconds": init_seconds,
                    "recompute_seconds": recompute_seconds,
                    "insert_ns": ins * 1e9,
                    "label_move_ns": lbl * 1e9,
                    "churn_ns": churn * 1e9,
                }
            }))
            .unwrap()
        );
    }
}
