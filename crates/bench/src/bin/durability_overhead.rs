//! Durability overhead: update-batch commit throughput under each
//! [`Durability`] policy, plus recovery cost.
//!
//! Three serving configurations run the same update stream:
//!
//! * **in-memory**   — no WAL (the pre-durability baseline);
//! * **wal (async)** — WAL append per batch, OS-buffered
//!   (`SyncPolicy::Never`);
//! * **wal (fsync)** — WAL append + fsync per batch
//!   (`SyncPolicy::Always`, the production default) — the price of a
//!   power-loss-proof commit.
//!
//! Then recovery is timed twice for the fsync run: a **cold replay**
//! (full WAL, no checkpoint) and a **checkpointed** open (snapshot +
//! empty tail), which is the compaction payoff.
//!
//! A second phase measures **group commit** under concurrent writers:
//! for 1 and 8 writer threads, `SyncPolicy::Always` (one fsync per
//! batch) races `SyncPolicy::Group` (waiters share a leader's fsync).
//! The `Fsyncs` column is the coalescing proof — under group commit it
//! stays far below the committed batch count.
//!
//! ```text
//! cargo run --release -p gee-bench --bin durability_overhead -- --scale 64
//! ```

use std::path::PathBuf;
use std::time::{Duration, Instant};

use gee_bench::table::render;
use gee_bench::{timed, Args};
use gee_core::Labels;
use gee_serve::{Durability, Engine, Registry, SyncPolicy, Update};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("gee_bench_durability_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn update_batch(b: u32, n: u32, k: u32, len: u32) -> Vec<Update> {
    (0..len)
        .map(|i| match (b + i) % 3 {
            0 => Update::InsertEdge {
                u: (b * 131 + i * 7) % n,
                v: (b * 137 + i * 11) % n,
                w: 1.0 + f64::from(i % 5),
            },
            1 => Update::SetLabel {
                v: (b * 139 + i * 13) % n,
                label: Some((b + i) % k),
            },
            _ => Update::RemoveEdge {
                u: (b * 131 + i * 7) % n,
                v: (b * 137 + i * 11) % n,
                w: 999.0, // almost surely absent: a cheap committed no-op
            },
        })
        .collect()
}

fn main() {
    let args = Args::parse();
    let blocks = 4usize;
    let per_block = (100_000 / blocks / args.scale).max(50);
    let sbm = gee_gen::sbm(
        &gee_gen::SbmParams::balanced(blocks, per_block, 0.01, 0.001),
        args.seed,
    );
    let n = sbm.edges.num_vertices();
    let labels = Labels::from_options_with_k(
        &gee_gen::subsample_labels(&sbm.truth, 0.3, args.seed ^ 0x5E),
        blocks,
    );
    let batches = (512 / args.scale).max(16);
    println!(
        "durability-overhead — SBM {blocks}×{per_block} ({n} vertices, {} edges), \
         {batches} update batches of 32\n",
        sbm.edges.num_edges(),
    );

    let configs: [(&str, Option<SyncPolicy>); 3] = [
        ("in-memory", None),
        ("wal (async)", Some(SyncPolicy::Never)),
        ("wal (fsync)", Some(SyncPolicy::Always)),
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (name, sync) in configs {
        let dir = tmp_dir(name.split(' ').next().unwrap_or(name));
        let durability = |checkpoint_every| match sync {
            None => Durability::None,
            Some(sync) => Durability::Wal {
                dir: dir.clone(),
                sync,
                checkpoint_every,
            },
        };
        let (secs, _, _) = timed(args.runs, || {
            std::fs::remove_dir_all(&dir).ok();
            let engine = Engine::open(4, durability(0)).unwrap();
            engine
                .registry()
                .register("g", &sbm.edges, &labels)
                .unwrap();
            for b in 0..batches as u32 {
                engine
                    .apply_updates("g", update_batch(b, n as u32, blocks as u32, 32))
                    .unwrap();
            }
        });
        let batches_per_sec = batches as f64 / secs;

        // Recovery cost for the durable configurations.
        let (cold_replay, checkpointed) = if sync.is_some() {
            let (cold, _, _) = timed(args.runs, || {
                let reg = Registry::open(4, durability(0)).unwrap();
                assert_eq!(reg.snapshot("g").unwrap().epoch, batches as u64);
            });
            let reg = Registry::open(4, durability(0)).unwrap();
            reg.checkpoint_now().unwrap().unwrap();
            drop(reg);
            let (warm, _, _) = timed(args.runs, || {
                let reg = Registry::open(4, durability(0)).unwrap();
                assert_eq!(reg.snapshot("g").unwrap().epoch, batches as u64);
            });
            (Some(cold), Some(warm))
        } else {
            (None, None)
        };

        let fmt_ms = |s: Option<f64>| {
            s.map(|s| format!("{:.1} ms", s * 1e3))
                .unwrap_or_else(|| "—".into())
        };
        rows.push(vec![
            name.to_string(),
            format!("{batches_per_sec:.0}"),
            format!("{:.3} ms", secs / batches as f64 * 1e3),
            fmt_ms(cold_replay),
            fmt_ms(checkpointed),
        ]);
        json.push(serde_json::json!({
            "config": name,
            "batches_per_sec": batches_per_sec,
            "seconds_per_batch": secs / batches as f64,
            "cold_replay_seconds": cold_replay,
            "checkpointed_open_seconds": checkpointed,
        }));
        std::fs::remove_dir_all(&dir).ok();
        eprintln!("done: {name}");
    }
    println!(
        "{}",
        render(
            &[
                "Durability",
                "Batches/s",
                "Per batch",
                "Recover (replay)",
                "Recover (ckpt)"
            ],
            &rows
        )
    );
    println!(
        "expected shape: fsync dominates per-batch cost; a checkpoint turns recovery \
         from O(log) replay into O(state) load.\n"
    );

    // --- Group commit under concurrent writers -----------------------
    //
    // Appends serialize under the log lock either way; what group
    // commit amortizes is the fsync. A tiny graph and short batches
    // keep the apply+append share of the commit path small so the
    // phase measures the cost it is about. Window zero still
    // coalesces: writers that append while a sync is in flight share
    // the next one.
    let small = gee_gen::sbm(
        &gee_gen::SbmParams::balanced(4, 64, 0.05, 0.01),
        args.seed ^ 0x77,
    );
    let small_n = small.edges.num_vertices() as u32;
    let small_labels = Labels::from_options_with_k(
        &gee_gen::subsample_labels(&small.truth, 0.3, args.seed ^ 0x99),
        4,
    );
    let group_batches = (4096 / args.scale).max(512);
    println!(
        "group-commit — SBM 4×64 ({small_n} vertices), {group_batches} update batches of 8 \
         split across concurrent writers\n"
    );
    let policies: [(&str, SyncPolicy); 3] = [
        ("fsync each", SyncPolicy::Always),
        (
            "group (0)",
            SyncPolicy::Group {
                window: Duration::ZERO,
            },
        ),
        (
            "group (50µs)",
            SyncPolicy::Group {
                window: Duration::from_micros(50),
            },
        ),
    ];
    let mut grows = Vec::new();
    let mut gjson = Vec::new();
    for writers in [1usize, 8] {
        let mut always_bps = None;
        for (pname, sync) in &policies {
            let dir = tmp_dir(&format!(
                "group_{writers}_{}",
                pname.split(' ').next().unwrap()
            ));
            let per_writer = group_batches / writers;
            let committed = per_writer * writers;
            let mut best_secs = f64::INFINITY;
            let mut fsyncs = 0u64;
            for _ in 0..args.runs.max(1) {
                std::fs::remove_dir_all(&dir).ok();
                let engine = Engine::open(
                    4,
                    Durability::Wal {
                        dir: dir.clone(),
                        sync: *sync,
                        checkpoint_every: 0,
                    },
                )
                .unwrap();
                engine
                    .registry()
                    .register("g", &small.edges, &small_labels)
                    .unwrap();
                let base = engine.registry().wal_fsyncs();
                let start = Instant::now();
                std::thread::scope(|scope| {
                    for w in 0..writers {
                        let engine = &engine;
                        scope.spawn(move || {
                            for b in 0..per_writer as u32 {
                                engine
                                    .apply_updates(
                                        "g",
                                        update_batch(w as u32 * 0x10_0000 + b, small_n, 4, 8),
                                    )
                                    .unwrap();
                            }
                        });
                    }
                });
                let secs = start.elapsed().as_secs_f64();
                if secs < best_secs {
                    best_secs = secs;
                    fsyncs = engine.registry().wal_fsyncs() - base;
                }
            }
            let bps = committed as f64 / best_secs;
            let vs = match always_bps {
                None => {
                    always_bps = Some(bps);
                    "1.00x".to_string()
                }
                Some(base) => format!("{:.2}x", bps / base),
            };
            grows.push(vec![
                writers.to_string(),
                (*pname).to_string(),
                format!("{bps:.0}"),
                format!("{:.3} ms", best_secs / committed as f64 * 1e3),
                fsyncs.to_string(),
                vs,
            ]);
            gjson.push(serde_json::json!({
                "writers": writers,
                "policy": *pname,
                "batches": committed,
                "batches_per_sec": bps,
                "wal_fsyncs": fsyncs,
            }));
            std::fs::remove_dir_all(&dir).ok();
            eprintln!("done: {writers} writer(s), {pname}");
        }
    }
    println!(
        "{}",
        render(
            &[
                "Writers",
                "Sync",
                "Batches/s",
                "Per batch",
                "Fsyncs",
                "vs fsync-each"
            ],
            &grows
        )
    );
    println!(
        "expected shape: with one writer group commit ~matches fsync-each (every batch \
         still waits for a sync); with concurrent writers one fsync covers many commits, \
         so fsyncs collapse and batches/s scale."
    );
    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::json!({
                "durability_overhead": json,
                "group_commit": gjson,
            }))
            .unwrap()
        );
    }
}
