//! Regenerates **Figure 2** of the paper: runtimes on the largest graph
//! (Friendster stand-in) normalized to the Numba-serial analog.
//!
//! ```text
//! cargo run --release -p gee-bench --bin fig2 -- --scale 64
//! ```

use gee_bench::runner::Impl;
use gee_bench::table::{fmt_secs, render};
use gee_bench::{table1_workloads, time_implementation, Args};
use gee_core::Labels;
use gee_gen::LabelSpec;
use gee_graph::CsrGraph;

fn main() {
    let args = Args::parse();
    let w = table1_workloads()
        .into_iter()
        .last()
        .expect("have workloads");
    let spec = LabelSpec {
        num_classes: args.k,
        labeled_fraction: args.labeled_fraction,
    };
    println!(
        "Figure 2 reproduction — {} stand-in at 1/{} scale, normalized to the Numba analog\n",
        w.name, args.scale
    );
    let el = w.generate(args.scale, args.seed);
    let g = CsrGraph::from_edge_list(&el);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(el.num_vertices(), spec, args.seed ^ 0xBEEF),
        args.k,
    );
    let ms: Vec<_> = [
        Impl::Interp,
        Impl::Optimized,
        Impl::LigraSerial,
        Impl::LigraParallel,
    ]
    .into_iter()
    .map(|i| time_implementation(i, &el, &g, &labels, args.runs, args.threads))
    .collect();
    let numba = ms[1].seconds;
    // Paper's Figure 2 normalized values (relative to Numba serial = 1):
    // Python ≈ 30, Ligra serial ≈ 0.69, Ligra parallel ≈ 1/17.
    let paper_norm = [3374.72 / 112.33, 1.0, 77.23 / 112.33, 6.42 / 112.33];
    let rows: Vec<Vec<String>> = ms
        .iter()
        .zip(paper_norm)
        .map(|(m, p)| {
            vec![
                m.implementation.label().to_string(),
                fmt_secs(m.seconds),
                format!("{:.3}", m.seconds / numba),
                format!("{p:.3}"),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "Implementation",
                "Runtime",
                "Normalized (ours)",
                "Normalized (paper)"
            ],
            &rows
        )
    );
    if args.json {
        let json: Vec<_> = ms
            .iter()
            .zip(paper_norm)
            .map(|(m, p)| {
                serde_json::json!({
                    "impl": m.implementation.label(),
                    "seconds": m.seconds,
                    "normalized": m.seconds / numba,
                    "paper_normalized": p,
                })
            })
            .collect();
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::json!({ "fig2": json })).unwrap()
        );
    }
}
