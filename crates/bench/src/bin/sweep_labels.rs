//! Extension sweep (beyond the paper's evaluation): how label fraction
//! affects runtime and embedding quality. The paper fixes 10% labels; this
//! sweep shows runtime is insensitive to supervision (the edge pass always
//! touches every edge) while quality rises with it — evidence that the
//! 10% configuration is a quality choice, not a performance one.
//!
//! ```text
//! cargo run --release -p gee-bench --bin sweep-labels
//! ```

use gee_bench::table::{fmt_secs, render};
use gee_bench::{timed, Args};
use gee_core::{AtomicsMode, Labels};
use gee_graph::CsrGraph;

fn main() {
    let args = Args::parse();
    let blocks = 8usize;
    let per_block = (200_000 / args.scale).clamp(200, 50_000);
    let sbm = gee_gen::sbm(
        &gee_gen::SbmParams::balanced(blocks, per_block, 0.02, 0.001),
        args.seed,
    );
    let g = CsrGraph::from_edge_list(&sbm.edges);
    let n = g.num_vertices();
    println!(
        "Label-fraction sweep — SBM {blocks}×{per_block} ({} edges), K = {blocks}\n",
        g.num_edges()
    );
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for frac in [0.01, 0.02, 0.05, 0.10, 0.25, 0.5, 1.0] {
        let labels = Labels::from_options_with_k(
            &gee_gen::subsample_labels(&sbm.truth, frac, args.seed ^ 0x55),
            blocks,
        );
        let (secs, _, z) = timed(args.runs, || {
            gee_ligra::with_threads(args.threads, || {
                gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic)
            })
        });
        let mut zn = z.clone();
        zn.normalize_rows();
        let km = gee_eval_kmeans(&zn, n, blocks, args.seed);
        let ari = gee_eval::adjusted_rand_index(&km, &sbm.truth);
        rows.push(vec![
            format!("{:.0}%", frac * 100.0),
            labels.num_labeled().to_string(),
            fmt_secs(secs),
            format!("{ari:.3}"),
        ]);
        json.push(serde_json::json!({
            "labeled_fraction": frac,
            "labeled": labels.num_labeled(),
            "seconds": secs,
            "ari": ari,
        }));
        eprintln!("done: {:.0}% labels", frac * 100.0);
    }
    println!(
        "{}",
        render(
            &["labeled", "vertices", "embed time", "ARI vs truth"],
            &rows
        )
    );
    println!("expected shape: flat runtime, rising ARI.");
    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::json!({ "sweep_labels": json })).unwrap()
        );
    }
}

fn gee_eval_kmeans(z: &gee_core::Embedding, n: usize, k: usize, seed: u64) -> Vec<u32> {
    gee_eval::kmeans_best_of(z.as_slice(), n, k, gee_eval::KMeansOptions::new(k, seed), 4)
        .assignment
}
