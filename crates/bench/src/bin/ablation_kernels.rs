//! Extension ablation: four parallel GEE kernels on the same symmetric
//! graph — the design-space study around the paper's choice (push +
//! atomic `writeAdd`):
//!
//! * push + CAS `writeAdd` (the paper's Algorithm 2),
//! * push + racy relaxed updates (the paper's "atomics off"),
//! * pull over in-edges, atomics-free (single writer per Z row),
//! * propagation blocking (bin by destination range, then drain).
//!
//! ```text
//! cargo run --release -p gee-bench --bin ablation-kernels -- --scale 128
//! ```

use gee_bench::table::{fmt_secs, render};
use gee_bench::{table1_workloads, timed, Args};
use gee_core::{AtomicsMode, Labels};
use gee_gen::LabelSpec;
use gee_graph::CsrGraph;

fn main() {
    let args = Args::parse();
    let w = table1_workloads()
        .into_iter()
        .last()
        .expect("have workloads");
    let spec = LabelSpec {
        num_classes: args.k,
        labeled_fraction: args.labeled_fraction,
    };
    println!(
        "Kernel ablation — {} stand-in (1/{} scale), symmetrized, K = {}\n",
        w.name, args.scale, args.k
    );
    // Symmetrize: the pull kernel requires the undirected encoding.
    let el = w.generate(args.scale, args.seed).symmetrized();
    let g = CsrGraph::from_edge_list(&el);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(el.num_vertices(), spec, args.seed ^ 0xBEEF),
        args.k,
    );
    println!(
        "{} vertices, {} directed edges\n",
        g.num_vertices(),
        g.num_edges()
    );
    let _ = gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic); // warm-up

    let (t_push, _, z_ref) = timed(args.runs, || {
        gee_ligra::with_threads(args.threads, || {
            gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic)
        })
    });
    let (t_racy, _, _) = timed(args.runs, || {
        gee_ligra::with_threads(args.threads, || {
            gee_core::ligra::embed(&g, &labels, AtomicsMode::Racy)
        })
    });
    let (t_pull, _, z_pull) = timed(args.runs, || {
        gee_ligra::with_threads(args.threads, || gee_core::kernels::embed_pull(&g, &labels))
    });
    let (t_bin, _, z_bin) = timed(args.runs, || {
        gee_ligra::with_threads(args.threads, || {
            gee_core::kernels::embed_binned(el.num_vertices(), el.edges(), &labels, 16)
        })
    });
    z_ref.assert_close(&z_pull, 1e-9);
    z_ref.assert_close(&z_bin, 1e-9);

    let rows = vec![
        vec![
            "push + atomic writeAdd (paper)".into(),
            fmt_secs(t_push),
            "1.00".into(),
        ],
        vec![
            "push + racy updates (§IV ablation)".into(),
            fmt_secs(t_racy),
            format!("{:.2}", t_racy / t_push),
        ],
        vec![
            "pull, atomics-free".into(),
            fmt_secs(t_pull),
            format!("{:.2}", t_pull / t_push),
        ],
        vec![
            "propagation blocking".into(),
            fmt_secs(t_bin),
            format!("{:.2}", t_bin / t_push),
        ],
    ];
    println!(
        "{}",
        render(&["Kernel", "Runtime", "vs paper kernel"], &rows)
    );
    println!("all kernels verified equal to the reference embedding (1e-9 relative).");
    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::json!({
                "ablation_kernels": {
                    "push_atomic": t_push,
                    "push_racy": t_racy,
                    "pull_atomics_free": t_pull,
                    "propagation_blocking": t_bin,
                }
            }))
            .unwrap()
        );
    }
}
