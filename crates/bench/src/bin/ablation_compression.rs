//! Extension ablation: byte-compressed (Ligra+-style) adjacency vs raw
//! CSR for the GEE kernel. §IV's memory-bound analysis (and its CPMA
//! citation) predicts that trading decode ALU work for memory bandwidth
//! can pay off once the graph exceeds cache.
//!
//! ```text
//! cargo run --release -p gee-bench --bin ablation-compression -- --scale 128
//! ```

use gee_bench::table::{fmt_secs, render};
use gee_bench::{table1_workloads, timed, Args};
use gee_core::{AtomicsMode, Labels};
use gee_gen::LabelSpec;
use gee_graph::{CompressedCsr, CsrGraph};

fn main() {
    let args = Args::parse();
    let spec = LabelSpec {
        num_classes: args.k,
        labeled_fraction: args.labeled_fraction,
    };
    println!(
        "Compression ablation — GEE kernel on raw vs byte-compressed adjacency (1/{} scale)\n",
        args.scale
    );
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for w in table1_workloads() {
        let el = w.generate(args.scale, args.seed);
        let g = CsrGraph::from_edge_list(&el);
        let c = CompressedCsr::from_csr(&g);
        let labels = Labels::from_options_with_k(
            &gee_gen::random_labels(el.num_vertices(), spec, args.seed ^ 0xBEEF),
            args.k,
        );
        // Warm-up both paths.
        let _ = gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic);
        let _ = gee_core::ligra::embed_compressed(&c, &labels, AtomicsMode::Atomic);
        let (t_raw, _, z_raw) = timed(args.runs, || {
            gee_ligra::with_threads(args.threads, || {
                gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic)
            })
        });
        let (t_cmp, _, z_cmp) = timed(args.runs, || {
            gee_ligra::with_threads(args.threads, || {
                gee_core::ligra::embed_compressed(&c, &labels, AtomicsMode::Atomic)
            })
        });
        z_raw.assert_close(&z_cmp, 1e-9);
        let raw_bytes = g.num_edges() * 4;
        rows.push(vec![
            w.name.to_string(),
            format!("{:.1}M", g.num_edges() as f64 / 1e6),
            format!("{:.1} MiB", raw_bytes as f64 / (1024.0 * 1024.0)),
            format!("{:.1} MiB", c.adjacency_bytes() as f64 / (1024.0 * 1024.0)),
            format!("{:.2}", c.compression_ratio()),
            fmt_secs(t_raw),
            fmt_secs(t_cmp),
            format!("{:.2}", t_cmp / t_raw),
        ]);
        json.push(serde_json::json!({
            "graph": w.name,
            "edges": g.num_edges(),
            "raw_adjacency_bytes": raw_bytes,
            "compressed_adjacency_bytes": c.adjacency_bytes(),
            "compression_ratio": c.compression_ratio(),
            "raw_seconds": t_raw,
            "compressed_seconds": t_cmp,
            "slowdown": t_cmp / t_raw,
        }));
        eprintln!("done: {}", w.name);
    }
    println!(
        "{}",
        render(
            &[
                "Graph",
                "edges",
                "raw adj",
                "compressed",
                "ratio",
                "GEE raw",
                "GEE compressed",
                "time ratio"
            ],
            &rows
        )
    );
    println!(
        "ratio < 1 in column 5 = space saved; column 8 shows the decode-time cost on this machine."
    );
    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::json!({ "ablation_compression": json }))
                .unwrap()
        );
    }
}
