//! Wire-protocol overhead: queries/sec for the same workload executed
//! three ways against one engine build —
//!
//! * **in-process** — `Engine::execute_batch`, no serialization;
//! * **duplex**     — `Client` over the in-process channel transport
//!   (pays encode/decode + a thread hop, no kernel sockets);
//! * **tcp**        — `Client` over loopback TCP (adds length-prefix
//!   framing and the socket stack).
//!
//! The duplex−in-process gap prices the codec; the tcp−duplex gap
//! prices the kernel. A `pipelined` column shows how much of the TCP gap
//! request pipelining wins back for small batches.
//!
//! TCP rows run twice: once over the current protocol (v6, binary
//! frames) and once with the client capped at v5 so the same workload
//! rides the JSON codec — the gap prices the binary frame format
//! itself.
//!
//! ```text
//! cargo run --release -p gee-bench --bin wire_overhead -- --scale 64
//! ```

use std::sync::Arc;

use gee_bench::table::render;
use gee_bench::{timed, Args};
use gee_core::Labels;
use gee_serve::{duplex, Client, Engine, Envelope, Registry, Request, Server};

fn build_engine(args: &Args, blocks: usize, per_block: usize, shards: usize) -> Arc<Engine> {
    let sbm = gee_gen::sbm(
        &gee_gen::SbmParams::balanced(blocks, per_block, 0.01, 0.0005),
        args.seed,
    );
    let labels = Labels::from_options_with_k(
        &gee_gen::subsample_labels(
            &sbm.truth,
            args.labeled_fraction.max(0.05),
            args.seed ^ 0x5E,
        ),
        blocks,
    );
    let registry = Arc::new(Registry::new(shards));
    registry.register("g", &sbm.edges, &labels).unwrap();
    Arc::new(Engine::new(registry))
}

/// One benchmark phase: `batches` batches of `queries` point reads each.
fn phase_batches(n: usize, batches: usize, queries: usize) -> Vec<Vec<Envelope>> {
    (0..batches)
        .map(|b| {
            (0..queries)
                .map(|i| {
                    let v = ((b * 131 + i * 17) % n) as u32;
                    Envelope::new("g", Request::embed_row(v))
                })
                .collect()
        })
        .collect()
}

fn main() {
    let args = Args::parse();
    let blocks = 8usize;
    let per_block = (200_000 / blocks / args.scale).max(50);
    let shards = 4usize;
    let engine = build_engine(&args, blocks, per_block, shards);
    let n = blocks * per_block;
    let (num_batches, batch_size) = (64usize, 32usize);
    let total = (num_batches * batch_size) as f64;
    println!(
        "wire-overhead — SBM {blocks}×{per_block} ({n} vertices), {shards} shards; \
         {num_batches} batches × {batch_size} EmbedRow queries per run\n"
    );

    // -- In-process baseline.
    let (inproc_secs, _, _) = timed(args.runs, || {
        for batch in phase_batches(n, num_batches, batch_size) {
            let r = engine.execute_batch(batch);
            assert!(r.iter().all(Result::is_ok));
        }
    });

    // -- Duplex transport (codec cost, no sockets).
    let (duplex_end, client_end) = duplex();
    let duplex_server = {
        let engine = engine.clone();
        std::thread::spawn(move || {
            let mut transport = duplex_end;
            let _ = Server::new(engine).serve_connection(&mut transport);
        })
    };
    let mut duplex_client = Client::over(client_end).expect("duplex handshake");
    let (duplex_secs, _, _) = timed(args.runs, || {
        for batch in phase_batches(n, num_batches, batch_size) {
            let r = duplex_client
                .execute_batch(batch)
                .expect("duplex execution");
            assert!(r.iter().all(Result::is_ok));
        }
    });

    // -- Loopback TCP: v6 binary frames (the default negotiation) and a
    //    client capped at v5 so the same workload rides JSON frames,
    //    each sequential then pipelined.
    let handle = Server::listen(engine.clone(), "127.0.0.1:0", None).expect("bind loopback");
    let mut tcp_client = Client::connect(handle.addr()).expect("tcp handshake");
    assert_eq!(
        tcp_client.protocol_version(),
        gee_serve::wire::PROTOCOL_VERSION
    );
    let mut json_client = Client::over_versions(
        gee_serve::TcpTransport::connect(handle.addr()).expect("tcp connect"),
        gee_serve::wire::MIN_PROTOCOL_VERSION,
        gee_serve::wire::BINARY_FRAME_VERSION - 1,
    )
    .expect("v5 handshake");
    assert_eq!(
        json_client.protocol_version(),
        gee_serve::wire::BINARY_FRAME_VERSION - 1
    );
    let tcp_phase = |client: &mut Client| {
        let (secs, _, _) = timed(args.runs, || {
            for batch in phase_batches(n, num_batches, batch_size) {
                let r = client.execute_batch(batch).expect("tcp execution");
                assert!(r.iter().all(Result::is_ok));
            }
        });
        let (pipe_secs, _, _) = timed(args.runs, || {
            let replies = client
                .pipeline(phase_batches(n, num_batches, batch_size))
                .expect("pipelined execution");
            assert!(replies.iter().flatten().all(Result::is_ok));
        });
        (secs, pipe_secs)
    };
    let (tcp_secs, tcp_pipe_secs) = tcp_phase(&mut tcp_client);
    let (tcp_json_secs, tcp_json_pipe_secs) = tcp_phase(&mut json_client);

    let rows: Vec<Vec<String>> = [
        ("in-process", inproc_secs),
        ("duplex", duplex_secs),
        ("tcp (v6 binary)", tcp_secs),
        ("tcp pipelined (v6 binary)", tcp_pipe_secs),
        ("tcp (v5 json)", tcp_json_secs),
        ("tcp pipelined (v5 json)", tcp_json_pipe_secs),
    ]
    .into_iter()
    .map(|(path, secs)| {
        vec![
            path.to_string(),
            format!("{:.2} ms", secs * 1e3),
            format!("{:.0}", total / secs),
            format!("{:.2}×", secs / inproc_secs),
        ]
    })
    .collect();
    println!(
        "{}",
        render(&["Path", "Run time", "Queries/s", "vs in-process"], &rows)
    );
    println!(
        "expected shape: duplex prices the codec, tcp adds the kernel, pipelining \
              claws back per-batch round trips."
    );

    if let Some(path) = &args.json_path {
        let meta = serde_json::json!({
            "scale": args.scale,
            "runs": args.runs,
            "seed": args.seed,
            "queries_per_run": total,
        });
        let mut report = gee_loadgen::bench_envelope("wire_overhead", meta);
        let rows: Vec<serde_json::Value> = [
            ("in_process", inproc_secs),
            ("duplex", duplex_secs),
            ("tcp", tcp_secs),
            ("tcp_pipelined", tcp_pipe_secs),
            ("tcp_v5_json", tcp_json_secs),
            ("tcp_pipelined_v5_json", tcp_json_pipe_secs),
        ]
        .into_iter()
        .map(|(transport, secs)| {
            serde_json::json!({
                "transport": transport,
                "seconds": secs,
                "qps": total / secs,
                "vs_in_process": secs / inproc_secs,
            })
        })
        .collect();
        gee_loadgen::report::push_field(&mut report, "rows", serde_json::Value::Array(rows));
        gee_loadgen::write_json(path, &report).expect("write --json report");
        eprintln!("wrote {path}");
    }

    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::json!({ "wire_overhead": {
                "queries_per_run": total,
                "in_process_seconds": inproc_secs,
                "duplex_seconds": duplex_secs,
                "tcp_seconds": tcp_secs,
                "tcp_pipelined_seconds": tcp_pipe_secs,
                "tcp_v5_json_seconds": tcp_json_secs,
                "tcp_pipelined_v5_json_seconds": tcp_json_pipe_secs,
            }}))
            .unwrap()
        );
    }

    drop(duplex_client);
    duplex_server.join().expect("duplex server thread");
    tcp_client.goodbye().expect("clean goodbye");
    json_client.goodbye().expect("clean v5 goodbye");
    handle.shutdown();
}
