//! Regenerates **Figure 3** of the paper: strong-scaling speedup of
//! GEE-Ligra on the largest graph as the core count grows (paper: 11× on
//! 24 cores, flattening as the workload turns memory-bound).
//!
//! ```text
//! cargo run --release -p gee-bench --bin fig3 -- --scale 64
//! ```

use gee_bench::table::{fmt_secs, render};
use gee_bench::{table1_workloads, timed, verify_embedding, Args};
use gee_core::{AtomicsMode, Labels};
use gee_gen::LabelSpec;
use gee_graph::CsrGraph;

fn main() {
    let args = Args::parse();
    let w = table1_workloads()
        .into_iter()
        .last()
        .expect("have workloads");
    let spec = LabelSpec {
        num_classes: args.k,
        labeled_fraction: args.labeled_fraction,
    };
    let max_threads = if args.threads > 0 {
        args.threads
    } else {
        std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(8)
    };
    println!(
        "Figure 3 reproduction — GEE-Ligra strong scaling on the {} stand-in (1/{} scale), 1..{} threads\n",
        w.name, args.scale, max_threads
    );
    let el = w.generate(args.scale, args.seed);
    let g = CsrGraph::from_edge_list(&el);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(el.num_vertices(), spec, args.seed ^ 0xBEEF),
        args.k,
    );
    // Sweep thread counts: 1, 2, 3, … up to max (odd counts included to
    // mirror the paper's 1..25 x-axis).
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut t1 = 0.0f64;
    for threads in 1..=max_threads {
        let (secs, _, z) = timed(args.runs, || {
            gee_ligra::with_threads(threads, || {
                gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic)
            })
        });
        verify_embedding(&z, &el, &labels, "fig3");
        if threads == 1 {
            t1 = secs;
        }
        let speedup = t1 / secs;
        rows.push(vec![
            threads.to_string(),
            fmt_secs(secs),
            format!("{speedup:.2}×"),
            format!("{:.0}%", 100.0 * speedup / threads as f64),
        ]);
        json.push(serde_json::json!({ "threads": threads, "seconds": secs, "speedup": speedup }));
        eprintln!("done: {threads} threads");
    }
    println!(
        "{}",
        render(&["Threads", "Runtime", "Speedup", "Efficiency"], &rows)
    );
    println!("paper reference: 11× speedup at 24 cores (hyperthreading disabled)");
    // §IV's memory-bound explanation, made quantitative: a roofline lower
    // bound from measured bandwidth and the kernel's bytes/edge. Scaling
    // must flatten as measured runtime approaches this bound.
    let bandwidth = gee_bench::measure_bandwidth(args.runs);
    let bound =
        gee_bench::predicted_edge_pass_seconds(el.num_edges(), !el.is_unit_weighted(), bandwidth);
    println!(
        "\nmemory-bound roofline: {:.2} GB/s sustainable × {:.0} B/edge → ≥ {} for the edge pass",
        bandwidth / 1e9,
        gee_bench::gee_bytes_per_edge(!el.is_unit_weighted()),
        fmt_secs(bound)
    );
    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::json!({
                "fig3": json,
                "roofline": {
                    "bandwidth_bytes_per_sec": bandwidth,
                    "bytes_per_edge": gee_bench::gee_bytes_per_edge(!el.is_unit_weighted()),
                    "lower_bound_seconds": bound,
                }
            }))
            .unwrap()
        );
    }
}
