//! Extension sweep (beyond the paper's evaluation): embedding dimension K.
//! The edge pass is O(s) regardless of K (each edge touches one Z entry
//! per direction), but the projection init and the Z allocation are O(nK)
//! — so runtime should be flat in K until nK rivals s (§III's crossover).
//!
//! ```text
//! cargo run --release -p gee-bench --bin sweep-k
//! ```

use gee_bench::table::{fmt_secs, render};
use gee_bench::{timed, Args};
use gee_core::{AtomicsMode, Labels};
use gee_gen::LabelSpec;
use gee_graph::CsrGraph;

fn main() {
    let args = Args::parse();
    let n = (2_000_000 / args.scale).max(20_000);
    let m = n * 16;
    let el = gee_gen::erdos_renyi_gnm(n, m, args.seed);
    let g = CsrGraph::from_edge_list(&el);
    println!("K sweep — ER graph n = {n}, s = {m}, 10% labeled\n");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for k in [2usize, 8, 32, 50, 128, 512] {
        let labels = Labels::from_options_with_k(
            &gee_gen::random_labels(
                n,
                LabelSpec {
                    num_classes: k,
                    labeled_fraction: args.labeled_fraction,
                },
                args.seed ^ k as u64,
            ),
            k,
        );
        let (secs, _, z) = timed(args.runs, || {
            gee_ligra::with_threads(args.threads, || {
                gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic)
            })
        });
        assert_eq!(z.dim(), k);
        rows.push(vec![
            k.to_string(),
            format!("{:.2}", (n * k) as f64 / m as f64),
            fmt_secs(secs),
            format!("{:.1} MiB", (n * k * 8) as f64 / (1024.0 * 1024.0)),
        ]);
        json.push(serde_json::json!({
            "k": k,
            "nk_over_s": (n * k) as f64 / m as f64,
            "seconds": secs,
            "z_mebibytes": (n * k * 8) as f64 / (1024.0 * 1024.0),
        }));
        eprintln!("done: K = {k}");
    }
    println!(
        "{}",
        render(&["K", "nK / s", "embed time", "Z memory"], &rows)
    );
    println!("expected shape: near-flat until nK/s approaches 1, then the O(nK) terms dominate.");
    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::json!({ "sweep_k": json })).unwrap()
        );
    }
}
