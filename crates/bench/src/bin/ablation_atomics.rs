//! Regenerates the **§IV atomics ablation**: "we ran the program with
//! atomics off, performing unsafe updates, and saw no appreciable
//! performance difference". Times GEE-Ligra parallel with CAS `writeAdd`
//! vs relaxed load+store, and reports the accuracy cost of the racy mode
//! (lost updates as a fraction of total mass).
//!
//! ```text
//! cargo run --release -p gee-bench --bin ablation-atomics -- --scale 64
//! ```

use gee_bench::table::{fmt_secs, render};
use gee_bench::{table1_workloads, timed, Args};
use gee_core::{AtomicsMode, Labels};
use gee_gen::LabelSpec;
use gee_graph::CsrGraph;

fn main() {
    let args = Args::parse();
    let w = table1_workloads()
        .into_iter()
        .last()
        .expect("have workloads");
    let spec = LabelSpec {
        num_classes: args.k,
        labeled_fraction: args.labeled_fraction,
    };
    println!(
        "§IV atomics ablation — GEE-Ligra parallel on the {} stand-in (1/{} scale)\n",
        w.name, args.scale
    );
    let el = w.generate(args.scale, args.seed);
    let g = CsrGraph::from_edge_list(&el);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(el.num_vertices(), spec, args.seed ^ 0xBEEF),
        args.k,
    );
    // Untimed warm-up: fault in the allocator pools for the n×K embedding
    // so the first timed mode doesn't pay the one-time page-fault cost.
    let _ = gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic);
    let (t_atomic, _, z_atomic) = timed(args.runs, || {
        gee_ligra::with_threads(args.threads, || {
            gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic)
        })
    });
    let (t_racy, _, z_racy) = timed(args.runs, || {
        gee_ligra::with_threads(args.threads, || {
            gee_core::ligra::embed(&g, &labels, AtomicsMode::Racy)
        })
    });
    let mass_atomic = z_atomic.total_mass();
    let lost = (mass_atomic - z_racy.total_mass()).abs() / mass_atomic.max(1e-300);
    let rows = vec![
        vec![
            "atomic writeAdd (CAS)".to_string(),
            fmt_secs(t_atomic),
            "exact".to_string(),
        ],
        vec![
            "racy (relaxed ld/st)".to_string(),
            fmt_secs(t_racy),
            format!("{:.3e} mass lost", lost),
        ],
    ];
    println!("{}", render(&["Mode", "Runtime", "Accuracy"], &rows));
    println!(
        "overhead of atomics: {:+.1}% (paper: \"no appreciable performance difference\")",
        100.0 * (t_atomic - t_racy) / t_racy
    );
    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::json!({
                "ablation_atomics": {
                    "atomic_seconds": t_atomic,
                    "racy_seconds": t_racy,
                    "overhead_fraction": (t_atomic - t_racy) / t_racy,
                    "racy_mass_lost_fraction": lost,
                }
            }))
            .unwrap()
        );
    }
}
