//! **Extension ablation: fused multi-labeling passes.** §IV's analysis
//! says the edge pass is memory bound; when L embeddings of one graph
//! are needed, L separate passes pay the edge-stream traffic L times
//! while the fused batch kernel (`gee_core::batch`) pays it once. This
//! bench sweeps L and reports the fused-over-separate saving.
//!
//! ```text
//! cargo run --release -p gee-bench --bin ablation-batch -- --scale 128
//! ```

use gee_bench::table::{fmt_secs, render};
use gee_bench::{table1_workloads, timed, Args};
use gee_core::{batch, serial_optimized, Labels};
use gee_gen::LabelSpec;

fn main() {
    let args = Args::parse();
    let w = table1_workloads()
        .into_iter()
        .last()
        .expect("have workloads");
    println!(
        "batch-embedding ablation — {} stand-in (1/{} scale), K = {}\n",
        w.name, args.scale, args.k
    );
    let el = w.generate(args.scale, args.seed);
    let n = el.num_vertices();
    let mut json = Vec::new();
    // Two regimes: the paper's K=50 (Z traffic dominates — fusing dilates
    // the random-access footprint and LOSES) and a small K (edge-stream
    // traffic dominates — fusing amortizes it and wins).
    for k in [args.k, 4] {
        let spec = LabelSpec {
            num_classes: k,
            labeled_fraction: args.labeled_fraction,
        };
        let mut rows = Vec::new();
        for l in [1usize, 2, 4, 8] {
            let labelings: Vec<Labels> = (0..l)
                .map(|i| {
                    Labels::from_options_with_k(
                        &gee_gen::random_labels(n, spec, args.seed ^ (i as u64 + 1)),
                        k,
                    )
                })
                .collect();
            let refs: Vec<&Labels> = labelings.iter().collect();
            let (t_sep, _, _) = timed(args.runs, || {
                labelings
                    .iter()
                    .map(|lab| serial_optimized::embed(&el, lab))
                    .collect::<Vec<_>>()
            });
            let (t_fused, _, fused) = timed(args.runs, || batch::embed_many(&el, &refs));
            let (t_fused_par, _, fused_par) =
                timed(args.runs, || batch::embed_many_parallel(&el, &refs, 16));
            // Correctness: fused results must be bit-identical to separate.
            for (lab, z) in labelings.iter().zip(&fused) {
                assert_eq!(
                    serial_optimized::embed(&el, lab).as_slice(),
                    z.as_slice(),
                    "fused result diverged"
                );
            }
            for (a, b) in fused.iter().zip(&fused_par) {
                assert_eq!(a.as_slice(), b.as_slice(), "parallel fused result diverged");
            }
            rows.push(vec![
                l.to_string(),
                fmt_secs(t_sep),
                fmt_secs(t_fused),
                fmt_secs(t_fused_par),
                format!("{:.2}×", t_sep / t_fused),
            ]);
            json.push(serde_json::json!({
                "k": k,
                "labelings": l,
                "separate_seconds": t_sep,
                "fused_seconds": t_fused,
                "fused_parallel_seconds": t_fused_par,
            }));
        }
        println!("K = {k}:");
        println!(
            "{}",
            render(
                &[
                    "L",
                    "L separate passes",
                    "fused serial",
                    "fused parallel",
                    "saving (serial)"
                ],
                &rows
            )
        );
    }
    println!(
        "expected shape: fusing wins when the per-labeling Z footprint (n·K·8 B) is small\n\
         relative to the edge stream, and loses once the fused Z working set (×L) blows\n\
         the cache — the same footprint trade-off as §IV's memory-bound analysis."
    );
    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::json!({ "ablation_batch": json })).unwrap()
        );
    }
}
