//! **Extension ablation: the price of bit-reproducibility.** The paper's
//! `writeAdd` kernel is numerically schedule-dependent; the deterministic
//! sort-reduce kernel (`gee_core::deterministic`) is bit-identical to the
//! serial reference at any thread count. This bench measures what that
//! guarantee costs relative to the atomic kernel and the propagation-
//! blocking kernel (which is also deterministic, as a fixed-chunk
//! two-phase pipeline).
//!
//! ```text
//! cargo run --release -p gee-bench --bin ablation-determinism -- --scale 64
//! ```

use gee_bench::table::{fmt_secs, render};
use gee_bench::{table1_workloads, timed, verify_embedding, Args};
use gee_core::{deterministic, kernels, serial_reference, AtomicsMode, Labels};
use gee_gen::LabelSpec;
use gee_graph::CsrGraph;

fn main() {
    let args = Args::parse();
    let w = table1_workloads()
        .into_iter()
        .last()
        .expect("have workloads");
    println!(
        "determinism ablation — {} stand-in (1/{} scale), K = {}\n",
        w.name, args.scale, args.k
    );
    let el = w.generate(args.scale, args.seed);
    let g = CsrGraph::from_edge_list(&el);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(
            el.num_vertices(),
            LabelSpec {
                num_classes: args.k,
                labeled_fraction: args.labeled_fraction,
            },
            args.seed ^ 0xD00D,
        ),
        args.k,
    );
    let reference = serial_reference::embed(&el, &labels);

    let (t_atomic, _, z_atomic) = timed(args.runs, || {
        gee_ligra::with_threads(args.threads, || {
            gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic)
        })
    });
    verify_embedding(&z_atomic, &el, &labels, "atomic");
    let (t_binned, _, z_binned) = timed(args.runs, || {
        gee_ligra::with_threads(args.threads, || {
            kernels::embed_binned(el.num_vertices(), el.edges(), &labels, 16)
        })
    });
    verify_embedding(&z_binned, &el, &labels, "binned");
    let (t_det, _, z_det) = timed(args.runs, || {
        gee_ligra::with_threads(args.threads, || {
            deterministic::embed(el.num_vertices(), el.edges(), &labels)
        })
    });
    let det_exact = z_det.as_slice() == reference.as_slice();
    assert!(
        det_exact,
        "deterministic kernel must be bit-identical to serial"
    );
    let drift_atomic = reference.max_abs_diff(&z_atomic);
    let drift_binned = reference.max_abs_diff(&z_binned);

    let rows = vec![
        vec![
            "atomic writeAdd (paper)".to_string(),
            fmt_secs(t_atomic),
            format!("{drift_atomic:.1e}"),
            "schedule-dependent".to_string(),
        ],
        vec![
            "propagation blocking".to_string(),
            fmt_secs(t_binned),
            format!("{drift_binned:.1e}"),
            "deterministic (fixed chunks)".to_string(),
        ],
        vec![
            "sort-reduce".to_string(),
            fmt_secs(t_det),
            "0 (bit-exact)".to_string(),
            "deterministic (any threads)".to_string(),
        ],
    ];
    println!(
        "{}",
        render(
            &["Kernel", "Runtime", "Max |Δ| vs serial", "Reproducibility"],
            &rows
        )
    );
    println!(
        "reproducibility overhead: sort-reduce is {:.2}× the atomic kernel",
        t_det / t_atomic
    );
    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::json!({
                "ablation_determinism": {
                    "atomic_seconds": t_atomic,
                    "binned_seconds": t_binned,
                    "sort_reduce_seconds": t_det,
                    "atomic_max_drift": drift_atomic,
                    "binned_max_drift": drift_binned,
                    "sort_reduce_bit_exact": det_exact,
                }
            }))
            .unwrap()
        );
    }
}
