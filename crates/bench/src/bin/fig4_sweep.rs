//! Regenerates **Figure 4** of the paper: runtime of all four
//! implementations as Erdős–Rényi graphs grow from 2^13 edges (paper: to
//! 2^29; default here 2^23, raise with `--max-log2`). The paper's claim is
//! linearity in the edge count on a log-log plot.
//!
//! ```text
//! cargo run --release -p gee-bench --bin fig4 -- --max-log2 23
//! ```

use gee_bench::runner::Impl;
use gee_bench::table::{fmt_secs, render};
use gee_bench::{time_implementation, Args};
use gee_core::Labels;
use gee_gen::LabelSpec;
use gee_graph::CsrGraph;

/// The paper holds average degree roughly constant while growing edges.
const AVG_DEGREE: usize = 16;

fn main() {
    let args = Args::parse();
    let spec = LabelSpec {
        num_classes: args.k,
        labeled_fraction: args.labeled_fraction,
    };
    println!(
        "Figure 4 reproduction — Erdős–Rényi sweep, 2^13..2^{} edges, K={}, avg degree {}\n",
        args.max_log2, args.k, AVG_DEGREE
    );
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for log2_edges in 13..=args.max_log2 {
        let el = gee_gen::er::fig4_graph(log2_edges, AVG_DEGREE, args.seed + log2_edges as u64);
        let g = CsrGraph::from_edge_list(&el);
        let labels = Labels::from_options_with_k(
            &gee_gen::random_labels(el.num_vertices(), spec, args.seed ^ log2_edges as u64),
            args.k,
        );
        // The interpreter is ~2 decades slower; skip it past 2^21 edges so
        // the sweep completes (the paper similarly reports GEE-Python only
        // where feasible). Reported as null in JSON.
        let run_interp = log2_edges <= 21;
        let interp = run_interp
            .then(|| time_implementation(Impl::Interp, &el, &g, &labels, args.runs, args.threads));
        let opt = time_implementation(Impl::Optimized, &el, &g, &labels, args.runs, args.threads);
        let ser = time_implementation(Impl::LigraSerial, &el, &g, &labels, args.runs, args.threads);
        let par = time_implementation(
            Impl::LigraParallel,
            &el,
            &g,
            &labels,
            args.runs,
            args.threads,
        );
        rows.push(vec![
            log2_edges.to_string(),
            el.num_edges().to_string(),
            interp.as_ref().map_or("—".into(), |m| fmt_secs(m.seconds)),
            fmt_secs(opt.seconds),
            fmt_secs(ser.seconds),
            fmt_secs(par.seconds),
        ]);
        json.push(serde_json::json!({
            "log2_edges": log2_edges,
            "edges": el.num_edges(),
            "interp": interp.as_ref().map(|m| m.seconds),
            "optimized": opt.seconds,
            "ligra_serial": ser.seconds,
            "ligra_parallel": par.seconds,
        }));
        eprintln!("done: 2^{log2_edges} edges");
    }
    println!(
        "{}",
        render(
            &[
                "log2(s)",
                "edges",
                "GEE-Py(model)",
                "Numba-analog",
                "Ligra serial",
                "Ligra parallel"
            ],
            &rows
        )
    );
    // Linearity check: runtime ratio between consecutive doublings should
    // approach 2 for the compiled implementations at large sizes.
    if json.len() >= 4 {
        let a = json[json.len() - 2]["ligra_parallel"].as_f64().unwrap();
        let b = json[json.len() - 1]["ligra_parallel"].as_f64().unwrap();
        println!(
            "last doubling ratio (ligra parallel): {:.2} (linear scaling → 2.0)",
            b / a
        );
    }
    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::json!({ "fig4": json })).unwrap()
        );
    }
}
