//! Regenerates the **§III initialization claim**: the O(nK) setup
//! "becomes the dominant component of the runtime when graphs have a high
//! n and a very low average degree" (s < nK). This sweep holds n fixed and
//! shrinks the average degree, timing the three phases of Algorithm 2
//! separately:
//!
//! * projection build (O(n) in our sparse form; the paper's dense form is
//!   O(nK) — both are reported),
//! * the `Z ∈ R^{n×K}` zero-initialization (O(nK) — where the asymptotic
//!   term actually lives once `W` is sparse),
//! * the edge pass (O(s)).
//!
//! ```text
//! cargo run --release -p gee-bench --bin ablation-init -- --scale 16
//! ```

use std::time::Instant;

use gee_bench::table::{fmt_secs, render};
use gee_bench::Args;
use gee_core::{Labels, Projection};
use gee_gen::LabelSpec;
use gee_graph::{CsrGraph, VertexId, Weight};
use gee_ligra::{edge_map, AtomicF64Vec, EdgeMapFn, EdgeMapOptions, TraversalKind, VertexSubset};

/// Algorithm 2's updateEmb, replicated here so each phase can be timed.
struct UpdateEmb<'a> {
    z: &'a AtomicF64Vec,
    coeff: &'a [f64],
    y: &'a [i32],
    k: usize,
}

impl EdgeMapFn for UpdateEmb<'_> {
    fn update(&self, s: VertexId, d: VertexId, w: Weight) -> bool {
        self.update_atomic(s, d, w)
    }
    fn update_atomic(&self, s: VertexId, d: VertexId, w: Weight) -> bool {
        let yv = self.y[d as usize];
        if yv >= 0 {
            self.z.fetch_add(
                s as usize * self.k + yv as usize,
                self.coeff[d as usize] * w,
            );
        }
        let yu = self.y[s as usize];
        if yu >= 0 {
            self.z.fetch_add(
                d as usize * self.k + yu as usize,
                self.coeff[s as usize] * w,
            );
        }
        false
    }
}

fn main() {
    let args = Args::parse();
    let n = (4_000_000 / args.scale).max(10_000);
    let k = args.k;
    let spec = LabelSpec {
        num_classes: k,
        labeled_fraction: args.labeled_fraction,
    };
    println!("§III initialization ablation — n = {n}, K = {k}, average degree sweep\n");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for avg_degree in [1usize, 2, 4, 8, 16, 32, 64] {
        let m = n * avg_degree;
        let el = gee_gen::erdos_renyi_gnm(n, m, args.seed + avg_degree as u64);
        let g = CsrGraph::from_edge_list(&el);
        let labels = Labels::from_options_with_k(
            &gee_gen::random_labels(n, spec, args.seed ^ avg_degree as u64),
            k,
        );
        // Warm-up pass so allocator pools are faulted in.
        let _ = gee_core::ligra::embed(&g, &labels, gee_core::AtomicsMode::Atomic);
        // Median-of-runs per phase.
        let mut proj_t = Vec::new();
        let mut dense_proj_t = Vec::new();
        let mut z_t = Vec::new();
        let mut edge_t = Vec::new();
        for _ in 0..args.runs {
            let t0 = Instant::now();
            let proj = Projection::build_parallel(&labels);
            proj_t.push(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            let dense = proj.to_dense(&labels); // the paper's O(nK) W
            dense_proj_t.push(t0.elapsed().as_secs_f64());
            drop(dense);
            let t0 = Instant::now();
            let z = AtomicF64Vec::zeros(n * k);
            z_t.push(t0.elapsed().as_secs_f64());
            let functor = UpdateEmb {
                z: &z,
                coeff: proj.as_slice(),
                y: labels.raw_slice(),
                k,
            };
            let t0 = Instant::now();
            edge_map(
                &g,
                &VertexSubset::full(n),
                &functor,
                EdgeMapOptions {
                    kind: TraversalKind::DenseForward,
                    no_output: true,
                },
            );
            edge_t.push(t0.elapsed().as_secs_f64());
        }
        let med = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let (tp, td, tz, te) = (
            med(&mut proj_t),
            med(&mut dense_proj_t),
            med(&mut z_t),
            med(&mut edge_t),
        );
        let init_share = (tp + tz) / (tp + tz + te);
        rows.push(vec![
            avg_degree.to_string(),
            format!("{:.2}", m as f64 / (n * k) as f64),
            fmt_secs(tp),
            fmt_secs(td),
            fmt_secs(tz),
            fmt_secs(te),
            format!("{:.0}%", init_share * 100.0),
        ]);
        json.push(serde_json::json!({
            "avg_degree": avg_degree,
            "s_over_nk": m as f64 / (n * k) as f64,
            "proj_sparse": tp,
            "proj_dense_paper_form": td,
            "z_init": tz,
            "edge_pass": te,
            "init_share": init_share,
        }));
        eprintln!("done: degree {avg_degree}");
    }
    println!(
        "{}",
        render(
            &[
                "avg deg",
                "s / nK",
                "W sparse",
                "W dense(O(nK))",
                "Z init(O(nK))",
                "edge pass",
                "init share"
            ],
            &rows
        )
    );
    println!("expected shape: the O(nK) columns are flat while the edge pass grows with degree, so the\ninit share is largest at the lowest degree (s << nK) — the paper's motivation for parallelizing it.");
    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::json!({ "ablation_init": json })).unwrap()
        );
    }
}
