//! Regenerates **Table I** of the paper: runtime of the four GEE
//! implementations on the six social-graph workloads, plus the three
//! speedup columns (parallel vs interp / optimized / ligra-serial).
//!
//! ```text
//! cargo run --release -p gee-bench --bin table1 -- --scale 64
//! ```

use gee_bench::runner::Impl;
use gee_bench::table::{fmt_secs, fmt_speedup, render};
use gee_bench::{table1_workloads, time_implementation, Args};
use gee_core::Labels;
use gee_gen::LabelSpec;
use gee_graph::CsrGraph;

fn main() {
    let args = Args::parse();
    let spec = LabelSpec {
        num_classes: args.k,
        labeled_fraction: args.labeled_fraction,
    };
    println!(
        "Table I reproduction — R-MAT stand-ins at 1/{} scale, K={}, {}% labeled, median of {} runs\n",
        args.scale,
        args.k,
        args.labeled_fraction * 100.0,
        args.runs
    );
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for w in table1_workloads() {
        let el = w.generate(args.scale, args.seed);
        let g = CsrGraph::from_edge_list(&el);
        let labels = Labels::from_options_with_k(
            &gee_gen::random_labels(el.num_vertices(), spec, args.seed ^ 0xBEEF),
            args.k,
        );
        let ms: Vec<_> = [
            Impl::Interp,
            Impl::Optimized,
            Impl::LigraSerial,
            Impl::LigraParallel,
        ]
        .into_iter()
        .map(|i| time_implementation(i, &el, &g, &labels, args.runs, args.threads))
        .collect();
        let t = |i: usize| ms[i].seconds;
        rows.push(vec![
            format!(
                "{} ({}K, {:.1}M)",
                w.name,
                el.num_vertices() / 1000,
                el.num_edges() as f64 / 1e6
            ),
            fmt_secs(t(0)),
            fmt_secs(t(1)),
            fmt_secs(t(2)),
            fmt_secs(t(3)),
            fmt_speedup(t(0) / t(3)),
            fmt_speedup(t(1) / t(3)),
            fmt_speedup(t(2) / t(3)),
        ]);
        json_rows.push(serde_json::json!({
            "graph": w.name,
            "n": el.num_vertices(),
            "s": el.num_edges(),
            "paper": {
                "python": w.paper_runtimes[0], "numba": w.paper_runtimes[1],
                "ligra_serial": w.paper_runtimes[2], "ligra_parallel": w.paper_runtimes[3],
                "speedup_vs_python": w.paper_runtimes[0] / w.paper_runtimes[3],
                "speedup_vs_numba": w.paper_runtimes[1] / w.paper_runtimes[3],
                "speedup_vs_ligra_serial": w.paper_runtimes[2] / w.paper_runtimes[3],
            },
            "measured": {
                "interp": t(0), "optimized": t(1), "ligra_serial": t(2), "ligra_parallel": t(3),
                "speedup_vs_interp": t(0) / t(3),
                "speedup_vs_optimized": t(1) / t(3),
                "speedup_vs_ligra_serial": t(2) / t(3),
            },
        }));
        eprintln!("done: {}", w.name);
    }
    println!(
        "{}",
        render(
            &[
                "Graph (n, s)",
                "GEE-Py(model)",
                "Numba-analog",
                "Ligra serial",
                "Ligra parallel",
                "Spd v. Py",
                "Spd v. Numba",
                "Spd v. Serial",
            ],
            &rows
        )
    );
    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::json!({ "table1": json_rows })).unwrap()
        );
    }
}
