//! Extension ablation: vertex ordering vs GEE runtime. §IV counts "two
//! memory writes [per edge], one of which is likely to miss" — the miss
//! probability depends on how vertex ids map to `Z` rows. This bench runs
//! the same kernel under a random shuffle (worst case), the generator's
//! natural order, degree-descending order, and BFS order.
//!
//! ```text
//! cargo run --release -p gee-bench --bin ablation-reorder -- --scale 128
//! ```

use gee_bench::table::{fmt_secs, render};
use gee_bench::{table1_workloads, timed, Args};
use gee_core::{AtomicsMode, Labels};
use gee_gen::LabelSpec;
use gee_graph::{ordering, CsrGraph};

fn main() {
    let args = Args::parse();
    let w = table1_workloads()
        .into_iter()
        .last()
        .expect("have workloads");
    let spec = LabelSpec {
        num_classes: args.k,
        labeled_fraction: args.labeled_fraction,
    };
    println!(
        "Reordering ablation — GEE on the {} stand-in (1/{} scale) under four vertex orders\n",
        w.name, args.scale
    );
    let el = w.generate(args.scale, args.seed);
    let base = CsrGraph::from_edge_list(&el);
    // Labels belong to *structural* vertices and are permuted together with
    // the graph — otherwise each ordering changes which hubs are labeled
    // and therefore the number of updates performed, and the comparison
    // measures labeling luck instead of locality.
    let structural_labels = gee_gen::random_labels(el.num_vertices(), spec, args.seed ^ 0xBEEF);
    let orders: Vec<(&str, Option<Vec<u32>>)> = vec![
        (
            "random shuffle",
            Some(ordering::random_order(el.num_vertices(), args.seed ^ 1)),
        ),
        ("natural (R-MAT)", None),
        ("degree descending", Some(ordering::degree_order(&base))),
        ("BFS order", Some(ordering::bfs_order(&base))),
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut baseline = None;
    for (name, perm) in orders {
        let ordered_el;
        let mut relabeled = structural_labels.clone();
        let el_ref = match &perm {
            Some(p) => {
                ordered_el = ordering::apply(&el, p);
                for (old, &new) in p.iter().enumerate() {
                    relabeled[new as usize] = structural_labels[old];
                }
                &ordered_el
            }
            None => &el,
        };
        let g = CsrGraph::from_edge_list(el_ref);
        let labels = Labels::from_options_with_k(&relabeled, args.k);
        let _ = gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic); // warm-up
        let (secs, _, z) = timed(args.runs, || {
            gee_ligra::with_threads(args.threads, || {
                gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic)
            })
        });
        gee_bench::verify_embedding(&z, el_ref, &labels, name);
        let base_secs = *baseline.get_or_insert(secs);
        rows.push(vec![
            name.to_string(),
            fmt_secs(secs),
            format!("{:.2}", secs / base_secs),
        ]);
        json.push(
            serde_json::json!({ "order": name, "seconds": secs, "vs_shuffle": secs / base_secs }),
        );
        eprintln!("done: {name}");
    }
    println!(
        "{}",
        render(&["Vertex order", "GEE runtime", "vs shuffle"], &rows)
    );
    println!("expected shape: shuffle slowest; degree/BFS orders cut the random-write miss rate.");
    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::json!({ "ablation_reorder": json })).unwrap()
        );
    }
}
