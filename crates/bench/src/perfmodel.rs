//! A first-order memory-traffic model for the GEE edge pass — the
//! quantitative form of §IV's claim: "We expect this workload to be
//! memory bound, because there is so little computation per edge.
//! GEE-Ligra performs two fused-multiply adds per edge and two memory
//! writes, one of which is likely to miss."
//!
//! [`measure_bandwidth`] times a streaming triad to estimate the
//! machine's sustainable bandwidth, [`gee_bytes_per_edge`] counts the
//! traffic the kernel's access pattern implies, and
//! [`predicted_edge_pass_seconds`] combines them into a roofline-style
//! lower bound that the strong-scaling harness prints next to measured
//! runtimes.

use std::time::Instant;

use rayon::prelude::*;

/// Estimated memory traffic per directed edge of the GEE-Ligra kernel,
/// in bytes.
///
/// Per edge `(u, v, w)` the dense-forward traversal touches:
/// * the CSR target entry (4 B) and weight (8 B if stored);
/// * labels `Y(u)`, `Y(v)` (4 B each) and coefficients `W(u)`, `W(v)`
///   (8 B each) — `u`'s metadata is cache-resident during its edge list
///   (§III), so only `v`'s side (12 B) counts as traffic;
/// * the `Z(u, Y(v))` accumulator: resident while `u`'s list drains
///   (charged at 0) — and `Z(v, Y(u))`: a 16 B read-modify-write that
///   "is likely to miss" (a 64 B line fill + eventual write-back; we
///   charge the 16 B the CAS actually moves, the cache-line pessimistic
///   bound being 128 B).
pub fn gee_bytes_per_edge(weighted: bool) -> f64 {
    let csr = 4.0 + if weighted { 8.0 } else { 0.0 };
    let remote_metadata = 4.0 + 8.0; // Y(v) + W(v)
    let remote_z = 16.0; // read + write of the missing accumulator
    csr + remote_metadata + remote_z
}

/// Measure sustainable memory bandwidth (bytes/second) with a parallel
/// out-of-cache triad `a[i] = b[i] + s·c[i]`, median of `runs` sweeps.
pub fn measure_bandwidth(runs: usize) -> f64 {
    let n = 1 << 24; // 3 × 128 MiB of f64 — far beyond LLC
    let b = vec![1.0f64; n];
    let c = vec![2.0f64; n];
    let mut a = vec![0.0f64; n];
    let mut rates = Vec::with_capacity(runs);
    for _ in 0..runs.max(1) {
        let t0 = Instant::now();
        a.par_chunks_mut(1 << 16)
            .zip(b.par_chunks(1 << 16))
            .zip(c.par_chunks(1 << 16))
            .for_each(|((ac, bc), cc)| {
                for ((x, &y), &z) in ac.iter_mut().zip(bc).zip(cc) {
                    *x = y + 3.0 * z;
                }
            });
        let dt = t0.elapsed().as_secs_f64();
        // Triad traffic: read b, read c, write a (write-allocate charges
        // a read too, but we report the optimistic 24 B/elem figure).
        rates.push(24.0 * n as f64 / dt);
    }
    rates.sort_by(f64::total_cmp);
    rates[rates.len() / 2]
}

/// Roofline lower bound for one edge pass: traffic / bandwidth.
pub fn predicted_edge_pass_seconds(num_edges: usize, weighted: bool, bandwidth: f64) -> f64 {
    assert!(bandwidth > 0.0, "bandwidth must be positive");
    num_edges as f64 * gee_bytes_per_edge(weighted) / bandwidth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_per_edge_ordering() {
        assert!(gee_bytes_per_edge(true) > gee_bytes_per_edge(false));
        assert_eq!(gee_bytes_per_edge(false), 32.0);
        assert_eq!(gee_bytes_per_edge(true), 40.0);
    }

    #[test]
    fn prediction_scales_linearly() {
        let bw = 1e10;
        let one = predicted_edge_pass_seconds(1_000_000, false, bw);
        let ten = predicted_edge_pass_seconds(10_000_000, false, bw);
        assert!((ten / one - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn prediction_validates_bandwidth() {
        predicted_edge_pass_seconds(1, false, 0.0);
    }

    #[test]
    fn bandwidth_measurement_is_plausible() {
        // One quick sweep; any real machine lands between 100 MB/s and
        // 1 TB/s.
        let bw = measure_bandwidth(1);
        assert!(bw > 1e8 && bw < 1e12, "measured {bw:.3e} B/s");
    }
}
