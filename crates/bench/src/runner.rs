//! Timed execution of the four GEE implementations with result
//! verification (every timed run's output is checked against the mass
//! invariant so the harness can't silently time a wrong computation).

use std::time::Instant;

use gee_core::{diagnostics, AtomicsMode, Embedding, Labels};
use gee_graph::{CsrGraph, EdgeList};

/// Which implementation a measurement timed. Mirrors the paper's Table I
/// columns, with the interpreted executor standing in for GEE-Python.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum Impl {
    /// `gee-interp` bytecode executor (GEE-Python cost model).
    Interp,
    /// `gee_core::serial_optimized` ("Numba serial").
    Optimized,
    /// GEE-Ligra on one thread.
    LigraSerial,
    /// GEE-Ligra on `threads` threads.
    LigraParallel,
}

impl Impl {
    /// Table column label.
    pub fn label(&self) -> &'static str {
        match self {
            Impl::Interp => "GEE-Py(model)",
            Impl::Optimized => "Numba-analog",
            Impl::LigraSerial => "Ligra serial",
            Impl::LigraParallel => "Ligra parallel",
        }
    }
}

/// One timing result.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Measurement {
    /// Implementation measured.
    pub implementation: Impl,
    /// Median wall-clock seconds across runs.
    pub seconds: f64,
    /// All run times (seconds).
    pub all_runs: Vec<f64>,
}

/// Time `f` returning (median seconds, every run's seconds). The result of
/// the last run is returned for verification.
pub fn timed<T>(runs: usize, mut f: impl FnMut() -> T) -> (f64, Vec<f64>, T) {
    assert!(runs >= 1);
    let mut times = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        let t0 = Instant::now();
        let out = f();
        times.push(t0.elapsed().as_secs_f64());
        last = Some(out);
    }
    let mut sorted = times.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (sorted[sorted.len() / 2], times, last.unwrap())
}

/// Check the embedding against the conservation invariant; panics with a
/// clear message on failure so benchmark output is trustworthy.
pub fn verify_embedding(z: &Embedding, el: &EdgeList, labels: &Labels, what: &str) {
    let r = diagnostics::check(z, el, labels);
    assert!(r.all_finite, "{what}: embedding has non-finite entries");
    assert!(
        r.mass_relative_error < 1e-6,
        "{what}: mass error {:e} (total {}, expected {})",
        r.mass_relative_error,
        r.total_mass,
        r.expected_mass
    );
}

/// Run and time one implementation. The CSR graph is prebuilt (Ligra's
/// graph load is not part of the paper's timed region); the edge-list
/// implementations get the edge list directly.
pub fn time_implementation(
    which: Impl,
    el: &EdgeList,
    g: &CsrGraph,
    labels: &Labels,
    runs: usize,
    threads: usize,
) -> Measurement {
    let (seconds, all_runs, z) = match which {
        Impl::Interp => timed(runs, || gee_interp::embed(el, labels)),
        Impl::Optimized => timed(runs, || gee_core::serial_optimized::embed(el, labels)),
        Impl::LigraSerial => timed(runs, || {
            gee_ligra::with_threads(1, || gee_core::ligra::embed(g, labels, AtomicsMode::Atomic))
        }),
        Impl::LigraParallel => timed(runs, || {
            gee_ligra::with_threads(threads, || {
                gee_core::ligra::embed(g, labels, AtomicsMode::Atomic)
            })
        }),
    };
    verify_embedding(&z, el, labels, which.label());
    Measurement {
        implementation: which,
        seconds,
        all_runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_gen::LabelSpec;

    #[test]
    fn all_four_implementations_run_and_verify() {
        let el = gee_gen::erdos_renyi_gnm(500, 5000, 3);
        let g = CsrGraph::from_edge_list(&el);
        let labels = Labels::from_options(&gee_gen::random_labels(
            500,
            LabelSpec {
                num_classes: 10,
                labeled_fraction: 0.1,
            },
            7,
        ));
        for which in [
            Impl::Interp,
            Impl::Optimized,
            Impl::LigraSerial,
            Impl::LigraParallel,
        ] {
            let m = time_implementation(which, &el, &g, &labels, 1, 0);
            assert!(m.seconds >= 0.0);
            assert_eq!(m.all_runs.len(), 1);
        }
    }

    #[test]
    fn timed_reports_median() {
        let mut calls = 0;
        let (med, all, _) = timed(3, || {
            calls += 1;
        });
        assert_eq!(calls, 3);
        assert_eq!(all.len(), 3);
        assert!(med >= 0.0);
    }
}
