//! Criterion microbenchmark: the Ligra `edge_map` abstraction vs a raw
//! parallel loop over CSR — measures the engine's abstraction overhead
//! (the paper credits Ligra's declarative engine with a 31% single-thread
//! improvement over the flat loop; here both run on the same substrate so
//! the expected gap is small).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gee_graph::{CsrGraph, VertexId, Weight};
use gee_ligra::{edge_map, AtomicF64Vec, EdgeMapFn, EdgeMapOptions, TraversalKind, VertexSubset};
use rayon::prelude::*;

struct Accumulate<'a> {
    acc: &'a AtomicF64Vec,
}

impl EdgeMapFn for Accumulate<'_> {
    fn update(&self, _s: VertexId, d: VertexId, w: Weight) -> bool {
        self.acc.fetch_add(d as usize, w);
        false
    }
    fn update_atomic(&self, s: VertexId, d: VertexId, w: Weight) -> bool {
        self.update(s, d, w)
    }
}

fn bench_edge_map(c: &mut Criterion) {
    let m = 1 << 19;
    let el = gee_gen::rmat(15, m, gee_gen::RmatParams::default(), 5);
    let g = CsrGraph::from_edge_list(&el);
    let n = g.num_vertices();
    let mut group = c.benchmark_group("edge_map_overhead");
    group.throughput(Throughput::Elements(m as u64));
    group.sample_size(20);
    group.bench_function("engine_edge_map", |b| {
        b.iter(|| {
            let acc = AtomicF64Vec::zeros(n);
            let f = Accumulate { acc: &acc };
            edge_map(
                &g,
                &VertexSubset::full(n),
                &f,
                EdgeMapOptions {
                    kind: TraversalKind::DenseForward,
                    no_output: true,
                },
            );
            acc
        })
    });
    group.bench_function("raw_parallel_loop", |b| {
        b.iter(|| {
            let acc = AtomicF64Vec::zeros(n);
            (0..n as u32).into_par_iter().for_each(|u| {
                for (i, &v) in g.neighbors(u).iter().enumerate() {
                    acc.fetch_add(v as usize, g.weight_at(u, i));
                }
            });
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_edge_map);
criterion_main!(benches);
