//! Criterion microbenchmarks of the alternative parallel kernels — the
//! paper's atomic push kernel vs the atomics-free pull, propagation-
//! blocking, and deterministic sort-reduce kernels, plus the dynamic
//! update path. Size via `GEE_BENCH_EDGES` (default 1<<17).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gee_core::dynamic::DynamicGee;
use gee_core::{deterministic, kernels, AtomicsMode, Labels};
use gee_gen::{rmat, LabelSpec, RmatParams};
use gee_graph::CsrGraph;

fn edges_from_env() -> usize {
    std::env::var("GEE_BENCH_EDGES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1 << 17)
}

fn bench_kernels(c: &mut Criterion) {
    let m = edges_from_env();
    let scale = 32 - (m as u32 / 16).leading_zeros(); // avg degree ~16
    let el = rmat(scale, m, RmatParams::default(), 7).symmetrized();
    let g = CsrGraph::from_edge_list(&el);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(el.num_vertices(), LabelSpec::default(), 3),
        50,
    );
    let mut group = c.benchmark_group("gee_kernels");
    group.throughput(Throughput::Elements(el.num_edges() as u64));
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("push_atomic", m), |b| {
        b.iter(|| gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic))
    });
    group.bench_function(BenchmarkId::new("pull_no_atomics", m), |b| {
        b.iter(|| kernels::embed_pull(&g, &labels))
    });
    group.bench_function(BenchmarkId::new("propagation_blocking", m), |b| {
        b.iter(|| kernels::embed_binned(el.num_vertices(), el.edges(), &labels, 16))
    });
    group.bench_function(BenchmarkId::new("deterministic_sort_reduce", m), |b| {
        b.iter(|| deterministic::embed(el.num_vertices(), el.edges(), &labels))
    });
    group.finish();
}

fn bench_dynamic(c: &mut Criterion) {
    let m = edges_from_env();
    let scale = 32 - (m as u32 / 16).leading_zeros();
    let el = rmat(scale, m, RmatParams::default(), 11);
    let n = el.num_vertices() as u32;
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(el.num_vertices(), LabelSpec::default(), 5),
        50,
    );
    let mut dg = DynamicGee::new(&el, &labels);
    let mut group = c.benchmark_group("gee_dynamic");
    let mut i = 0u32;
    group.bench_function("insert_edge", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            dg.insert_edge(i % n, (i.wrapping_mul(2_654_435_761)) % n, 1.0);
        })
    });
    let mut j = 0u32;
    group.bench_function("set_label", |b| {
        b.iter(|| {
            j = j.wrapping_add(1);
            dg.set_label(j % n, Some(j % 50));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_dynamic);
criterion_main!(benches);
