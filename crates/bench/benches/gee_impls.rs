//! Criterion microbenchmarks of the four GEE implementations on a fixed
//! mid-size R-MAT graph — the per-implementation view behind Table I.
//! Size via `GEE_BENCH_EDGES` (default 1<<18).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gee_core::{AtomicsMode, Labels};
use gee_gen::{rmat, LabelSpec, RmatParams};
use gee_graph::CsrGraph;

fn edges_from_env() -> usize {
    std::env::var("GEE_BENCH_EDGES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1 << 18)
}

fn bench_impls(c: &mut Criterion) {
    let m = edges_from_env();
    let scale = 32 - (m as u32 / 16).leading_zeros(); // avg degree ~16
    let el = rmat(scale, m, RmatParams::default(), 7);
    let g = CsrGraph::from_edge_list(&el);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(el.num_vertices(), LabelSpec::default(), 3),
        50,
    );
    let mut group = c.benchmark_group("gee_implementations");
    group.throughput(Throughput::Elements(m as u64));
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("interp", m), |b| {
        b.iter(|| gee_interp::embed(&el, &labels))
    });
    group.bench_function(BenchmarkId::new("serial_reference", m), |b| {
        b.iter(|| gee_core::serial_reference::embed(&el, &labels))
    });
    group.bench_function(BenchmarkId::new("serial_optimized", m), |b| {
        b.iter(|| gee_core::serial_optimized::embed(&el, &labels))
    });
    group.bench_function(BenchmarkId::new("ligra_serial", m), |b| {
        b.iter(|| {
            gee_ligra::with_threads(1, || {
                gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic)
            })
        })
    });
    group.bench_function(BenchmarkId::new("ligra_parallel", m), |b| {
        b.iter(|| gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic))
    });
    let compressed = gee_graph::CompressedCsr::from_csr(&g);
    group.bench_function(BenchmarkId::new("ligra_compressed", m), |b| {
        b.iter(|| gee_core::ligra::embed_compressed(&compressed, &labels, AtomicsMode::Atomic))
    });
    let mut stream_bytes = Vec::new();
    gee_graph::io::edge_stream::write(&mut stream_bytes, &el).unwrap();
    group.bench_function(BenchmarkId::new("streamed_parallel", m), |b| {
        b.iter(|| {
            let mut r =
                gee_graph::io::edge_stream::EdgeStreamReader::new(stream_bytes.as_slice()).unwrap();
            gee_core::streaming::embed_stream(
                &mut r,
                &labels,
                1 << 18,
                gee_core::streaming::ChunkMode::Parallel,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_impls);
criterion_main!(benches);
