//! Criterion microbenchmark: serial vs parallel projection-matrix
//! initialization (§III: the O(nk) phase GEE-Ligra parallelizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gee_core::{Labels, Projection};
use gee_gen::LabelSpec;

fn bench_projection(c: &mut Criterion) {
    let mut group = c.benchmark_group("projection_init");
    for n in [1usize << 16, 1 << 20] {
        let labels =
            Labels::from_options_with_k(&gee_gen::random_labels(n, LabelSpec::default(), 11), 50);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(BenchmarkId::new("serial", n), |b| {
            b.iter(|| Projection::build_serial(&labels))
        });
        group.bench_function(BenchmarkId::new("parallel", n), |b| {
            b.iter(|| Projection::build_parallel(&labels))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_projection);
criterion_main!(benches);
