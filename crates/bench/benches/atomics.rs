//! Criterion microbenchmark: CAS `writeAdd` vs racy relaxed load+store vs
//! plain serial adds — the §IV atomics question at the instruction level.
//! Contention is controlled by the number of distinct cells.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gee_ligra::AtomicF64Vec;
use rayon::prelude::*;

const OPS: usize = 1 << 20;

fn bench_atomics(c: &mut Criterion) {
    let mut group = c.benchmark_group("write_add");
    group.throughput(Throughput::Elements(OPS as u64));
    group.sample_size(20);
    for cells in [1usize << 4, 1 << 12, 1 << 20] {
        group.bench_function(BenchmarkId::new("cas", cells), |b| {
            b.iter(|| {
                let v = AtomicF64Vec::zeros(cells);
                (0..OPS)
                    .into_par_iter()
                    .for_each(|i| v.fetch_add(i % cells, 1.0));
                v
            })
        });
        group.bench_function(BenchmarkId::new("racy", cells), |b| {
            b.iter(|| {
                let v = AtomicF64Vec::zeros(cells);
                (0..OPS)
                    .into_par_iter()
                    .for_each(|i| v.add_racy(i % cells, 1.0));
                v
            })
        });
        group.bench_function(BenchmarkId::new("serial", cells), |b| {
            b.iter(|| {
                let mut v = vec![0.0f64; cells];
                for i in 0..OPS {
                    v[i % cells] += 1.0;
                }
                v
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_atomics);
criterion_main!(benches);
