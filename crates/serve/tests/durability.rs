//! Crash-recovery harness for the durability subsystem.
//!
//! [`CrashHarness`] drives one scripted workload — register a seeded
//! graph, stream deterministic update batches — against a durable
//! registry, then kills it in a chosen way and recovers. The oracle is
//! an in-memory engine that applied the same prefix of batches without
//! ever stopping: a recovered engine must answer the full read suite
//! (`Classify`, `Similar`, `EmbedRow`, `Stats`, plus requests that must
//! fail with typed errors) **byte-identically** — compared on encoded
//! wire frames, so every f64 bit pattern counts.
//!
//! Crash modes covered: a fault injected mid-append at every byte offset
//! of the record frame; file truncation at every byte of the log; a
//! flipped byte (CRC or payload) anywhere; duplicated WAL segments;
//! deleted checkpoints — each either recovers to the last committed
//! epoch or fails with a typed [`ServeError::Corrupt`], never a panic.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use gee_core::Labels;
use gee_gen::LabelSpec;
use gee_graph::EdgeList;
use gee_serve::wal::FaultPoint;
use gee_serve::wire::{self, ServerFrame};
use gee_serve::{
    duplex, Client, Durability, Engine, Envelope, Registry, Request, ServeError, Server,
    SyncPolicy, Update,
};

const N: usize = 60;
const K: usize = 4;
const SHARDS: usize = 3;

mod common;
use common::snapshot_fingerprint;

/// One scripted crash-recovery scenario: a data dir, the epoch-0 input,
/// and a deterministic update-batch schedule.
struct CrashHarness {
    dir: PathBuf,
    el: EdgeList,
    labels: Labels,
    batches: Vec<Vec<Update>>,
    checkpoint_every: u64,
}

impl CrashHarness {
    fn new(tag: &str, num_batches: usize, checkpoint_every: u64) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "gee_durability_{tag}_{}_{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let el = gee_gen::erdos_renyi_gnm(N, 320, 11);
        let labels = Labels::from_options_with_k(
            &gee_gen::random_labels(
                N,
                LabelSpec {
                    num_classes: K,
                    labeled_fraction: 0.4,
                },
                7,
            ),
            K,
        );
        let batches = (0..num_batches as u32).map(scripted_batch).collect();
        CrashHarness {
            dir,
            el,
            labels,
            batches,
            checkpoint_every,
        }
    }

    fn durability(&self) -> Durability {
        Durability::Wal {
            dir: self.dir.clone(),
            sync: SyncPolicy::Always,
            checkpoint_every: self.checkpoint_every,
        }
    }

    /// Fresh durable registry with `committed` batches applied.
    fn run_until(&self, committed: usize) -> Registry {
        let reg = Registry::open(SHARDS, self.durability()).unwrap();
        reg.register("g", &self.el, &self.labels).unwrap();
        for batch in &self.batches[..committed] {
            reg.apply_updates("g", batch).unwrap();
        }
        reg
    }

    /// The uninterrupted reference: an in-memory engine that applied the
    /// same `committed` prefix and never restarted.
    fn oracle(&self, committed: usize) -> Engine {
        let reg = Registry::new(SHARDS);
        reg.register("g", &self.el, &self.labels).unwrap();
        for batch in &self.batches[..committed] {
            reg.apply_updates("g", batch).unwrap();
        }
        Engine::new(Arc::new(reg))
    }

    fn recover(&self) -> Result<Registry, ServeError> {
        Registry::open(SHARDS, self.durability())
    }

    /// Recover and require byte-identical answers to the uninterrupted
    /// oracle at `committed` batches.
    fn assert_recovers_to(&self, committed: usize) {
        let reg = self.recover().unwrap();
        // Read the epoch off the snapshot, not via Stats: a Stats request
        // would bump the query counter and skew the byte comparison.
        assert_eq!(
            reg.snapshot("g").unwrap().epoch,
            committed as u64,
            "recovered epoch"
        );
        let engine = Engine::new(Arc::new(reg));
        assert_eq!(
            read_suite_bytes(&engine),
            read_suite_bytes(&self.oracle(committed)),
            "recovered engine must answer byte-identically at {committed} batches"
        );
    }

    fn wal_segments(&self) -> Vec<PathBuf> {
        sorted_files(&self.dir, "wal-")
    }

    fn checkpoints(&self) -> Vec<PathBuf> {
        sorted_files(&self.dir, "ckpt-")
    }
}

impl Drop for CrashHarness {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

fn sorted_files(dir: &Path, prefix: &str) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .map(|n| n.to_string_lossy().starts_with(prefix))
                .unwrap_or(false)
        })
        .collect();
    out.sort();
    out
}

/// Deterministic mixed batch: inserts, label moves, removes (some
/// hitting, some no-ops) — all valid for the fixture's `N`/`K`.
fn scripted_batch(b: u32) -> Vec<Update> {
    let v = |i: u32| (b * 131 + i * 17) % N as u32;
    vec![
        Update::InsertEdge {
            u: v(0),
            v: v(1),
            w: 1.0 + f64::from(b % 5) * 0.25,
        },
        Update::SetLabel {
            v: v(2),
            label: Some(b % K as u32),
        },
        Update::InsertEdge {
            u: v(3),
            v: v(3),
            w: 2.0,
        },
        Update::RemoveEdge {
            u: v(3),
            v: v(3),
            w: 2.0,
        },
        Update::SetLabel {
            v: v(4),
            label: None,
        },
        Update::RemoveEdge {
            u: v(5),
            v: v(6),
            w: 123.456,
        }, // almost surely a no-op
    ]
}

/// The read suite every comparison runs: one coalesced batch of reads
/// (including requests that must fail typed), then `Stats` on its own so
/// the query counter it reports is deterministic.
fn read_requests() -> Vec<Envelope> {
    let mut reqs = vec![
        Envelope::new("g", Request::classify((0..N as u32).collect(), 5)),
        Envelope::new("g", Request::classify(vec![3, 1, 4], 1)),
        Envelope::new("g", Request::similar(7, 9)),
        Envelope::new("g", Request::similar(N as u32 - 1, 1)),
        Envelope::new("g", Request::embed_row(0)),
        Envelope::new("g", Request::embed_row(N as u32 / 2)),
        // Typed failures must be preserved by recovery too.
        Envelope::new("g", Request::embed_row(N as u32 + 9)),
        Envelope::new("missing", Request::stats()),
    ];
    reqs.push(Envelope::new("g", Request::similar(0, 0)));
    reqs
}

/// Encode an engine's answers to the read suite as wire bytes, so
/// "equal" means equal down to every f64 bit.
fn read_suite_bytes(engine: &Engine) -> Vec<u8> {
    let mut results = engine.execute_batch(read_requests());
    results.push(engine.execute("g", Request::stats()));
    wire::encode(&ServerFrame::Batch { id: 0, results })
}

/// Client-side twin of [`read_suite_bytes`] for over-the-wire runs.
fn read_suite_bytes_via(client: &mut Client) -> Vec<u8> {
    let mut results = client.execute_batch(read_requests()).unwrap();
    results.push(client.execute("g", Request::stats()));
    wire::encode(&ServerFrame::Batch { id: 0, results })
}

// ---- fault-point injection (kill mid-append) ---------------------------

#[test]
fn kill_mid_append_at_every_byte_offset_recovers_to_last_commit() {
    // The record that will be torn: batch #4's frame (8-byte header +
    // payload). Injecting at every offset covers: nothing written, torn
    // length prefix, torn CRC, every torn-payload length.
    let frame_len = 8 + gee_serve::wal::encode_record(&gee_serve::wal::WalRecord::Batch {
        name: "g".into(),
        updates: scripted_batch(4),
    })
    .len();
    // Every offset of a short prefix, then a spread across the payload.
    let offsets: Vec<usize> = (0..14).chain((14..frame_len).step_by(7)).collect();
    for keep in offsets {
        let h = CrashHarness::new(&format!("kill{keep}"), 5, 0);
        let reg = h.run_until(4);
        reg.inject_wal_fault(FaultPoint::TornAppend { keep_bytes: keep });
        let err = reg.apply_updates("g", &h.batches[4]).unwrap_err();
        assert!(
            matches!(err, ServeError::Storage { .. }),
            "keep={keep}: {err}"
        );
        // The in-memory state never saw the failed batch.
        assert_eq!(reg.snapshot("g").unwrap().epoch, 4);
        drop(reg); // the "crash"
        h.assert_recovers_to(4);
    }
}

#[test]
fn poisoned_writer_refuses_appends_until_reopen() {
    let h = CrashHarness::new("poison", 3, 0);
    let reg = h.run_until(2);
    reg.inject_wal_fault(FaultPoint::TornAppend { keep_bytes: 3 });
    assert!(reg.apply_updates("g", &h.batches[2]).is_err());
    // Still poisoned: a retry must not write behind the torn bytes.
    let err = reg.apply_updates("g", &h.batches[2]).unwrap_err();
    assert!(matches!(err, ServeError::Storage { .. }), "{err}");
    drop(reg);
    // Reopen truncates the torn tail; the batch can then be applied.
    let reg = h.recover().unwrap();
    reg.apply_updates("g", &h.batches[2]).unwrap();
    drop(reg);
    h.assert_recovers_to(3);
}

// ---- file-level crashes (truncation, bit flips, stray files) -----------

#[test]
fn truncation_at_every_byte_recovers_a_committed_prefix_or_nothing() {
    let h = CrashHarness::new("trunc", 3, 0);
    drop(h.run_until(3));
    let segment = {
        let segs = h.wal_segments();
        assert_eq!(segs.len(), 1);
        segs[0].clone()
    };
    let full = std::fs::read(&segment).unwrap();
    for cut in 0..full.len() {
        std::fs::write(&segment, &full[..cut]).unwrap();
        let reg = h.recover().unwrap_or_else(|e| {
            panic!("cut at {cut}: recovery must succeed after truncation, got {e}")
        });
        match reg.snapshot("g") {
            Ok(snap) => {
                let committed = snap.epoch as usize;
                assert!(committed <= 3, "cut at {cut}");
                drop(reg);
                h.assert_recovers_to(committed);
            }
            Err(ServeError::UnknownGraph { .. }) => {
                // The cut landed inside the Register record: the log
                // holds no committed registration at all.
                assert!(reg.graph_names().is_empty());
            }
            Err(other) => panic!("cut at {cut}: {other}"),
        }
        std::fs::write(&segment, &full).unwrap();
    }
}

#[test]
fn flipped_bytes_never_panic_and_flag_committed_damage_as_corrupt() {
    let h = CrashHarness::new("flip", 3, 0);
    drop(h.run_until(3));
    let segment = h.wal_segments()[0].clone();
    let full = std::fs::read(&segment).unwrap();
    let mut corrupt_seen = 0usize;
    for i in (0..full.len()).step_by(3) {
        let mut bad = full.clone();
        bad[i] ^= 0x08;
        std::fs::write(&segment, &bad).unwrap();
        match h.recover() {
            // A flip in a length prefix can masquerade as a torn tail;
            // recovery may then truncate — legal, but only ever to a
            // committed prefix.
            Ok(reg) => match reg.snapshot("g") {
                Ok(snap) => assert!(snap.epoch <= 3, "flip at {i}"),
                Err(ServeError::UnknownGraph { .. }) => {}
                Err(other) => panic!("flip at {i}: {other}"),
            },
            Err(ServeError::Corrupt { .. }) => corrupt_seen += 1,
            Err(other) => panic!("flip at {i}: expected Corrupt, got {other}"),
        }
    }
    assert!(
        corrupt_seen > 0,
        "bit flips over committed records must surface as Corrupt"
    );
    // The canonical satellite case — a flipped CRC byte on an interior
    // record — is deterministically Corrupt: record 0's CRC lives at
    // bytes 16..20 (12-byte segment header + 4-byte length).
    let mut bad = full.clone();
    bad[17] ^= 0xFF;
    std::fs::write(&segment, &bad).unwrap();
    let err = h.recover().unwrap_err();
    assert!(matches!(err, ServeError::Corrupt { .. }), "{err}");
    std::fs::write(&segment, &full).unwrap();
    h.assert_recovers_to(3);
}

#[test]
fn duplicate_segment_is_corrupt() {
    let h = CrashHarness::new("dupseg", 4, 2);
    let reg = h.run_until(4);
    drop(reg);
    let segs = h.wal_segments();
    let donor = segs.last().unwrap();
    // A stray copy that breaks LSN tiling (e.g. a hand-restored backup).
    std::fs::copy(donor, h.dir.join("wal-00000000000000ff.log")).unwrap();
    let err = h.recover().unwrap_err();
    assert!(matches!(err, ServeError::Corrupt { .. }), "{err}");
}

#[test]
fn missing_checkpoint_with_full_wal_replays_from_scratch() {
    // checkpoint_every = 0: no checkpoint is ever taken, the WAL reaches
    // back to lsn 0, and recovery is a full replay.
    let h = CrashHarness::new("nockpt", 5, 0);
    drop(h.run_until(5));
    assert!(h.checkpoints().is_empty());
    h.assert_recovers_to(5);
}

#[test]
fn deleted_checkpoint_after_compaction_is_corrupt_not_a_guess() {
    let h = CrashHarness::new("delckpt", 4, 2);
    drop(h.run_until(4));
    let ckpts = h.checkpoints();
    assert!(!ckpts.is_empty(), "compaction must have checkpointed");
    // The WAL before the checkpoint was retired; deleting the checkpoint
    // leaves a hole that recovery must refuse to paper over.
    for c in &ckpts {
        std::fs::remove_file(c).unwrap();
    }
    let err = h.recover().unwrap_err();
    assert!(matches!(err, ServeError::Corrupt { .. }), "{err}");
}

#[test]
fn corrupted_checkpoint_is_a_typed_error() {
    let h = CrashHarness::new("badckpt", 4, 2);
    drop(h.run_until(4));
    let ckpt = h.checkpoints().pop().unwrap();
    let mut bytes = std::fs::read(&ckpt).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&ckpt, &bytes).unwrap();
    let err = h.recover().unwrap_err();
    assert!(matches!(err, ServeError::Corrupt { .. }), "{err}");
}

// ---- replay equivalence ------------------------------------------------

#[test]
fn checkpoint_plus_tail_replay_is_bit_identical_across_cadences() {
    // Same workload under different checkpoint cadences (never, every
    // batch, every 3rd) must recover to identical bytes.
    let mut images: Vec<Vec<u8>> = Vec::new();
    for cadence in [0u64, 1, 3] {
        let h = CrashHarness::new(&format!("cadence{cadence}"), 7, cadence);
        drop(h.run_until(7));
        let engine = Engine::new(Arc::new(h.recover().unwrap()));
        images.push(read_suite_bytes(&engine));
        drop(engine); // release the dir lock before re-opening
        h.assert_recovers_to(7);
    }
    assert!(
        images.windows(2).all(|w| w[0] == w[1]),
        "checkpoint cadence must not change recovered answers"
    );
}

#[test]
fn recovery_is_idempotent() {
    let h = CrashHarness::new("idem", 6, 2);
    drop(h.run_until(6));
    for _ in 0..3 {
        h.assert_recovers_to(6);
    }
}

#[test]
fn recovered_engine_matches_uninterrupted_over_duplex_and_tcp() {
    let h = CrashHarness::new("wire", 5, 3);
    drop(h.run_until(5));
    let recovered = Arc::new(Engine::new(Arc::new(h.recover().unwrap())));
    let oracle = Arc::new(h.oracle(5));
    let expected = read_suite_bytes(&oracle);

    // In-process duplex.
    let (server_end, client_end) = duplex();
    let engine = recovered.clone();
    let server = std::thread::spawn(move || {
        let mut t = server_end;
        let _ = Server::new(engine).serve_connection(&mut t);
    });
    let mut client = Client::over(client_end).unwrap();
    assert_eq!(
        read_suite_bytes_via(&mut client),
        expected,
        "duplex answers must be byte-identical to the uninterrupted oracle"
    );
    client.goodbye().unwrap();
    server.join().unwrap();

    // Real loopback TCP. Fresh engines so query counters start equal
    // (dropping the duplex engine also releases the dir lock).
    drop(recovered);
    let recovered = Arc::new(Engine::new(Arc::new(h.recover().unwrap())));
    let handle = Server::listen(recovered, "127.0.0.1:0", Some(1)).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(
        read_suite_bytes_via(&mut client),
        read_suite_bytes(&h.oracle(5)),
        "TCP answers must be byte-identical to the uninterrupted oracle"
    );
    client.goodbye().unwrap();
    handle.wait();
}

// ---- lifecycle ---------------------------------------------------------

#[test]
fn deregister_retires_durable_state_and_reregister_starts_fresh() {
    let h = CrashHarness::new("dereg", 4, 0);
    let reg = h.run_until(2);
    assert!(reg.deregister("g").unwrap());
    assert!(!reg.deregister("g").unwrap(), "double deregister");
    // Re-register the same name: a fresh epoch-0 lineage.
    reg.register("g", &h.el, &h.labels).unwrap();
    reg.apply_updates("g", &h.batches[0]).unwrap();
    assert_eq!(reg.snapshot("g").unwrap().epoch, 1);
    drop(reg);
    // Recovery replays the deregister + re-register: one batch applied.
    h.assert_recovers_to(1);
    // After a checkpoint the old lineage is physically retired: the WAL
    // holds exactly one segment and recovery still agrees.
    let reg = h.recover().unwrap();
    reg.checkpoint_now().unwrap().unwrap();
    drop(reg);
    assert_eq!(h.wal_segments().len(), 1);
    h.assert_recovers_to(1);
    // A deregister right before the crash survives it too.
    let reg = h.recover().unwrap();
    assert!(reg.deregister("g").unwrap());
    drop(reg);
    let reg = h.recover().unwrap();
    assert!(reg.graph_names().is_empty(), "deregister must be durable");
}

#[test]
fn data_dir_is_locked_against_concurrent_opens() {
    let h = CrashHarness::new("lock", 1, 0);
    let reg = h.run_until(1);
    // While one registry owns the dir, a second open must fail typed —
    // two writers interleaving appends would destroy the log.
    let err = h.recover().unwrap_err();
    assert!(matches!(err, ServeError::Storage { .. }), "{err}");
    drop(reg);
    h.assert_recovers_to(1);
    // A lock left behind by a dead process (kill -9) is reclaimed.
    std::fs::write(h.dir.join("LOCK"), "4294967294").unwrap();
    h.assert_recovers_to(1);
    // Unreadable lock content could be a concurrent opener mid-write, so
    // it fails safe (typed, with cleanup advice) instead of reclaiming.
    std::fs::write(h.dir.join("LOCK"), "not a pid").unwrap();
    let err = h.recover().unwrap_err();
    assert!(matches!(err, ServeError::Storage { .. }), "{err}");
    std::fs::remove_file(h.dir.join("LOCK")).unwrap();
    h.assert_recovers_to(1);
}

#[test]
fn register_heavy_log_still_compacts() {
    // Register/Deregister records count toward the checkpoint cadence,
    // so a log of full-graph Register records cannot grow unboundedly.
    let h = CrashHarness::new("regheavy", 1, 3);
    let reg = Registry::open(SHARDS, h.durability()).unwrap();
    for _ in 0..4 {
        reg.register("g", &h.el, &h.labels).unwrap();
    }
    drop(reg);
    assert_eq!(h.wal_segments().len(), 1, "covered segments retired");
    assert_eq!(h.checkpoints().len(), 1, "a checkpoint was taken");
    h.assert_recovers_to(0);
}

#[test]
fn orphaned_checkpoint_temp_files_are_swept() {
    let h = CrashHarness::new("tmpsweep", 2, 0);
    drop(h.run_until(2));
    // A crash between a checkpoint's temp write and its rename leaves a
    // *.ckpt.tmp behind; recovery must remove it and proceed.
    let orphan = h.dir.join("ckpt-00000000000000aa.ckpt.tmp");
    std::fs::write(&orphan, vec![0u8; 4096]).unwrap();
    h.assert_recovers_to(2);
    assert!(!orphan.exists(), "orphaned temp file swept on open");
}

#[test]
fn checkpoint_compaction_bounds_wal_growth() {
    let h = CrashHarness::new("compact", 9, 2);
    drop(h.run_until(9));
    assert_eq!(h.wal_segments().len(), 1, "covered segments retired");
    assert_eq!(h.checkpoints().len(), 1, "older checkpoints retired");
    h.assert_recovers_to(9);
}

#[test]
fn sync_never_recovers_after_a_clean_close() {
    let h = CrashHarness::new("nosync", 4, 0);
    {
        let reg = Registry::open(
            SHARDS,
            Durability::Wal {
                dir: h.dir.clone(),
                sync: SyncPolicy::Never,
                checkpoint_every: 0,
            },
        )
        .unwrap();
        reg.register("g", &h.el, &h.labels).unwrap();
        for batch in &h.batches {
            reg.apply_updates("g", batch).unwrap();
        }
    } // dropped: the OS file close flushes buffered appends
    h.assert_recovers_to(4);
}

#[test]
fn empty_data_dir_opens_empty_and_serves() {
    let h = CrashHarness::new("fresh", 1, 0);
    let reg = h.recover().unwrap();
    assert!(reg.graph_names().is_empty());
    assert!(matches!(
        reg.snapshot("g"),
        Err(ServeError::UnknownGraph { .. })
    ));
    reg.register("g", &h.el, &h.labels).unwrap();
    drop(reg);
    h.assert_recovers_to(0);
}

// ---- CoW history × durability ------------------------------------------

/// Which blocks (and label slices) consecutive retained epochs share —
/// the CoW structure the replay path must reproduce.
fn sharing_pattern(reg: &Registry, name: &str) -> Vec<(u64, Vec<bool>, Vec<bool>)> {
    let (oldest, newest) = reg.epoch_range(name).unwrap();
    let mut out = Vec::new();
    for e in oldest..newest {
        let a = reg.snapshot_at(name, e).unwrap();
        let b = reg.snapshot_at(name, e + 1).unwrap();
        let blocks: Vec<bool> = a
            .blocks()
            .iter()
            .zip(b.blocks())
            .map(|(x, y)| Arc::ptr_eq(x, y))
            .collect();
        let labels: Vec<bool> = a
            .blocks()
            .iter()
            .zip(b.blocks())
            .map(|(x, y)| y.shares_labels_with(x))
            .collect();
        out.push((e, blocks, labels));
    }
    out
}

#[test]
fn cow_history_replay_recovers_retained_epochs_bit_identically() {
    // Full-WAL replay (no checkpoint compaction) must rebuild not just
    // the newest epoch but the whole retained history ring — same
    // epochs, same bits, and the same per-shard sharing structure the
    // live process published copy-on-write.
    let h = CrashHarness::new("cow_history", 6, 1_000);
    let config = || gee_serve::RegistryConfig {
        default_shards: SHARDS,
        history: gee_serve::HistoryPolicy::keep(4),
        backpressure: gee_serve::BackpressurePolicy::default(),
        durability: h.durability(),
        search: gee_serve::SearchPolicy::Exact,
    };
    let live = Registry::with_config(config()).unwrap();
    live.register("g", &h.el, &h.labels).unwrap();
    // One single-shard edge batch among the scripted mixed batches, so
    // the sharing pattern provably contains fully-shared blocks.
    live.apply_updates("g", &[Update::InsertEdge { u: 1, v: 2, w: 0.5 }])
        .unwrap();
    for batch in &h.batches {
        live.apply_updates("g", batch).unwrap();
    }
    let live_range = live.epoch_range("g").unwrap();
    assert_eq!(live_range, (4, 7), "7 epochs published, 4 retained");
    let live_fps: Vec<u64> = (live_range.0..=live_range.1)
        .map(|e| snapshot_fingerprint(&live.snapshot_at("g", e).unwrap()))
        .collect();
    let live_sharing = sharing_pattern(&live, "g");
    drop(live); // clean close; the WAL holds the full lineage

    let recovered = Registry::with_config(config()).unwrap();
    assert_eq!(recovered.epoch_range("g").unwrap(), live_range);
    let rec_fps: Vec<u64> = (live_range.0..=live_range.1)
        .map(|e| snapshot_fingerprint(&recovered.snapshot_at("g", e).unwrap()))
        .collect();
    assert_eq!(rec_fps, live_fps, "every retained epoch is bit-identical");
    assert_eq!(
        sharing_pattern(&recovered, "g"),
        live_sharing,
        "replay must reproduce the CoW sharing structure"
    );
    // Evicted epochs stay evicted with the same typed error.
    assert!(matches!(
        recovered.snapshot_at("g", 0),
        Err(ServeError::EpochEvicted {
            oldest: 4,
            newest: 7,
            ..
        })
    ));
}

#[test]
fn pinned_reads_survive_crash_recovery_byte_identically() {
    // Kill the process (torn tail) and recover: at_epoch reads of every
    // epoch retained by the recovered ring answer byte-identically to
    // the uninterrupted oracle pinned at the same epoch.
    let h = CrashHarness::new("cow_pinned", 5, 1_000);
    let config = |durability| gee_serve::RegistryConfig {
        default_shards: SHARDS,
        history: gee_serve::HistoryPolicy::keep(8),
        backpressure: gee_serve::BackpressurePolicy::default(),
        durability,
        search: gee_serve::SearchPolicy::Exact,
    };
    let live = Registry::with_config(config(h.durability())).unwrap();
    live.register("g", &h.el, &h.labels).unwrap();
    for batch in &h.batches[..4] {
        live.apply_updates("g", batch).unwrap();
    }
    // Crash mid-append of batch #5: the torn record must be truncated
    // away and epochs 0..=4 recovered.
    live.inject_wal_fault(FaultPoint::TornAppend { keep_bytes: 13 });
    let err = live.apply_updates("g", &h.batches[4]).unwrap_err();
    assert!(matches!(err, ServeError::Storage { .. }), "{err}");
    drop(live);

    let recovered = Engine::new(Arc::new(
        Registry::with_config(config(h.durability())).unwrap(),
    ));
    let oracle = {
        let reg = Registry::with_config(config(Durability::None)).unwrap();
        reg.register("g", &h.el, &h.labels).unwrap();
        for batch in &h.batches[..4] {
            reg.apply_updates("g", batch).unwrap();
        }
        Engine::new(Arc::new(reg))
    };
    assert_eq!(recovered.registry().epoch_range("g").unwrap(), (0, 4));
    for epoch in 0..=4u64 {
        let pinned: Vec<Envelope> = read_requests()
            .into_iter()
            .map(|env| Envelope::new(env.graph, env.request.pinned(epoch)))
            .collect();
        let got = wire::encode(&ServerFrame::Batch {
            id: epoch,
            results: recovered.execute_batch(pinned.clone()),
        });
        let want = wire::encode(&ServerFrame::Batch {
            id: epoch,
            results: oracle.execute_batch(pinned),
        });
        assert_eq!(got, want, "pinned reads at epoch {epoch}");
    }
}

#[test]
fn ann_recovery_reproduces_index_structure_and_answers() {
    // Crash recovery with ANN enabled: the recovered process must
    // rebuild per-shard IVF indexes with the *same structure* (same
    // centroids bit-for-bit, same inverted lists — proved by digest)
    // and answer ANN queries byte-identically to the uninterrupted
    // process. The fixture is larger than the harness default so every
    // shard clears ANN_MIN_SHARD_ROWS and really indexes.
    const AN: usize = 900; // 3 shards × 300 rows, all indexed
    let dir = std::env::temp_dir().join(format!(
        "gee_durability_ann_{}_{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let el = gee_gen::erdos_renyi_gnm(AN, AN * 5, 19);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(
            AN,
            LabelSpec {
                num_classes: K,
                labeled_fraction: 0.4,
            },
            23,
        ),
        K,
    );
    let batch = |b: u32| -> Vec<Update> {
        let v = |i: u32| (b * 131 + i * 17) % AN as u32;
        vec![
            Update::InsertEdge {
                u: v(0),
                v: v(1),
                w: 1.0 + f64::from(b % 3) * 0.5,
            },
            Update::SetLabel {
                v: v(2),
                label: Some(b % K as u32),
            },
        ]
    };
    let config = |durability| gee_serve::RegistryConfig {
        default_shards: SHARDS,
        backpressure: gee_serve::BackpressurePolicy::default(),
        history: gee_serve::HistoryPolicy::default(),
        durability,
        search: gee_serve::SearchPolicy::ann(3),
    };
    let wal = || Durability::Wal {
        dir: dir.clone(),
        sync: SyncPolicy::Always,
        checkpoint_every: 2, // mix checkpoint restore and tail replay
    };

    let live = Registry::with_config(config(wal())).unwrap();
    live.register("g", &el, &labels).unwrap();
    for b in 0..5u32 {
        live.apply_updates("g", &batch(b)).unwrap();
    }
    // Crash mid-append of the 6th batch: it must not survive.
    live.inject_wal_fault(FaultPoint::TornAppend { keep_bytes: 9 });
    assert!(live.apply_updates("g", &batch(5)).is_err());
    drop(live);

    let oracle = {
        let reg = Registry::with_config(config(Durability::None)).unwrap();
        reg.register("g", &el, &labels).unwrap();
        for b in 0..5u32 {
            reg.apply_updates("g", &batch(b)).unwrap();
        }
        Engine::new(Arc::new(reg))
    };
    let recovered = Engine::new(Arc::new(Registry::with_config(config(wal())).unwrap()));
    assert_eq!(recovered.registry().snapshot("g").unwrap().epoch, 5);

    // Same index structure, shard by shard.
    let snap_r = recovered.registry().snapshot("g").unwrap();
    let snap_o = oracle.registry().snapshot("g").unwrap();
    assert_eq!(snap_r.warm_ann_indexes(), SHARDS);
    assert_eq!(snap_o.warm_ann_indexes(), SHARDS);
    for (i, (a, b)) in snap_r.blocks().iter().zip(snap_o.blocks()).enumerate() {
        let (a, b) = (
            a.ann_index_cached().expect("indexed"),
            b.ann_index_cached().expect("indexed"),
        );
        assert_eq!(a.nlist(), b.nlist(), "shard {i}");
        assert_eq!(a.centroids(), b.centroids(), "shard {i} centroids");
        assert_eq!(a.lists(), b.lists(), "shard {i} lists");
        assert_eq!(a.train_lists(), b.train_lists(), "shard {i} train lists");
        assert_eq!(
            a.structure_digest(),
            b.structure_digest(),
            "shard {i} digest"
        );
    }

    // Same ANN answers, byte for byte, through the default (ANN) policy
    // and the exact escape hatch alike.
    let reads: Vec<Envelope> = (0..24u32)
        .map(|i| Envelope::new("g", Request::similar((i * 113) % AN as u32, 10)))
        .chain([
            Envelope::new("g", Request::classify((0..AN as u32 / 4).collect(), 5)),
            Envelope::new(
                "g",
                Request::similar(7, 10).with_search(gee_serve::SearchPolicy::Exact),
            ),
            Envelope::new(
                "g",
                Request::classify(vec![0, 5, 9], 3).with_search(gee_serve::SearchPolicy::ann(1)),
            ),
        ])
        .collect();
    let got = wire::encode(&ServerFrame::Batch {
        id: 0,
        results: recovered.execute_batch(reads.clone()),
    });
    let want = wire::encode(&ServerFrame::Batch {
        id: 0,
        results: oracle.execute_batch(reads),
    });
    assert_eq!(got, want, "recovered ANN answers differ from oracle");

    // Recovery is idempotent for the index structure too.
    drop(recovered);
    let again = Registry::with_config(config(wal())).unwrap();
    let snap_a = again.snapshot("g").unwrap();
    snap_a.warm_ann_indexes();
    for (i, (a, b)) in snap_a.blocks().iter().zip(snap_r.blocks()).enumerate() {
        assert_eq!(
            a.ann_index_cached().unwrap().structure_digest(),
            b.ann_index_cached().unwrap().structure_digest(),
            "shard {i}: re-recovery re-indexes identically"
        );
    }
    drop(again);
    std::fs::remove_dir_all(&dir).ok();
}
