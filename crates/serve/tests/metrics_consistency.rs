//! Regression: `Stats` and `Metrics` must never disagree.
//!
//! Both endpoints describe the same published snapshot and the same
//! counters; PR 6 added `ann_indexed_shards` and `oldest_epoch` to
//! `GraphReport` precisely so a dashboard polling `Metrics` and a
//! client calling `Stats` can be reconciled. This suite pins the
//! agreement exactly at quiescence and as monotone bounds under
//! concurrent writer churn.

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gee_core::Labels;
use gee_graph::io::frame;
use gee_serve::replicate::{ReplFrame, MAX_REPL_FRAME_LEN};
use gee_serve::wal::{encode_record, WalRecord};
use gee_serve::{
    Durability, Engine, Follower, HistoryPolicy, Registry, RegistryConfig, ReplicationListener,
    ReplicationRole, SearchPolicy, SyncPolicy, Update,
};

const N: usize = 600;
const K: usize = 5;

/// Two big shards (300 rows each, above `ANN_MIN_SHARD_ROWS`) so ANN
/// queries actually build per-shard indexes, and history deep enough
/// that churn never evicts an epoch mid-assertion.
fn engine() -> Arc<Engine> {
    let el = gee_gen::erdos_renyi_gnm(N, 4_000, 11);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(
            N,
            gee_gen::LabelSpec {
                num_classes: K,
                labeled_fraction: 0.3,
            },
            5,
        ),
        K,
    );
    let reg = Registry::with_config(RegistryConfig {
        default_shards: 2,
        history: HistoryPolicy::keep(4096),
        ..RegistryConfig::default()
    })
    .expect("in-memory registry opens");
    reg.register("g", &el, &labels).unwrap();
    Arc::new(Engine::new(Arc::new(reg)))
}

/// Exact agreement with no concurrent writers: every field the two
/// reports share must match, modulo the one deterministic offset — the
/// `Stats` read itself is a served query, so the `Metrics` taken right
/// after it sees exactly one more.
fn assert_quiescent_agreement(engine: &Engine) {
    let stats = engine.stats("g").unwrap();
    let metrics = engine.metrics("g").unwrap();
    assert_eq!(metrics.graph, stats.graph);
    assert_eq!(metrics.epoch, stats.epoch, "published epoch");
    assert_eq!(metrics.oldest_epoch, stats.oldest_epoch, "retention floor");
    assert_eq!(
        metrics.ann_indexed_shards, stats.ann_indexed_shards,
        "cached IVF index count"
    );
    assert_eq!(metrics.updates_applied, stats.updates_applied);
    assert_eq!(
        metrics.queries_served,
        stats.queries_served + 1,
        "the Stats read is itself one served query"
    );
    assert!(metrics.history_depth >= 1);
    assert!(metrics.oldest_epoch <= metrics.epoch);
    // v5 replication block: both endpoints call the same
    // `Registry::replication_report`, so at quiescence the whole block
    // agrees (or is absent on both).
    assert_eq!(
        metrics.replication, stats.replication,
        "Stats and Metrics replication blocks diverged"
    );
}

#[test]
fn stats_and_metrics_agree_under_writer_churn() {
    let engine = engine();
    assert_quiescent_agreement(&engine);

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        // Two writers publishing single-edge batches as fast as they can.
        for w in 0..2u32 {
            let engine = &engine;
            let stop = &stop;
            s.spawn(move || {
                let mut turn = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    let u = (w * 7 + turn * 13) % N as u32;
                    let v = (u + 1 + turn % 5) % N as u32;
                    engine
                        .apply_updates("g", vec![Update::InsertEdge { u, v, w: 1.0 }])
                        .unwrap();
                    turn = turn.wrapping_add(1);
                }
            });
        }

        // Reader: under churn the two reports cannot be byte-equal (a
        // publish may land between the calls), but Stats-then-Metrics
        // must stay ordered — nothing an observer derives from the pair
        // may move backwards.
        for _ in 0..300 {
            let stats = engine.stats("g").unwrap();
            let metrics = engine.metrics("g").unwrap();
            assert_eq!(metrics.graph, stats.graph);
            assert!(
                metrics.epoch >= stats.epoch,
                "published epoch is monotone: {} then {}",
                stats.epoch,
                metrics.epoch
            );
            assert!(
                metrics.oldest_epoch >= stats.oldest_epoch,
                "retention floor is monotone"
            );
            assert!(
                metrics.updates_applied >= stats.updates_applied,
                "update counter is monotone"
            );
            assert!(
                metrics.queries_served > stats.queries_served,
                "query counter strictly advances past the Stats read"
            );
            assert!(stats.oldest_epoch <= stats.epoch);
            assert!(metrics.oldest_epoch <= metrics.epoch);
            assert!(stats.ann_indexed_shards <= stats.num_shards);
        }
        stop.store(true, Ordering::Relaxed);
    });

    // Quiescent again: churn must not have introduced any drift.
    assert_quiescent_agreement(&engine);
}

#[test]
fn ann_index_counts_agree_after_index_builds() {
    let engine = engine();
    let before = engine.stats("g").unwrap();
    assert_eq!(before.ann_indexed_shards, 0, "no index before any ANN read");

    // An ANN query forces both shard indexes to build and cache.
    engine
        .similar_with("g", 0, 5, None, Some(SearchPolicy::ann(4)))
        .unwrap();
    assert_quiescent_agreement(&engine);
    let stats = engine.stats("g").unwrap();
    assert_eq!(
        stats.ann_indexed_shards, stats.num_shards,
        "both shards are big enough to index"
    );
    let metrics = engine.metrics("g").unwrap();
    assert!(metrics.ivf_builds >= stats.num_shards as u64);

    // A write publishes a new snapshot; blocks rewritten by it lose
    // their cached index while untouched blocks keep theirs — whatever
    // the count is now, the two endpoints must agree on it.
    engine
        .apply_updates("g", vec![Update::InsertEdge { u: 0, v: 9, w: 1.0 }])
        .unwrap();
    assert_quiescent_agreement(&engine);
}

/// The v5 gauges obey the same law: once a replication listener is
/// attached, both endpoints must report the identical Leader block
/// (`None` before, `Some` after — never one of each).
#[test]
fn replication_gauges_agree_between_endpoints() {
    let dir = std::env::temp_dir().join(format!(
        "gee_metrics_repl_{}_{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let el = gee_gen::erdos_renyi_gnm(80, 300, 3);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(
            80,
            gee_gen::LabelSpec {
                num_classes: 3,
                labeled_fraction: 0.5,
            },
            2,
        ),
        3,
    );
    let reg = Arc::new(
        Registry::with_config(RegistryConfig {
            default_shards: 2,
            durability: Durability::Wal {
                dir,
                sync: SyncPolicy::Always,
                checkpoint_every: 10_000,
            },
            ..RegistryConfig::default()
        })
        .unwrap(),
    );
    reg.register("g", &el, &labels).unwrap();
    let engine = Engine::new(reg.clone());

    // Durable but not replicating: the block is absent from both.
    let stats = engine.stats("g").unwrap();
    let metrics = engine.metrics("g").unwrap();
    assert_eq!(stats.replication, None);
    assert_eq!(metrics.replication, None);

    let listener = ReplicationListener::listen(reg, "127.0.0.1:0").unwrap();
    let stats = engine
        .stats("g")
        .unwrap()
        .replication
        .expect("leader block");
    let metrics = engine
        .metrics("g")
        .unwrap()
        .replication
        .expect("leader block");
    assert_eq!(stats, metrics, "idle leader gauges must be identical");
    assert_eq!(stats.role, ReplicationRole::Leader);
    assert!(!stats.connected, "no follower attached");
    listener.shutdown();
}

/// Regression (stale lag): a follower that lost its leader used to keep
/// the dead leader's last heartbeat in its gauges, reporting a frozen
/// `lag_lsns`/`lag_epochs` forever. Disconnecting must clear the
/// leader-side claims — a follower with no leader has no measurable lag
/// — and `Stats`/`Metrics` must agree on the cleared block.
#[test]
fn disconnect_clears_stale_lag_gauges() {
    let dir = std::env::temp_dir().join(format!(
        "gee_metrics_stale_lag_{}_{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let wait_until = |what: &str, mut f: Box<dyn FnMut() -> bool + '_>| {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !f() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(20));
        }
    };

    // A fake leader: one session that registers a small graph, then
    // heartbeats a far-ahead high water (lsn 42, epoch 7) and dies.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let fake = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let _hello = frame::read_frame(&mut stream, MAX_REPL_FRAME_LEN).unwrap();
        let register = encode_record(&WalRecord::Register {
            name: "g".into(),
            shards: 2,
            num_vertices: 10,
            num_classes: 2,
            labels: (0..10).map(|v| (v % 3) - 1).collect(),
            edges: vec![(0, 1, 1.0), (1, 2, 0.5), (2, 3, 1.5)],
        });
        for payload in [
            ReplFrame::Stream {
                from_lsn: 0,
                leader_epoch: None,
            }
            .encode(),
            ReplFrame::Record {
                lsn: 0,
                record: register,
            }
            .encode(),
            ReplFrame::Heartbeat {
                next_lsn: 42,
                epochs: vec![("g".into(), 7)],
                leader_epoch: None,
            }
            .encode(),
        ] {
            frame::write_frame(&mut stream, &payload).unwrap();
        }
        // Give the follower time to ingest, then drop the socket: the
        // leader is dead, its heartbeat claims now unverifiable.
        std::thread::sleep(Duration::from_millis(200));
    });

    let follower = Follower::start(
        RegistryConfig {
            default_shards: 2,
            durability: Durability::Wal {
                dir,
                sync: SyncPolicy::Always,
                checkpoint_every: 10_000,
            },
            ..RegistryConfig::default()
        },
        addr,
    )
    .unwrap();
    wait_until(
        "the far-ahead heartbeat to land",
        Box::new(|| follower.status().leader_next_lsn() == 42),
    );
    let report = follower.registry().replication_report().unwrap();
    assert!(report.lag_lsns > 0, "live heartbeat claims are real lag");
    fake.join().unwrap();
    wait_until(
        "the follower to notice the dead leader",
        Box::new(|| !follower.status().is_connected()),
    );

    let report = follower.registry().replication_report().unwrap();
    assert!(!report.connected);
    assert_eq!(report.lag_lsns, 0, "dead leader's claims must not linger");
    assert_eq!(report.lag_epochs, 0, "dead leader's claims must not linger");

    let engine = Engine::new(follower.registry().clone());
    let stats = engine
        .stats("g")
        .unwrap()
        .replication
        .expect("follower block");
    let metrics = engine
        .metrics("g")
        .unwrap()
        .replication
        .expect("follower block");
    assert_eq!(stats, metrics, "both endpoints see the cleared gauges");
    assert_eq!(stats.role, ReplicationRole::Follower);
    assert_eq!(stats.lag_lsns, 0);
    assert_eq!(stats.lag_epochs, 0);
    follower.shutdown();
}
