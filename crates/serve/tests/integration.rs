//! End-to-end serving acceptance test: register a generated SBM graph,
//! serve batched `Classify` and `Similar` queries across multiple shards,
//! stream edge/label updates through the `DynamicGee` write path, and
//! verify post-update query results equal a from-scratch recompute —
//! with batched and one-at-a-time execution giving identical answers.

use std::sync::Arc;

use gee_core::{AtomicsMode, Labels};
use gee_graph::CsrGraph;
use gee_serve::{Engine, Envelope, Registry, Request, Response, Update};

const SHARDS: usize = 4;
const K_CLASSES: usize = 4;
const KNN: usize = 5;

fn sbm_setup() -> (gee_graph::EdgeList, Labels, Vec<u32>) {
    let sbm = gee_gen::sbm(&gee_gen::SbmParams::balanced(K_CLASSES, 60, 0.25, 0.01), 33);
    let labels =
        Labels::from_options_with_k(&gee_gen::subsample_labels(&sbm.truth, 0.4, 5), K_CLASSES);
    (sbm.edges, labels, sbm.truth)
}

fn unwrap_classes(r: Response) -> Vec<u32> {
    match r {
        Response::Classes(c) => c,
        other => panic!("expected Classes, got {other:?}"),
    }
}

fn unwrap_neighbors(r: Response) -> Vec<(u32, f64)> {
    match r {
        Response::Neighbors(x) => x,
        other => panic!("expected Neighbors, got {other:?}"),
    }
}

#[test]
fn serve_pipeline_end_to_end() {
    let (el, labels, truth) = sbm_setup();
    let n = el.num_vertices();

    // -- Register: epoch-0 embedding must match the paper's parallel path.
    let registry = Arc::new(Registry::new(SHARDS));
    let snap0 = registry
        .register_with_shards("sbm", &el, &labels, SHARDS)
        .unwrap();
    assert!(snap0.num_shards() >= 2, "acceptance requires >= 2 shards");
    let g = CsrGraph::from_edge_list(&el);
    let ligra = gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic);
    ligra.assert_close(&snap0.to_embedding(), 1e-9);

    let engine = Engine::new(registry.clone());
    let queries: Vec<u32> = (0..n as u32).collect();

    // -- Batched reads: Classify + Similar in one batch.
    let batch = vec![
        Envelope::new("sbm", Request::classify(queries.clone(), KNN)),
        Envelope::new("sbm", Request::similar(0, 10)),
        Envelope::new("sbm", Request::similar((n - 1) as u32, 10)),
    ];
    let mut batched: Vec<Response> = engine
        .execute_batch(batch.clone())
        .into_iter()
        .map(Result::unwrap)
        .collect();

    // Batched and one-at-a-time answers must be identical.
    let sequential: Vec<Response> = batch
        .iter()
        .map(|e| engine.execute(&e.graph, e.request.clone()).unwrap())
        .collect();
    assert_eq!(batched, sequential, "batching must not change any answer");

    // The classifier should recover the planted SBM communities well.
    let classes = unwrap_classes(batched.remove(0));
    let acc = gee_eval::accuracy(&classes, &truth);
    assert!(
        acc > 0.8,
        "kNN over the served embedding should recover SBM blocks (acc {acc:.3})"
    );

    // Similar neighbors of a vertex should mostly share its block.
    let neigh = unwrap_neighbors(batched.remove(0));
    let same_block = neigh
        .iter()
        .filter(|&&(v, _)| truth[v as usize] == truth[0])
        .count();
    assert!(
        same_block >= 7,
        "{same_block}/10 nearest should share vertex 0's block"
    );

    // -- Writes: stream a mixed batch of edge/label updates.
    let updates = vec![
        Update::InsertEdge { u: 0, v: 1, w: 2.0 },
        Update::InsertEdge { u: 5, v: 5, w: 1.5 }, // self-loop
        Update::SetLabel {
            v: 2,
            label: Some(3),
        },
        Update::SetLabel { v: 7, label: None },
        Update::RemoveEdge { u: 0, v: 1, w: 2.0 },
        Update::InsertEdge {
            u: 10,
            v: 20,
            w: 4.0,
        },
    ];
    let applied = engine
        .execute(
            "sbm",
            Request::ApplyUpdates {
                updates: updates.clone(),
            },
        )
        .unwrap();
    assert_eq!(
        applied,
        Response::Applied {
            applied: 6,
            epoch: 1
        }
    );

    // -- Post-update reads must equal a from-scratch recompute.
    let mut oracle_dg = gee_core::DynamicGee::new(&el, &labels);
    oracle_dg.insert_edge(0, 1, 2.0);
    oracle_dg.insert_edge(5, 5, 1.5);
    oracle_dg.set_label(2, Some(3));
    oracle_dg.set_label(7, None);
    assert!(oracle_dg.remove_edge(0, 1, 2.0));
    oracle_dg.insert_edge(10, 20, 4.0);
    let fresh = gee_core::serial_optimized::embed(&oracle_dg.edge_list(), &oracle_dg.labels());

    let snap1 = registry.snapshot("sbm").unwrap();
    assert_eq!(snap1.epoch, 1);
    fresh.assert_close(&snap1.to_embedding(), 1e-11);

    // Query-path parity after the update: served Classify equals kNN over
    // the fresh recompute.
    let served = unwrap_classes(
        engine
            .execute("sbm", Request::classify(queries.clone(), KNN))
            .unwrap(),
    );
    let train: Vec<(u32, u32)> = oracle_dg.labels().iter_labeled().collect();
    let expected = gee_eval::knn_classify(fresh.as_slice(), fresh.dim(), &train, &queries, KNN);
    assert_eq!(
        served, expected,
        "post-update Classify must match fresh-recompute kNN"
    );

    // EmbedRow parity after the update.
    let row = match engine.execute("sbm", Request::embed_row(2)).unwrap() {
        Response::Row(r) => r,
        other => panic!("expected Row, got {other:?}"),
    };
    assert_eq!(row.len(), fresh.dim());
    for (a, b) in row.iter().zip(fresh.row(2)) {
        assert!((a - b).abs() < 1e-11);
    }

    // -- Stats reflect the serving history.
    let report = match engine.execute("sbm", Request::stats()).unwrap() {
        Response::Stats(s) => s,
        other => panic!("expected Stats, got {other:?}"),
    };
    assert_eq!(report.graph, "sbm");
    assert_eq!(report.epoch, 1);
    assert_eq!(report.num_vertices, n);
    assert_eq!(report.dim, K_CLASSES);
    assert_eq!(report.num_shards, SHARDS);
    assert_eq!(report.updates_applied, 6);
    assert!(report.queries_served >= 5);
}

#[test]
fn query_path_parity_with_ligra_embed_across_shard_counts() {
    // Satellite: serve's query-path embedding equals gee_core::ligra::embed
    // on the same graph, for every shard count.
    let (el, labels, _) = sbm_setup();
    let g = CsrGraph::from_edge_list(&el);
    let ligra = gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic);
    for shards in [1usize, 2, 3, 8] {
        let registry = Registry::new(shards);
        let snap = registry.register("g", &el, &labels).unwrap();
        ligra.assert_close(&snap.to_embedding(), 1e-9);
    }
}

#[test]
fn update_then_read_equals_static_recompute_randomized() {
    // Satellite: ApplyUpdates followed by a read equals a fresh static
    // recompute, over a random mixed update stream (the DynamicGee
    // validation idea lifted to the serving layer).
    let (el, labels, _) = sbm_setup();
    let n = el.num_vertices() as u32;
    let registry = Arc::new(Registry::new(3));
    registry.register("g", &el, &labels).unwrap();
    let engine = Engine::new(registry.clone());
    let mut oracle = gee_core::DynamicGee::new(&el, &labels);

    let mut updates = Vec::new();
    for i in 0..40u32 {
        let u = (i * 37 + 11) % n;
        let v = (i * 101 + 3) % n;
        match i % 3 {
            0 => updates.push(Update::InsertEdge {
                u,
                v,
                w: 1.0 + f64::from(i % 5),
            }),
            1 => updates.push(Update::SetLabel {
                v: u,
                label: Some(i % K_CLASSES as u32),
            }),
            _ => updates.push(Update::SetLabel { v, label: None }),
        }
    }
    for chunk in updates.chunks(7) {
        engine
            .execute(
                "g",
                Request::ApplyUpdates {
                    updates: chunk.to_vec(),
                },
            )
            .unwrap();
    }
    for u in &updates {
        match *u {
            Update::InsertEdge { u, v, w } => oracle.insert_edge(u, v, w),
            Update::RemoveEdge { u, v, w } => {
                oracle.remove_edge(u, v, w);
            }
            Update::SetLabel { v, label } => oracle.set_label(v, label),
        }
    }
    let fresh = gee_core::serial_optimized::embed(&oracle.edge_list(), &oracle.labels());
    let snap = registry.snapshot("g").unwrap();
    assert_eq!(snap.epoch, (updates.len() as u64).div_ceil(7));
    fresh.assert_close(&snap.to_embedding(), 1e-11);
}
