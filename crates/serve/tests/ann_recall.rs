//! Recall and property harness for per-shard IVF approximate search.
//!
//! Approximate answers are only trustworthy if continuously measured, so
//! this suite pins ANN `Similar`/`Classify` against the **exact scan as
//! an oracle**:
//!
//! * measured recall@top meets a configured floor across random graphs
//!   (ER and SBM), shard counts, and `nprobe` settings;
//! * probing every list (or exhausting the refine pool) makes ANN
//!   **equal** the exact scan bit-for-bit, ties included;
//! * exact mode stays bit-identical to pre-index behavior, no matter
//!   how the registry's default policy is configured;
//! * the documented fallbacks (small shards, `top`/`k` covering the
//!   candidate pool) really do produce exact answers;
//! * degenerate inputs surfaced by the oracle harness — `top`/`k` near
//!   `usize::MAX`, all-equal-distance ties on a zero embedding — return
//!   deterministic, shard-count-invariant orderings instead of panicking
//!   or allocating absurdly (regression tests for the capacity clamp).

use std::collections::HashSet;
use std::sync::Arc;

use gee_core::Labels;
use gee_gen::LabelSpec;
use gee_graph::EdgeList;
use gee_serve::{Engine, Registry, RegistryConfig, SearchPolicy, ServeError, ANN_MIN_SHARD_ROWS};

/// Configured recall floors: each `nprobe` budget must clear its floor
/// against the exact oracle (averaged over the query set), for every
/// graph kind and shard count. More probes ⇒ a higher bar.
const RECALL_FLOORS: [(usize, f64); 3] = [(8, 0.80), (16, 0.93), (32, 0.97)];

/// Classify-agreement floor (fraction of vertices whose ANN-predicted
/// class equals the exact prediction).
const AGREEMENT_FLOOR: f64 = 0.95;

const TOP: usize = 10;

fn er_fixture(n: usize, seed: u64) -> (EdgeList, Labels) {
    let el = gee_gen::erdos_renyi_gnm(n, n * 6, seed);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(
            n,
            LabelSpec {
                num_classes: 5,
                labeled_fraction: 0.4,
            },
            seed ^ 0xA5,
        ),
        5,
    );
    (el, labels)
}

fn sbm_fixture(n: usize, seed: u64) -> (EdgeList, Labels) {
    let blocks = 6usize;
    let sbm = gee_gen::sbm(
        &gee_gen::SbmParams::balanced(blocks, n / blocks, 0.05, 0.002),
        seed,
    );
    let labels = Labels::from_options_with_k(
        &gee_gen::subsample_labels(&sbm.truth, 0.5, seed ^ 0x5A),
        blocks,
    );
    (sbm.edges, labels)
}

fn engine_with(el: &EdgeList, labels: &Labels, shards: usize, search: SearchPolicy) -> Engine {
    let reg = Registry::with_config(RegistryConfig {
        default_shards: shards,
        search,
        ..RegistryConfig::default()
    })
    .unwrap();
    reg.register("g", el, labels).unwrap();
    Engine::new(Arc::new(reg))
}

/// Deterministic spread of query vertices.
fn queries(n: usize, count: usize) -> Vec<u32> {
    (0..count as u32)
        .map(|i| (i * 97 + 13) % n as u32)
        .collect()
}

fn recall(ann: &[(u32, f64)], exact: &[(u32, f64)]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let want: HashSet<u32> = exact.iter().map(|&(v, _)| v).collect();
    ann.iter().filter(|(v, _)| want.contains(v)).count() as f64 / want.len() as f64
}

/// Bit-exact comparison of neighbor lists (ids and distance bits).
fn bits(neighbors: &[(u32, f64)]) -> Vec<(u32, u64)> {
    neighbors.iter().map(|&(v, d)| (v, d.to_bits())).collect()
}

/// Independent brute-force oracle replicating the pre-index `Similar`
/// contract: full scan, `(distance, id)` ascending, self excluded.
fn brute_similar(engine: &Engine, vertex: u32, top: usize) -> Vec<(u32, f64)> {
    let snap = engine.registry().snapshot("g").unwrap();
    let z = snap.to_embedding();
    let qr = z.row(vertex).to_vec();
    let mut all: Vec<(f64, u32)> = (0..z.num_vertices() as u32)
        .filter(|&v| v != vertex)
        .map(|v| {
            let d: f64 = qr
                .iter()
                .zip(z.row(v))
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            (d, v)
        })
        .collect();
    all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    all.truncate(top);
    all.into_iter().map(|(d, v)| (v, d.sqrt())).collect()
}

#[test]
fn exact_mode_is_bit_identical_to_the_brute_force_oracle() {
    // The acceptance contract: SearchPolicy::Exact answers must equal
    // pre-PR behavior bit-for-bit — regardless of whether exact is the
    // configured default or a per-request escape hatch over an ANN
    // default.
    let (el, labels) = er_fixture(900, 3);
    for shards in [1usize, 3, 8] {
        let exact_default = engine_with(&el, &labels, shards, SearchPolicy::Exact);
        let ann_default = engine_with(&el, &labels, shards, SearchPolicy::ann(4));
        for &q in &queries(900, 12) {
            let oracle = brute_similar(&exact_default, q, TOP);
            let via_default = exact_default.similar("g", q, TOP).unwrap();
            let via_escape_hatch = ann_default
                .similar_with("g", q, TOP, None, Some(SearchPolicy::Exact))
                .unwrap();
            assert_eq!(bits(&via_default), bits(&oracle), "shards {shards} q {q}");
            assert_eq!(
                bits(&via_escape_hatch),
                bits(&oracle),
                "escape hatch must ignore the ANN default (shards {shards} q {q})"
            );
        }
        // Classify: exact over an ANN-default registry == exact default.
        let qs = queries(900, 40);
        assert_eq!(
            ann_default
                .classify_with("g", qs.clone(), 5, None, Some(SearchPolicy::Exact))
                .unwrap(),
            exact_default.classify("g", qs, 5).unwrap(),
            "shards {shards}"
        );
    }
}

#[test]
fn ann_similar_recall_meets_the_floor_across_graphs_shards_and_nprobe() {
    let fixtures: [(&str, EdgeList, Labels); 2] = {
        let (er_el, er_labels) = er_fixture(1800, 7);
        let (sbm_el, sbm_labels) = sbm_fixture(1800, 9);
        [("er", er_el, er_labels), ("sbm", sbm_el, sbm_labels)]
    };
    for (kind, el, labels) in &fixtures {
        let n = el.num_vertices();
        for shards in [1usize, 2, 4, 8] {
            let mut last_avg = 0.0;
            for (nprobe, floor) in RECALL_FLOORS {
                let engine = engine_with(el, labels, shards, SearchPolicy::ann(nprobe));
                let exact = engine_with(el, labels, shards, SearchPolicy::Exact);
                let mut total = 0.0;
                let qs = queries(n, 32);
                for &q in &qs {
                    let approx = engine.similar("g", q, TOP).unwrap();
                    let oracle = exact.similar("g", q, TOP).unwrap();
                    assert_eq!(approx.len(), oracle.len());
                    assert!(
                        approx.windows(2).all(|w| w[0].1 <= w[1].1),
                        "ANN results stay distance-sorted"
                    );
                    total += recall(&approx, &oracle);
                }
                let avg = total / qs.len() as f64;
                assert!(
                    avg >= floor,
                    "{kind}: recall@{TOP} = {avg:.3} < {floor} \
                     (shards {shards}, nprobe {nprobe})"
                );
                // A bigger probe budget never hurts measured recall on
                // these fixtures (same index, strictly larger pools).
                assert!(
                    avg + 1e-9 >= last_avg,
                    "{kind}: recall fell from {last_avg:.3} to {avg:.3} \
                     as nprobe grew to {nprobe} (shards {shards})"
                );
                last_avg = avg;
            }
        }
    }
}

#[test]
fn ann_classify_agrees_with_the_exact_oracle() {
    let (el, labels) = sbm_fixture(1800, 21);
    let n = el.num_vertices();
    for shards in [1usize, 4, 8] {
        let engine = engine_with(&el, &labels, shards, SearchPolicy::ann(8));
        let exact = engine_with(&el, &labels, shards, SearchPolicy::Exact);
        for k in [1usize, 5] {
            let qs = queries(n, 200);
            let approx = engine.classify("g", qs.clone(), k).unwrap();
            let oracle = exact.classify("g", qs, k).unwrap();
            let agree = approx.iter().zip(&oracle).filter(|(a, b)| a == b).count() as f64
                / approx.len() as f64;
            assert!(
                agree >= AGREEMENT_FLOOR,
                "classify agreement {agree:.3} < {AGREEMENT_FLOOR} (shards {shards}, k {k})"
            );
        }
    }
}

#[test]
fn probing_every_list_equals_exact_bit_for_bit() {
    // nprobe >= nlist (nlist <= sqrt(rows) <= n) means the candidate
    // pool is the whole shard — and because ANN ranks candidates by the
    // same (distance, id) total order the exact merge uses, the answers
    // must be *equal*, ties included, not merely high-recall.
    let (el, labels) = er_fixture(1500, 31);
    let n = el.num_vertices();
    for shards in [1usize, 4] {
        let full_probe = SearchPolicy::Ann {
            nprobe: n, // >= nlist of every block
            refine: 1,
        };
        let engine = engine_with(&el, &labels, shards, full_probe);
        let exact = engine_with(&el, &labels, shards, SearchPolicy::Exact);
        for &q in &queries(n, 16) {
            assert_eq!(
                bits(&engine.similar("g", q, TOP).unwrap()),
                bits(&exact.similar("g", q, TOP).unwrap()),
                "shards {shards} q {q}"
            );
        }
        let qs = queries(n, 120);
        assert_eq!(
            engine.classify("g", qs.clone(), 5).unwrap(),
            exact.classify("g", qs, 5).unwrap(),
            "shards {shards}"
        );
    }
}

#[test]
fn refine_floor_forces_exactness_when_the_pool_is_everything() {
    // refine so large that the pool floor (refine × top) exceeds every
    // shard's row count: probing exhausts all lists → exact answers.
    let (el, labels) = er_fixture(1200, 17);
    let engine = engine_with(
        &el,
        &labels,
        4,
        SearchPolicy::Ann {
            nprobe: 1,
            refine: usize::MAX,
        },
    );
    let exact = engine_with(&el, &labels, 4, SearchPolicy::Exact);
    for &q in &queries(1200, 10) {
        assert_eq!(
            bits(&engine.similar("g", q, TOP).unwrap()),
            bits(&exact.similar("g", q, TOP).unwrap()),
            "q {q}"
        );
    }
}

#[test]
fn small_shards_never_index_and_answer_exactly() {
    // Every shard below ANN_MIN_SHARD_ROWS: the ANN policy must be a
    // silent no-op (no index built, bit-identical exact answers).
    let n = ANN_MIN_SHARD_ROWS * 2; // 4 shards → n/4 rows each, all small
    let (el, labels) = er_fixture(n, 41);
    let engine = engine_with(&el, &labels, 4, SearchPolicy::ann(2));
    let exact = engine_with(&el, &labels, 4, SearchPolicy::Exact);
    for &q in &queries(n, 10) {
        assert_eq!(
            bits(&engine.similar("g", q, 7).unwrap()),
            bits(&exact.similar("g", q, 7).unwrap()),
            "q {q}"
        );
    }
    let snap = engine.registry().snapshot("g").unwrap();
    assert_eq!(snap.warm_ann_indexes(), 0, "no block is big enough");
    for block in snap.blocks() {
        assert!(block.ann_index().is_none());
        assert!(block.ann_index_cached().is_none());
    }
}

#[test]
fn oversized_top_and_k_fall_back_to_exact_without_panicking() {
    let n = 700usize;
    let (el, labels) = er_fixture(n, 51);
    let engine = engine_with(&el, &labels, 3, SearchPolicy::ann(2));
    let exact = engine_with(&el, &labels, 3, SearchPolicy::Exact);
    // top == n exceeds every live row (self excluded): full ranking.
    let all_ann = engine.similar("g", 5, n).unwrap();
    let all_exact = exact.similar("g", 5, n).unwrap();
    assert_eq!(all_ann.len(), n - 1);
    assert_eq!(bits(&all_ann), bits(&all_exact));
    // Regression (capacity clamp): top = usize::MAX used to feed
    // Vec::with_capacity(top + 1) — overflow in debug, absurd
    // allocation in release. It must simply return the full ranking.
    let huge = engine.similar("g", 5, usize::MAX).unwrap();
    assert_eq!(bits(&huge), bits(&all_exact));
    let huge = exact.similar("g", 5, usize::MAX).unwrap();
    assert_eq!(bits(&huge), bits(&all_exact));
    // Same clamp on Classify's k: every labeled vertex votes.
    let c_ann = engine.classify("g", vec![0, 1, 2], usize::MAX).unwrap();
    let c_exact = exact.classify("g", vec![0, 1, 2], usize::MAX).unwrap();
    assert_eq!(c_ann, c_exact);
    // And on the facade-level kNN used as the oracle's reference.
    let snap = exact.registry().snapshot("g").unwrap();
    let z = snap.to_embedding();
    let train: Vec<(u32, u32)> = snap.iter_labeled().collect();
    let pred = gee_eval::knn_classify(z.as_slice(), z.dim(), &train, &[0, 1, 2], usize::MAX);
    assert_eq!(pred, c_exact);
}

#[test]
fn all_equal_distance_ties_are_deterministic_and_shard_invariant() {
    // An edgeless graph embeds every vertex at the origin: every
    // distance ties at 0. The contract — ties break toward smaller ids
    // via a total order, never index/probe order — means every shard
    // count and both policies must return exactly [1, 2, .., top] for
    // vertex 0.
    let n = 600usize;
    let el = EdgeList::new_unchecked(n, Vec::new());
    let labels = Labels::from_options_with_k(
        &(0..n)
            .map(|v| (v % 3 == 0).then_some((v % 4) as u32))
            .collect::<Vec<_>>(),
        4,
    );
    let mut all_results = Vec::new();
    for shards in [1usize, 2, 5, 8] {
        for policy in [SearchPolicy::Exact, SearchPolicy::ann(2)] {
            let engine = engine_with(&el, &labels, shards, policy);
            let got = engine.similar("g", 0, 5).unwrap();
            assert_eq!(
                got.iter().map(|&(v, _)| v).collect::<Vec<_>>(),
                vec![1, 2, 3, 4, 5],
                "shards {shards}, {policy:?}"
            );
            assert!(got.iter().all(|&(_, d)| d == 0.0));
            all_results.push(engine.classify("g", queries(n, 20), 3).unwrap());
        }
    }
    for w in all_results.windows(2) {
        assert_eq!(w[0], w[1], "tie-broken classify is shard/policy invariant");
    }
}

#[test]
fn zero_ann_config_is_rejected_at_open_not_per_read() {
    // A registry-wide Ann default with nprobe/refine 0 would start
    // cleanly and then fail every read with an error naming a parameter
    // the client never sent — reject it when the registry opens.
    for (search, param) in [
        (
            SearchPolicy::Ann {
                nprobe: 0,
                refine: 1,
            },
            "nprobe",
        ),
        (
            SearchPolicy::Ann {
                nprobe: 1,
                refine: 0,
            },
            "refine",
        ),
    ] {
        let err = Registry::with_config(RegistryConfig {
            search,
            ..RegistryConfig::default()
        })
        .unwrap_err();
        assert_eq!(
            err,
            ServeError::ZeroLimit {
                param: param.into()
            }
        );
    }
}

#[test]
fn ann_zero_parameters_are_typed_errors() {
    let (el, labels) = er_fixture(400, 61);
    let engine = engine_with(&el, &labels, 2, SearchPolicy::Exact);
    let zero_probe = Some(SearchPolicy::Ann {
        nprobe: 0,
        refine: 1,
    });
    assert_eq!(
        engine.similar_with("g", 0, 5, None, zero_probe),
        Err(ServeError::ZeroLimit {
            param: "nprobe".into()
        })
    );
    let zero_refine = Some(SearchPolicy::Ann {
        nprobe: 1,
        refine: 0,
    });
    assert_eq!(
        engine.classify_with("g", vec![0], 3, None, zero_refine),
        Err(ServeError::ZeroLimit {
            param: "refine".into()
        })
    );
}

#[test]
fn recall_is_perfect_when_probing_everything_and_reported_monotone_settings_hold() {
    // Sanity on the measurement itself: recall of exact-vs-exact is 1,
    // and the full-probe configuration measures recall exactly 1.0.
    let (el, labels) = sbm_fixture(1200, 71);
    let n = el.num_vertices();
    let exact = engine_with(&el, &labels, 4, SearchPolicy::Exact);
    let full = engine_with(
        &el,
        &labels,
        4,
        SearchPolicy::Ann {
            nprobe: n,
            refine: 1,
        },
    );
    for &q in &queries(n, 10) {
        let oracle = exact.similar("g", q, TOP).unwrap();
        assert_eq!(recall(&oracle, &oracle), 1.0);
        assert_eq!(recall(&full.similar("g", q, TOP).unwrap(), &oracle), 1.0);
    }
}
