//! Replication stream-frame hardening.
//!
//! Three layers of defense are pinned here: (1) seeded proptest
//! round-trips over every [`ReplFrame`] variant, (2) a corrupted
//! transport frame (any flipped byte, any truncation point) must be
//! *rejected* — never misread as a different valid message, and (3) a
//! real [`Follower`] fed torn streams, bit flips, bad record payloads,
//! and LSN discontinuities by a scripted fake leader must surface
//! `Corrupt` and apply **nothing**, then recover cleanly when a healthy
//! leader comes back (leader-churn convergence, fingerprint-checked).

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gee_core::Labels;
use gee_gen::LabelSpec;
use gee_graph::io::frame;
use gee_serve::replicate::{ReplFrame, MAX_REPL_FRAME_LEN, REPL_STREAM_VERSION};
use gee_serve::{
    Durability, Follower, HistoryPolicy, Registry, RegistryConfig, ReplicationListener, SyncPolicy,
    Update,
};
use proptest::collection::vec;
use proptest::prelude::*;

mod common;
use common::snapshot_fingerprint;

fn arb_name() -> impl Strategy<Value = String> {
    vec(0usize..8, 0..10).prop_map(|ids| {
        ids.into_iter()
            .map(|i| ['a', 'Z', '0', '_', ' ', '"', 'é', '🦀'][i])
            .collect()
    })
}

fn arb_frame() -> impl Strategy<Value = ReplFrame> {
    prop_oneof![
        any::<u64>().prop_map(|start_lsn| ReplFrame::Hello {
            version: REPL_STREAM_VERSION,
            start_lsn
        }),
        (any::<u32>(), any::<u64>())
            .prop_map(|(version, start_lsn)| ReplFrame::Hello { version, start_lsn }),
        any::<u64>().prop_map(|lsn| ReplFrame::Bootstrap { lsn }),
        any::<u64>().prop_map(|from_lsn| ReplFrame::Stream { from_lsn }),
        (any::<u64>(), vec(any::<u8>(), 0..64))
            .prop_map(|(lsn, record)| ReplFrame::Record { lsn, record }),
        (any::<u64>(), vec((arb_name(), any::<u64>()), 0..5))
            .prop_map(|(next_lsn, epochs)| ReplFrame::Heartbeat { next_lsn, epochs }),
        arb_name().prop_map(|detail| ReplFrame::End { detail }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn repl_frames_round_trip(x in arb_frame()) {
        let payload = x.encode();
        prop_assert_eq!(ReplFrame::decode(&payload).unwrap(), x);
    }

    /// A single flipped byte anywhere in the *transport* frame
    /// (length, CRC, or payload) must never survive the read+decode
    /// path as the original message — the CRC over the payload, and the
    /// length prefix's role in locating that CRC, see to it.
    #[test]
    fn flipped_bytes_never_round_trip(x in arb_frame(), pos in any::<usize>(), bit in 0usize..8) {
        let mut framed = frame::encode_frame(&x.encode());
        let pos = pos % framed.len();
        framed[pos] ^= 1 << bit;
        let mut cursor = &framed[..];
        match frame::read_frame(&mut cursor, MAX_REPL_FRAME_LEN) {
            Err(_) => {} // torn, too-long, or bad CRC: rejected at the transport layer
            Ok(payload) => {
                // The flip landed such that a frame still parsed (e.g. a
                // length flip that found another CRC-consistent span —
                // not constructible here, but guard anyway): it must not
                // decode back to the message we sent.
                prop_assert_ne!(ReplFrame::decode(&payload).ok().as_ref(), Some(&x));
            }
        }
    }

    /// Truncation at any byte boundary is torn, never silently short.
    #[test]
    fn truncated_frames_are_torn(x in arb_frame(), cut in any::<usize>()) {
        let framed = frame::encode_frame(&x.encode());
        let cut = cut % framed.len(); // strictly shorter than the frame
        let mut cursor = &framed[..cut];
        prop_assert!(frame::read_frame(&mut cursor, MAX_REPL_FRAME_LEN).is_err());
    }
}

// ---------------------------------------------------------------------
// Fake-leader fault injection against a real Follower.
// ---------------------------------------------------------------------

const N: usize = 40;
const K: usize = 3;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gee_repl_frames_{tag}_{}_{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(dir: &PathBuf) -> RegistryConfig {
    RegistryConfig {
        default_shards: 2,
        history: HistoryPolicy::keep(4),
        durability: Durability::Wal {
            dir: dir.clone(),
            sync: SyncPolicy::Always,
            checkpoint_every: 10_000,
        },
        ..RegistryConfig::default()
    }
}

fn wait_until(what: &str, secs: u64, mut f: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !f() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Accept one follower connection, read its Hello, answer with
/// `Stream{from_lsn: 0}`, then hand the raw socket to `sabotage`.
fn fake_leader_session(listener: &TcpListener, sabotage: impl FnOnce(&mut TcpStream)) {
    let (mut stream, _) = listener.accept().unwrap();
    let hello = frame::read_frame(&mut stream, MAX_REPL_FRAME_LEN).unwrap();
    match ReplFrame::decode(&hello).unwrap() {
        ReplFrame::Hello { version, start_lsn } => {
            assert_eq!(version, REPL_STREAM_VERSION);
            assert_eq!(start_lsn, 0, "fresh follower starts at lsn 0");
        }
        other => panic!("expected Hello, got {other:?}"),
    }
    frame::write_frame(&mut stream, &ReplFrame::Stream { from_lsn: 0 }.encode()).unwrap();
    sabotage(&mut stream);
}

/// Run one sabotage script against a fresh follower and wait until it
/// reports an error containing `expect` (later reconnect failures may
/// overwrite it, so match any sample). Asserts nothing was ever
/// applied.
fn assert_sabotage_surfaces(
    tag: &str,
    expect: &str,
    sabotage: impl FnOnce(&mut TcpStream) + Send + 'static,
) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let fake = std::thread::spawn(move || fake_leader_session(&listener, sabotage));
    let follower = Follower::start(config(&tmp(tag)), addr).unwrap();
    let mut seen = Vec::new();
    wait_until(
        &format!("an error mentioning {expect:?} (saw {seen:?})"),
        10,
        || {
            if let Some(e) = follower.status().last_error() {
                if !seen.contains(&e) {
                    seen.push(e);
                }
            }
            seen.iter().any(|e| e.contains(expect))
        },
    );
    fake.join().unwrap();
    // Nothing may have reached the apply path.
    assert_eq!(
        follower.registry().wal_high_water(),
        Some(0),
        "corrupt stream must not append to the replica log"
    );
    assert!(follower.registry().graph_names().is_empty());
    follower.shutdown();
}

/// A syntactically valid Record frame carrying `record` at `lsn`.
fn record_frame(lsn: u64, record: &[u8]) -> Vec<u8> {
    frame::encode_frame(
        &ReplFrame::Record {
            lsn,
            record: record.to_vec(),
        }
        .encode(),
    )
}

/// A real WAL record payload (a one-edge batch) to corrupt.
fn real_record() -> Vec<u8> {
    gee_serve::wal::encode_record(&gee_serve::wal::WalRecord::Batch {
        name: "g".into(),
        updates: vec![Update::InsertEdge { u: 0, v: 1, w: 1.0 }],
    })
}

#[test]
fn bit_flip_in_transport_frame_surfaces_corrupt() {
    assert_sabotage_surfaces("flip", "checksum mismatch", |stream| {
        let mut framed = record_frame(0, &real_record());
        let last = framed.len() - 1;
        framed[last] ^= 0x10; // payload flip: CRC no longer matches
        let _ = stream.write_all(&framed);
        let _ = stream.flush();
        // Hold the socket open so the read loop sees the bad frame, not EOF.
        std::thread::sleep(Duration::from_millis(300));
    });
}

#[test]
fn torn_stream_mid_frame_surfaces_corrupt() {
    assert_sabotage_surfaces("torn", "torn frame", |stream| {
        let framed = record_frame(0, &real_record());
        let _ = stream.write_all(&framed[..framed.len() / 2]);
        let _ = stream.flush();
        // Close mid-frame: a torn tail, not a clean boundary.
    });
}

#[test]
fn undecodable_record_payload_surfaces_corrupt() {
    assert_sabotage_surfaces("badrecord", "record at lsn 0", |stream| {
        // Transport-valid frame (CRC fine) around garbage record bytes:
        // the WAL decoder is the last line of defense.
        let _ = stream.write_all(&record_frame(0, &[0xEE; 16]));
        let _ = stream.flush();
        std::thread::sleep(Duration::from_millis(300));
    });
}

#[test]
fn lsn_discontinuity_surfaces_corrupt() {
    // Valid record, wrong position: the replica expects lsn 0.
    assert_sabotage_surfaces("gap", "sent lsn 7", |stream| {
        let _ = stream.write_all(&record_frame(7, &real_record()));
        let _ = stream.flush();
        std::thread::sleep(Duration::from_millis(300));
    });
}

/// Leader churn: the follower rides out a leader restart (new listener,
/// same data) plus injected garbage between sessions, reconnects by
/// itself, and still converges fingerprint-identically epoch for epoch.
#[test]
fn follower_converges_through_leader_churn() {
    let leader_dir = tmp("churn_leader");
    let follower_dir = tmp("churn_follower");
    let leader = Arc::new(Registry::with_config(config(&leader_dir)).unwrap());
    let el = gee_gen::erdos_renyi_gnm(N, 180, 5);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(
            N,
            LabelSpec {
                num_classes: K,
                labeled_fraction: 0.5,
            },
            3,
        ),
        K,
    );
    leader.register("g", &el, &labels).unwrap();

    let listener = ReplicationListener::listen(leader.clone(), "127.0.0.1:0").unwrap();
    let addr = listener.addr();
    let follower = Follower::start(config(&follower_dir), addr.to_string()).unwrap();

    let batch = |b: u32| {
        vec![Update::InsertEdge {
            u: b % N as u32,
            v: (b * 7 + 1) % N as u32,
            w: 1.0 + f64::from(b % 3),
        }]
    };
    for b in 0..6u32 {
        leader.apply_updates("g", &batch(b)).unwrap();
    }
    wait_until("first convergence", 10, || {
        follower.registry().wal_high_water() == leader.wal_high_water()
    });

    // Churn: kill the listener mid-life, write while it is down, then
    // bring a new one up on the SAME port so the follower's retry loop
    // finds it again.
    listener.shutdown();
    for b in 6..12u32 {
        leader.apply_updates("g", &batch(b)).unwrap();
    }
    let listener = ReplicationListener::listen(leader.clone(), addr).unwrap();
    wait_until("post-churn convergence", 10, || {
        follower.registry().wal_high_water() == leader.wal_high_water()
            && follower.status().leader_next_lsn() == leader.wal_high_water().unwrap()
    });

    // Epoch-for-epoch fingerprints.
    let (l_old, l_new) = leader.epoch_range("g").unwrap();
    let (f_old, f_new) = follower.registry().epoch_range("g").unwrap();
    assert_eq!(l_new, f_new);
    for epoch in l_old.max(f_old)..=l_new {
        assert_eq!(
            snapshot_fingerprint(&leader.snapshot_at("g", epoch).unwrap()),
            snapshot_fingerprint(&follower.registry().snapshot_at("g", epoch).unwrap()),
            "epoch {epoch} diverged across leader churn"
        );
    }

    follower.shutdown();
    listener.shutdown();
}
