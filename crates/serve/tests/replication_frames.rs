//! Replication stream-frame hardening.
//!
//! Three layers of defense are pinned here: (1) seeded proptest
//! round-trips over every [`ReplFrame`] variant, (2) a corrupted
//! transport frame (any flipped byte, any truncation point) must be
//! *rejected* — never misread as a different valid message, and (3) a
//! real [`Follower`] fed torn streams, bit flips, bad record payloads,
//! and LSN discontinuities by a scripted fake leader must surface
//! `Corrupt` and apply **nothing**, then recover cleanly when a healthy
//! leader comes back (leader-churn convergence, fingerprint-checked).

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gee_core::Labels;
use gee_gen::LabelSpec;
use gee_graph::io::frame;
use gee_serve::replicate::{ReplFrame, MAX_REPL_FRAME_LEN, REPL_STREAM_VERSION};
use gee_serve::{
    Durability, Follower, HistoryPolicy, Registry, RegistryConfig, ReplicationListener, SyncPolicy,
    Update,
};
use proptest::collection::vec;
use proptest::prelude::*;

mod common;
use common::snapshot_fingerprint;

fn arb_name() -> impl Strategy<Value = String> {
    vec(0usize..8, 0..10).prop_map(|ids| {
        ids.into_iter()
            .map(|i| ['a', 'Z', '0', '_', ' ', '"', 'é', '🦀'][i])
            .collect()
    })
}

/// The `leader_epoch` a v2 handshake frame may carry; `None` models a
/// v1 peer's frame (the field is absent on the wire entirely).
fn arb_leader_epoch() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![Just(None), any::<u64>().prop_map(Some)]
}

fn arb_frame() -> impl Strategy<Value = ReplFrame> {
    prop_oneof![
        (any::<u64>(), any::<u64>()).prop_map(|(start_lsn, max_epoch_seen)| ReplFrame::Hello {
            version: REPL_STREAM_VERSION,
            start_lsn,
            max_epoch_seen,
        }),
        (any::<u32>(), any::<u64>(), any::<u64>()).prop_map(|(version, start_lsn, epoch)| {
            ReplFrame::Hello {
                version,
                start_lsn,
                // A pre-epoch (v1) Hello has no epoch bytes on the wire,
                // so 0 is the canonical decode — required for the
                // round-trip to be bijective.
                max_epoch_seen: if version >= 2 { epoch } else { 0 },
            }
        }),
        (any::<u64>(), arb_leader_epoch())
            .prop_map(|(lsn, leader_epoch)| ReplFrame::Bootstrap { lsn, leader_epoch }),
        (any::<u64>(), arb_leader_epoch()).prop_map(|(from_lsn, leader_epoch)| {
            ReplFrame::Stream {
                from_lsn,
                leader_epoch,
            }
        }),
        (any::<u64>(), vec(any::<u8>(), 0..64))
            .prop_map(|(lsn, record)| ReplFrame::Record { lsn, record }),
        (
            any::<u64>(),
            vec((arb_name(), any::<u64>()), 0..5),
            arb_leader_epoch()
        )
            .prop_map(|(next_lsn, epochs, leader_epoch)| {
                ReplFrame::Heartbeat {
                    next_lsn,
                    epochs,
                    leader_epoch,
                }
            }),
        arb_name().prop_map(|detail| ReplFrame::End { detail }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn repl_frames_round_trip(x in arb_frame()) {
        let payload = x.encode();
        prop_assert_eq!(ReplFrame::decode(&payload).unwrap(), x);
    }

    /// A single flipped byte anywhere in the *transport* frame
    /// (length, CRC, or payload) must never survive the read+decode
    /// path as the original message — the CRC over the payload, and the
    /// length prefix's role in locating that CRC, see to it.
    #[test]
    fn flipped_bytes_never_round_trip(x in arb_frame(), pos in any::<usize>(), bit in 0usize..8) {
        let mut framed = frame::encode_frame(&x.encode());
        let pos = pos % framed.len();
        framed[pos] ^= 1 << bit;
        let mut cursor = &framed[..];
        match frame::read_frame(&mut cursor, MAX_REPL_FRAME_LEN) {
            Err(_) => {} // torn, too-long, or bad CRC: rejected at the transport layer
            Ok(payload) => {
                // The flip landed such that a frame still parsed (e.g. a
                // length flip that found another CRC-consistent span —
                // not constructible here, but guard anyway): it must not
                // decode back to the message we sent.
                prop_assert_ne!(ReplFrame::decode(&payload).ok().as_ref(), Some(&x));
            }
        }
    }

    /// Truncation at any byte boundary is torn, never silently short.
    #[test]
    fn truncated_frames_are_torn(x in arb_frame(), cut in any::<usize>()) {
        let framed = frame::encode_frame(&x.encode());
        let cut = cut % framed.len(); // strictly shorter than the frame
        let mut cursor = &framed[..cut];
        prop_assert!(frame::read_frame(&mut cursor, MAX_REPL_FRAME_LEN).is_err());
    }
}

// ---------------------------------------------------------------------
// Fake-leader fault injection against a real Follower.
// ---------------------------------------------------------------------

const N: usize = 40;
const K: usize = 3;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gee_repl_frames_{tag}_{}_{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(dir: &PathBuf) -> RegistryConfig {
    RegistryConfig {
        default_shards: 2,
        history: HistoryPolicy::keep(4),
        durability: Durability::Wal {
            dir: dir.clone(),
            sync: SyncPolicy::Always,
            checkpoint_every: 10_000,
        },
        ..RegistryConfig::default()
    }
}

fn wait_until(what: &str, secs: u64, mut f: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !f() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Accept one follower connection, read its Hello, answer with
/// `Stream{from_lsn: 0}`, then hand the raw socket to `sabotage`.
fn fake_leader_session(listener: &TcpListener, sabotage: impl FnOnce(&mut TcpStream)) {
    let (mut stream, _) = listener.accept().unwrap();
    let hello = frame::read_frame(&mut stream, MAX_REPL_FRAME_LEN).unwrap();
    match ReplFrame::decode(&hello).unwrap() {
        ReplFrame::Hello {
            version,
            start_lsn,
            max_epoch_seen,
        } => {
            assert_eq!(version, REPL_STREAM_VERSION);
            assert_eq!(start_lsn, 0, "fresh follower starts at lsn 0");
            assert_eq!(max_epoch_seen, 0, "fresh follower has seen no epoch");
        }
        other => panic!("expected Hello, got {other:?}"),
    }
    frame::write_frame(
        &mut stream,
        &ReplFrame::Stream {
            from_lsn: 0,
            leader_epoch: None,
        }
        .encode(),
    )
    .unwrap();
    sabotage(&mut stream);
}

/// Run one sabotage script against a fresh follower and wait until it
/// reports an error containing `expect` (later reconnect failures may
/// overwrite it, so match any sample). Asserts nothing was ever
/// applied.
fn assert_sabotage_surfaces(
    tag: &str,
    expect: &str,
    sabotage: impl FnOnce(&mut TcpStream) + Send + 'static,
) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let fake = std::thread::spawn(move || fake_leader_session(&listener, sabotage));
    let follower = Follower::start(config(&tmp(tag)), addr).unwrap();
    let mut seen = Vec::new();
    wait_until(
        &format!("an error mentioning {expect:?} (saw {seen:?})"),
        10,
        || {
            if let Some(e) = follower.status().last_error() {
                if !seen.contains(&e) {
                    seen.push(e);
                }
            }
            seen.iter().any(|e| e.contains(expect))
        },
    );
    fake.join().unwrap();
    // Nothing may have reached the apply path.
    assert_eq!(
        follower.registry().wal_high_water(),
        Some(0),
        "corrupt stream must not append to the replica log"
    );
    assert!(follower.registry().graph_names().is_empty());
    follower.shutdown();
}

/// A syntactically valid Record frame carrying `record` at `lsn`.
fn record_frame(lsn: u64, record: &[u8]) -> Vec<u8> {
    frame::encode_frame(
        &ReplFrame::Record {
            lsn,
            record: record.to_vec(),
        }
        .encode(),
    )
}

/// A real WAL record payload (a one-edge batch) to corrupt.
fn real_record() -> Vec<u8> {
    gee_serve::wal::encode_record(&gee_serve::wal::WalRecord::Batch {
        name: "g".into(),
        updates: vec![Update::InsertEdge { u: 0, v: 1, w: 1.0 }],
    })
}

#[test]
fn bit_flip_in_transport_frame_surfaces_corrupt() {
    assert_sabotage_surfaces("flip", "checksum mismatch", |stream| {
        let mut framed = record_frame(0, &real_record());
        let last = framed.len() - 1;
        framed[last] ^= 0x10; // payload flip: CRC no longer matches
        let _ = stream.write_all(&framed);
        let _ = stream.flush();
        // Hold the socket open so the read loop sees the bad frame, not EOF.
        std::thread::sleep(Duration::from_millis(300));
    });
}

#[test]
fn torn_stream_mid_frame_surfaces_corrupt() {
    assert_sabotage_surfaces("torn", "torn frame", |stream| {
        let framed = record_frame(0, &real_record());
        let _ = stream.write_all(&framed[..framed.len() / 2]);
        let _ = stream.flush();
        // Close mid-frame: a torn tail, not a clean boundary.
    });
}

#[test]
fn undecodable_record_payload_surfaces_corrupt() {
    assert_sabotage_surfaces("badrecord", "record at lsn 0", |stream| {
        // Transport-valid frame (CRC fine) around garbage record bytes:
        // the WAL decoder is the last line of defense.
        let _ = stream.write_all(&record_frame(0, &[0xEE; 16]));
        let _ = stream.flush();
        std::thread::sleep(Duration::from_millis(300));
    });
}

#[test]
fn lsn_discontinuity_surfaces_corrupt() {
    // Valid record, wrong position: the replica expects lsn 0.
    assert_sabotage_surfaces("gap", "sent lsn 7", |stream| {
        let _ = stream.write_all(&record_frame(7, &real_record()));
        let _ = stream.flush();
        std::thread::sleep(Duration::from_millis(300));
    });
}

/// A fake leader that keeps accepting sessions forever: each one gets a
/// clean `Stream` handshake and an immediate graceful `End`. Models an
/// idle-but-healthy leader that rotates connections. The thread leaks
/// (blocked in accept) when the test ends; the port frees at process
/// exit.
fn spawn_idle_leader() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || loop {
        let Ok((mut stream, _)) = listener.accept() else {
            return;
        };
        let Ok(hello) = frame::read_frame(&mut stream, MAX_REPL_FRAME_LEN) else {
            continue;
        };
        let Ok(ReplFrame::Hello { start_lsn, .. }) = ReplFrame::decode(&hello) else {
            continue;
        };
        let _ = frame::write_frame(
            &mut stream,
            &ReplFrame::Stream {
                from_lsn: start_lsn,
                leader_epoch: Some(0),
            }
            .encode(),
        );
        let _ = frame::write_frame(
            &mut stream,
            &ReplFrame::End {
                detail: "leader rotating connections".into(),
            }
            .encode(),
        );
    });
    addr
}

/// Regression (reconnect backoff): a follower of an idle leader used to
/// reset its backoff only when records were applied, so clean handshake
/// after clean handshake still climbed to the 2 s max. A successful
/// `Stream` handshake must reset it.
#[test]
fn idle_sessions_reset_reconnect_backoff() {
    let addr = spawn_idle_leader();
    let follower = Follower::start(config(&tmp("idle_backoff")), addr).unwrap();
    wait_until("the first graceful session", 10, || {
        follower.status().last_graceful_end().is_some()
    });
    // Let several more idle sessions churn. Pre-fix, ~1 s of clean
    // 100 ms-spaced sessions doubles the gauge to >= 400 ms; post-fix
    // every completed handshake snaps it back to the 100 ms floor.
    std::thread::sleep(Duration::from_secs(1));
    assert_eq!(
        follower.status().reconnect_backoff(),
        Duration::from_millis(100),
        "a healthy-but-idle leader must not inflate the reconnect backoff"
    );
    follower.shutdown();
}

/// Regression (graceful End): an orderly leader goodbye used to land in
/// `last_error`, indistinguishable from a fault. It must be tracked
/// separately, leaving `last_error` clean.
#[test]
fn graceful_end_is_not_an_error() {
    let addr = spawn_idle_leader();
    let follower = Follower::start(config(&tmp("graceful_end")), addr).unwrap();
    wait_until("a graceful end to be recorded", 10, || {
        follower.status().last_graceful_end().is_some()
    });
    let end = follower.status().last_graceful_end().unwrap();
    assert!(
        end.contains("leader rotating connections"),
        "graceful end should carry the leader's detail: {end:?}"
    );
    assert_eq!(
        follower.status().last_error(),
        None,
        "an orderly End is not a fault"
    );
    follower.shutdown();
}

/// Fencing, follower side: a leader advertising an epoch *below* the
/// highest this follower has durably seen is deposed — the session is
/// rejected with the typed StaleLeader error and nothing is applied.
#[test]
fn follower_rejects_stale_leader() {
    let dir = tmp("stale_leader");
    // Durably raise the dir's seen-epoch to 2 (two offline promotions).
    {
        let registry = Registry::with_config(config(&dir)).unwrap();
        assert_eq!(registry.promote_to_leader().unwrap(), 1);
        assert_eq!(registry.promote_to_leader().unwrap(), 2);
    }
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let fake = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let hello = frame::read_frame(&mut stream, MAX_REPL_FRAME_LEN).unwrap();
        match ReplFrame::decode(&hello).unwrap() {
            ReplFrame::Hello { max_epoch_seen, .. } => {
                assert_eq!(max_epoch_seen, 2, "recovered epoch rides in the Hello")
            }
            other => panic!("expected Hello, got {other:?}"),
        }
        // Claim a superseded epoch: the follower must refuse.
        frame::write_frame(
            &mut stream,
            &ReplFrame::Stream {
                from_lsn: 0,
                leader_epoch: Some(1),
            }
            .encode(),
        )
        .unwrap();
        // Hold the socket open so the rejection comes from the epoch
        // check, not a dropped connection.
        std::thread::sleep(Duration::from_millis(500));
    });
    let follower = Follower::start(config(&dir), addr).unwrap();
    wait_until("the stale-leader rejection", 10, || {
        follower
            .status()
            .last_error()
            .is_some_and(|e| e.contains("stale"))
    });
    assert_eq!(
        follower.registry().wal_high_water(),
        Some(0),
        "nothing from a stale leader may be applied"
    );
    assert_eq!(follower.registry().leader_epoch(), 2);
    fake.join().unwrap();
    follower.shutdown();
}

/// Version negotiation against a real listener: a v1 peer (no epoch in
/// its Hello) is still served, with every handshake/heartbeat frame
/// epoch-free; a v2 peer gets the leader epoch on the same frames.
#[test]
fn leader_serves_v1_and_v2_peers() {
    let dir = tmp("v1v2_leader");
    let leader = Arc::new(Registry::with_config(config(&dir)).unwrap());
    let el = gee_gen::erdos_renyi_gnm(N, 120, 9);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(
            N,
            LabelSpec {
                num_classes: K,
                labeled_fraction: 0.5,
            },
            4,
        ),
        K,
    );
    leader.register("g", &el, &labels).unwrap();
    let listener = ReplicationListener::listen(leader.clone(), "127.0.0.1:0").unwrap();

    for version in [1u32, 2] {
        let mut stream = TcpStream::connect(listener.addr()).unwrap();
        frame::write_frame(
            &mut stream,
            &ReplFrame::Hello {
                version,
                start_lsn: 0,
                max_epoch_seen: 0,
            }
            .encode(),
        )
        .unwrap();
        // Expect Stream, one Record (the Register), then a Heartbeat —
        // epoch present exactly when the peer speaks v2.
        let want_epoch = (version >= 2).then_some(leader.leader_epoch());
        let mut saw_heartbeat = false;
        while !saw_heartbeat {
            let payload = frame::read_frame(&mut stream, MAX_REPL_FRAME_LEN).unwrap();
            match ReplFrame::decode(&payload).unwrap() {
                ReplFrame::Stream { leader_epoch, .. } => {
                    assert_eq!(leader_epoch, want_epoch, "Stream epoch for v{version} peer")
                }
                ReplFrame::Heartbeat { leader_epoch, .. } => {
                    assert_eq!(
                        leader_epoch, want_epoch,
                        "Heartbeat epoch for v{version} peer"
                    );
                    saw_heartbeat = true;
                }
                ReplFrame::Record { .. } => {}
                other => panic!("unexpected frame for v{version} peer: {other:?}"),
            }
        }
    }
    listener.shutdown();
}

/// Fencing, leader side: a Hello claiming a newer epoch than the leader
/// holds deposes it on the spot — the connection is ended, the registry
/// self-fences, writes start failing with the typed StaleLeader error,
/// and the replication report says so.
#[test]
fn leader_self_fences_on_newer_epoch_claim() {
    let dir = tmp("self_fence");
    let leader = Arc::new(Registry::with_config(config(&dir)).unwrap());
    let el = gee_gen::erdos_renyi_gnm(N, 120, 11);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(
            N,
            LabelSpec {
                num_classes: K,
                labeled_fraction: 0.5,
            },
            5,
        ),
        K,
    );
    leader.register("g", &el, &labels).unwrap();
    let listener = ReplicationListener::listen(leader.clone(), "127.0.0.1:0").unwrap();
    assert!(!leader.replication_report().unwrap().fenced);

    let mut stream = TcpStream::connect(listener.addr()).unwrap();
    frame::write_frame(
        &mut stream,
        &ReplFrame::Hello {
            version: REPL_STREAM_VERSION,
            start_lsn: 0,
            max_epoch_seen: 5,
        }
        .encode(),
    )
    .unwrap();
    let payload = frame::read_frame(&mut stream, MAX_REPL_FRAME_LEN).unwrap();
    match ReplFrame::decode(&payload).unwrap() {
        ReplFrame::End { detail } => {
            assert!(detail.contains("fenced"), "End should say why: {detail:?}")
        }
        other => panic!("expected End, got {other:?}"),
    }

    wait_until("the registry to fence", 5, || leader.fenced_by() == Some(5));
    let err = leader
        .apply_updates("g", &[Update::InsertEdge { u: 0, v: 1, w: 1.0 }])
        .unwrap_err();
    assert_eq!(err.code().as_u16(), 16, "fenced writes are StaleLeader");
    assert!(err.to_string().contains("stale"), "{err}");
    let report = leader.replication_report().unwrap();
    assert!(report.fenced, "the v5 report surfaces the fence");
    listener.shutdown();
}

/// Leader churn: the follower rides out a leader restart (new listener,
/// same data) plus injected garbage between sessions, reconnects by
/// itself, and still converges fingerprint-identically epoch for epoch.
#[test]
fn follower_converges_through_leader_churn() {
    let leader_dir = tmp("churn_leader");
    let follower_dir = tmp("churn_follower");
    let leader = Arc::new(Registry::with_config(config(&leader_dir)).unwrap());
    let el = gee_gen::erdos_renyi_gnm(N, 180, 5);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(
            N,
            LabelSpec {
                num_classes: K,
                labeled_fraction: 0.5,
            },
            3,
        ),
        K,
    );
    leader.register("g", &el, &labels).unwrap();

    let listener = ReplicationListener::listen(leader.clone(), "127.0.0.1:0").unwrap();
    let addr = listener.addr();
    let follower = Follower::start(config(&follower_dir), addr.to_string()).unwrap();

    let batch = |b: u32| {
        vec![Update::InsertEdge {
            u: b % N as u32,
            v: (b * 7 + 1) % N as u32,
            w: 1.0 + f64::from(b % 3),
        }]
    };
    for b in 0..6u32 {
        leader.apply_updates("g", &batch(b)).unwrap();
    }
    wait_until("first convergence", 10, || {
        follower.registry().wal_high_water() == leader.wal_high_water()
    });

    // Churn: kill the listener mid-life, write while it is down, then
    // bring a new one up on the SAME port so the follower's retry loop
    // finds it again.
    listener.shutdown();
    for b in 6..12u32 {
        leader.apply_updates("g", &batch(b)).unwrap();
    }
    let listener = ReplicationListener::listen(leader.clone(), addr).unwrap();
    wait_until("post-churn convergence", 10, || {
        follower.registry().wal_high_water() == leader.wal_high_water()
            && follower.status().leader_next_lsn() == leader.wal_high_water().unwrap()
    });

    // Epoch-for-epoch fingerprints.
    let (l_old, l_new) = leader.epoch_range("g").unwrap();
    let (f_old, f_new) = follower.registry().epoch_range("g").unwrap();
    assert_eq!(l_new, f_new);
    for epoch in l_old.max(f_old)..=l_new {
        assert_eq!(
            snapshot_fingerprint(&leader.snapshot_at("g", epoch).unwrap()),
            snapshot_fingerprint(&follower.registry().snapshot_at("g", epoch).unwrap()),
            "epoch {epoch} diverged across leader churn"
        );
    }

    follower.shutdown();
    listener.shutdown();
}
