//! Concurrency stress harness for copy-on-write publication, the epoch
//! history ring, and back-pressure.
//!
//! N writer threads stream deterministic update batches against one
//! graph while M reader threads hammer the read path, and every claim
//! the serving layer makes is checked under contention:
//!
//! * **internal consistency** — every snapshot a reader observes is one
//!   coherent version: rows/labels/train shapes agree, and each block's
//!   train set is exactly the grouping of its labels slice;
//! * **monotone epochs** — per reader, observed epochs never go
//!   backwards;
//! * **linearizable content** — every published epoch's content equals
//!   a sequential replay of the committed batches in epoch order
//!   (fingerprint-compared bit-for-bit, epoch by epoch);
//! * **frozen pins** — repeated `at_epoch` reads of the same epoch are
//!   identical while writers race ahead (or fail typed as evicted);
//! * **back-pressure** — with a bounded policy, overloaded writers get
//!   typed `Overloaded` rejections, never deadlock, and the final state
//!   equals a sequential replay of exactly the successful batches.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gee_core::Labels;
use gee_gen::LabelSpec;
use gee_serve::{
    BackpressurePolicy, Engine, HistoryPolicy, Registry, RegistryConfig, SearchPolicy, ServeError,
    Snapshot, Update,
};

mod common;
use common::snapshot_fingerprint as fingerprint;

const N: usize = 120;
const K: usize = 4;
const SHARDS: usize = 8;

fn fixture() -> (gee_graph::EdgeList, Labels) {
    let el = gee_gen::erdos_renyi_gnm(N, 700, 29);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(
            N,
            LabelSpec {
                num_classes: K,
                labeled_fraction: 0.4,
            },
            11,
        ),
        K,
    );
    (el, labels)
}

/// Check one observed snapshot is a single coherent version.
fn assert_internally_consistent(snap: &Snapshot) {
    let k = snap.dim();
    let mut covered = 0u32;
    let mut labeled = 0usize;
    for block in snap.blocks() {
        let (lo, hi) = block.range();
        assert_eq!(lo, covered, "blocks tile the vertex space");
        covered = hi;
        let len = (hi - lo) as usize;
        assert_eq!(block.rows().len(), len * k, "rows shape");
        assert_eq!(block.labels().len(), len, "labels shape");
        // The train set must be exactly the grouping of this block's
        // labels slice — embedding, labels, and train all from one
        // version, never mixed across epochs.
        let derived: Vec<(u32, u32)> = block
            .labels()
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= 0)
            .map(|(i, &c)| (lo + i as u32, c as u32))
            .collect();
        assert_eq!(block.train(), &derived[..], "train == group(labels)");
        labeled += derived.len();
    }
    assert_eq!(covered as usize, snap.num_vertices());
    assert_eq!(snap.num_labeled(), labeled);
}

/// Deterministic mixed batch, unique per `(writer, i)`.
fn gen_batch(writer: u64, i: u64) -> Vec<Update> {
    let mut x = writer
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i)
        .wrapping_mul(0xbf58_476d_1ce4_e5b9)
        | 1;
    let mut next = move || {
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        x
    };
    let len = 1 + (next() % 5) as usize;
    (0..len)
        .map(|_| {
            let u = (next() % N as u64) as u32;
            let v = (next() % N as u64) as u32;
            match next() % 4 {
                0 | 1 => Update::InsertEdge {
                    u,
                    v,
                    w: 0.5 + (next() % 8) as f64 * 0.25,
                },
                2 => Update::SetLabel {
                    v: u,
                    label: if next() % 3 == 0 {
                        None
                    } else {
                        Some((next() % K as u64) as u32)
                    },
                },
                // Mostly-missing removes exercise the no-op path.
                _ => Update::RemoveEdge { u, v, w: 1.0 },
            }
        })
        .collect()
}

/// Replay `committed` (epoch → batch) sequentially on a fresh registry
/// and require every epoch's fingerprint to match what the concurrent
/// run published at that epoch.
fn assert_equals_sequential_replay(
    el: &gee_graph::EdgeList,
    labels: &Labels,
    committed: &BTreeMap<u64, (Vec<Update>, u64)>,
) {
    let replay = Registry::new(SHARDS);
    replay.register("g", el, labels).unwrap();
    let mut expected_epoch = 1u64;
    for (&epoch, (batch, fp)) in committed {
        assert_eq!(
            epoch, expected_epoch,
            "committed epochs are consecutive with no gaps"
        );
        let (_, snap) = replay.apply_updates("g", batch).unwrap();
        assert_eq!(snap.epoch, epoch);
        assert_eq!(
            fingerprint(&snap),
            *fp,
            "epoch {epoch}: concurrent publication must equal sequential replay"
        );
        expected_epoch += 1;
    }
}

/// The harness: `writers` threads × `batches_each`, `readers` threads,
/// one graph, returning the committed-batch log.
fn run_stress(
    backpressure: BackpressurePolicy,
    writers: usize,
    batches_each: usize,
    readers: usize,
    retry_overloaded: bool,
) -> (
    gee_graph::EdgeList,
    Labels,
    Arc<Registry>,
    BTreeMap<u64, (Vec<Update>, u64)>,
    u64, // overloaded rejections observed
) {
    let (el, labels) = fixture();
    let registry = Arc::new(
        Registry::with_config(RegistryConfig {
            default_shards: SHARDS,
            history: HistoryPolicy::keep(6),
            backpressure,
            ..RegistryConfig::default()
        })
        .unwrap(),
    );
    registry.register("g", &el, &labels).unwrap();
    let engine = Arc::new(Engine::new(registry.clone()));
    let committed: Arc<Mutex<BTreeMap<u64, (Vec<Update>, u64)>>> =
        Arc::new(Mutex::new(BTreeMap::new()));
    let overloaded = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));

    let mut threads = Vec::new();
    for w in 0..writers {
        let registry = registry.clone();
        let committed = committed.clone();
        let overloaded = overloaded.clone();
        threads.push(std::thread::spawn(move || {
            for i in 0..batches_each {
                let batch = gen_batch(w as u64, i as u64);
                loop {
                    match registry.apply_updates("g", &batch) {
                        Ok((_, snap)) => {
                            let prev = committed
                                .lock()
                                .unwrap()
                                .insert(snap.epoch, (batch.clone(), fingerprint(&snap)));
                            assert!(prev.is_none(), "epoch {} published twice", snap.epoch);
                            break;
                        }
                        Err(ServeError::Overloaded {
                            pending,
                            max_pending,
                            ..
                        }) => {
                            overloaded.fetch_add(1, Ordering::Relaxed);
                            assert!(pending >= max_pending, "rejection names a full queue");
                            if !retry_overloaded {
                                break; // shed this batch
                            }
                            std::thread::yield_now();
                        }
                        Err(other) => panic!("writer {w} batch {i}: {other}"),
                    }
                }
            }
        }));
    }

    let mut reader_threads = Vec::new();
    for r in 0..readers {
        let registry = registry.clone();
        let engine = engine.clone();
        let done = done.clone();
        reader_threads.push(std::thread::spawn(move || {
            let mut last_epoch = 0u64;
            let mut observations: Vec<(u64, u64)> = Vec::new();
            let mut spins = 0u64;
            while !done.load(Ordering::Acquire) || spins == 0 {
                spins += 1;
                let snap = registry.snapshot("g").unwrap();
                assert!(
                    snap.epoch >= last_epoch,
                    "reader {r}: epoch went backwards ({} < {last_epoch})",
                    snap.epoch
                );
                last_epoch = snap.epoch;
                assert_internally_consistent(&snap);
                observations.push((snap.epoch, fingerprint(&snap)));
                // Pin an epoch through the engine path and read it twice:
                // both reads frozen-identical, or both typed-evicted.
                let pin = snap.epoch;
                let v = (r as u32 * 31 + spins as u32) % N as u32;
                let first = engine.embed_row_at("g", v, Some(pin));
                let second = engine.embed_row_at("g", v, Some(pin));
                match (&first, &second) {
                    (Ok(a), Ok(b)) => {
                        let bits = |row: &Vec<f64>| -> Vec<u64> {
                            row.iter().map(|x| x.to_bits()).collect()
                        };
                        assert_eq!(bits(a), bits(b), "reader {r}: pinned read moved");
                        // The pinned row equals the held snapshot's row.
                        assert_eq!(bits(a), bits(&snap.row(v).to_vec()));
                    }
                    (Err(ServeError::EpochEvicted { .. }), _)
                    | (_, Err(ServeError::EpochEvicted { .. })) => {}
                    (a, b) => panic!("reader {r}: unexpected pinned results {a:?} / {b:?}"),
                }
            }
            observations
        }));
    }

    for t in threads {
        t.join().unwrap();
    }
    done.store(true, Ordering::Release);
    let committed_map = {
        let guard = committed.lock().unwrap();
        guard.clone()
    };
    for t in reader_threads {
        // Every fingerprint any reader observed matches the one the
        // committing writer recorded for that epoch.
        for (epoch, fp) in t.join().unwrap() {
            if epoch == 0 {
                continue; // registration epoch, not in the batch log
            }
            let (_, want) = committed_map
                .get(&epoch)
                .unwrap_or_else(|| panic!("reader observed unrecorded epoch {epoch}"));
            assert_eq!(fp, *want, "reader-observed epoch {epoch} content");
        }
    }
    let rejections = overloaded.load(Ordering::Relaxed);
    (el, labels, registry, committed_map, rejections)
}

#[test]
fn concurrent_writers_and_readers_equal_sequential_replay() {
    let (el, labels, registry, committed, rejections) = run_stress(
        BackpressurePolicy::unbounded(),
        4,
        30,
        3,
        /* retry_overloaded */ false,
    );
    assert_eq!(rejections, 0, "unbounded policy never rejects");
    assert_eq!(committed.len(), 4 * 30, "every batch committed");
    assert_equals_sequential_replay(&el, &labels, &committed);
    // Final published state is the last committed epoch.
    let final_snap = registry.snapshot("g").unwrap();
    assert_eq!(final_snap.epoch, 4 * 30);
    assert_eq!(
        fingerprint(&final_snap),
        committed.get(&(4 * 30)).unwrap().1
    );
    // The ring retains exactly the newest 6 epochs.
    assert_eq!(registry.epoch_range("g").unwrap(), (4 * 30 - 5, 4 * 30));
}

#[test]
fn backpressure_under_contention_stays_linearizable_with_retries() {
    // Tight bound + retrying writers: every batch eventually lands, the
    // queue never deadlocks, and content still equals sequential replay.
    let (el, labels, registry, committed, _rejections) = run_stress(
        BackpressurePolicy::max_pending(2),
        4,
        15,
        2,
        /* retry_overloaded */ true,
    );
    assert_eq!(committed.len(), 4 * 15, "retries land every batch");
    assert_equals_sequential_replay(&el, &labels, &committed);
    assert_eq!(registry.pending_batches("g").unwrap(), 0, "gauge drains");
}

#[test]
fn backpressure_under_contention_sheds_load_consistently() {
    // Same bound, but rejected batches are shed: whatever subset
    // committed must still form a gap-free epoch sequence whose content
    // equals its own sequential replay.
    let (el, labels, registry, committed, _rejections) = run_stress(
        BackpressurePolicy::max_pending(1),
        4,
        15,
        2,
        /* retry_overloaded */ false,
    );
    assert!(!committed.is_empty(), "at least one batch lands");
    assert!(committed.len() <= 4 * 15);
    assert_equals_sequential_replay(&el, &labels, &committed);
    assert_eq!(
        registry.snapshot("g").unwrap().epoch,
        committed.len() as u64,
        "epochs are consecutive, so the last equals the commit count"
    );
    assert_eq!(registry.pending_batches("g").unwrap(), 0, "gauge drains");
}

#[test]
fn overload_rejection_is_deterministic_under_a_held_slot() {
    // A held write slot saturates max_pending = 1: every concurrent
    // apply from every thread must observe the typed rejection — the
    // deterministic core of the back-pressure contract.
    let (el, labels) = fixture();
    let registry = Arc::new(
        Registry::with_config(RegistryConfig {
            default_shards: SHARDS,
            backpressure: BackpressurePolicy::max_pending(1),
            ..RegistryConfig::default()
        })
        .unwrap(),
    );
    registry.register("g", &el, &labels).unwrap();
    let slot = registry.hold_write_slot("g").unwrap();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let registry = registry.clone();
            std::thread::spawn(move || {
                registry.apply_updates(
                    "g",
                    &[Update::InsertEdge {
                        u: t,
                        v: t + 1,
                        w: 1.0,
                    }],
                )
            })
        })
        .collect();
    for t in threads {
        let err = t.join().unwrap().unwrap_err();
        assert!(
            matches!(err, ServeError::Overloaded { max_pending: 1, .. }),
            "{err}"
        );
    }
    assert_eq!(registry.snapshot("g").unwrap().epoch, 0, "nothing applied");
    drop(slot);
    let (_, snap) = registry
        .apply_updates("g", &[Update::InsertEdge { u: 0, v: 1, w: 1.0 }])
        .unwrap();
    assert_eq!(snap.epoch, 1, "slot released, writes flow again");
}

/// A fixture big enough that every shard builds a real IVF index
/// (`ANN_MIN_SHARD_ROWS` per shard with room to spare).
fn ann_fixture(n: usize) -> (gee_graph::EdgeList, Labels) {
    let el = gee_gen::erdos_renyi_gnm(n, n * 5, 37);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(
            n,
            LabelSpec {
                num_classes: K,
                labeled_fraction: 0.4,
            },
            13,
        ),
        K,
    );
    (el, labels)
}

#[test]
fn ann_pinned_reads_are_frozen_under_writer_churn() {
    // Index immutability per epoch: an ANN read pinned to an epoch must
    // return the same answer while writers race ahead — and the same
    // answer again long after the writers finished, because the pinned
    // block (and the index cached inside it) never changes.
    const AN: usize = 1600;
    let (el, labels) = ann_fixture(AN);
    let registry = Arc::new(
        Registry::with_config(RegistryConfig {
            default_shards: 4,
            history: HistoryPolicy::keep(64), // retain every epoch below
            search: SearchPolicy::ann(4),
            ..RegistryConfig::default()
        })
        .unwrap(),
    );
    registry.register("g", &el, &labels).unwrap();
    let engine = Arc::new(Engine::new(registry.clone()));
    let done = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..2)
        .map(|w| {
            let registry = registry.clone();
            std::thread::spawn(move || {
                for i in 0..20 {
                    // gen_batch targets vertices < N; scale into AN by a
                    // deterministic offset so edits spread across shards.
                    let batch: Vec<Update> = gen_batch(w as u64, i as u64)
                        .into_iter()
                        .map(|u| match u {
                            Update::InsertEdge { u, v, w } => Update::InsertEdge {
                                u: (u as usize * 13 % AN) as u32,
                                v: (v as usize * 7 % AN) as u32,
                                w,
                            },
                            Update::RemoveEdge { u, v, w } => Update::RemoveEdge {
                                u: (u as usize * 13 % AN) as u32,
                                v: (v as usize * 7 % AN) as u32,
                                w,
                            },
                            Update::SetLabel { v, label } => Update::SetLabel {
                                v: (v as usize * 11 % AN) as u32,
                                label,
                            },
                        })
                        .collect();
                    registry.apply_updates("g", &batch).unwrap();
                }
            })
        })
        .collect();

    // Readers: pin whatever epoch is published, ANN-query it twice
    // immediately, and remember (epoch, query, answer) for the
    // post-churn re-check.
    let mut recorded: Vec<(u64, u32, Vec<(u32, f64)>)> = Vec::new();
    let reader = {
        let engine = engine.clone();
        let registry = registry.clone();
        let done = done.clone();
        std::thread::spawn(move || {
            let mut out = Vec::new();
            let mut spins = 0u32;
            while !done.load(Ordering::Acquire) || spins == 0 {
                spins += 1;
                let epoch = registry.snapshot("g").unwrap().epoch;
                let q = (spins * 131) % AN as u32;
                let first = engine.similar_with("g", q, 10, Some(epoch), None);
                let second = engine.similar_with("g", q, 10, Some(epoch), None);
                match (first, second) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a, b, "pinned ANN read moved under churn");
                        out.push((epoch, q, a));
                    }
                    (Err(ServeError::EpochEvicted { .. }), _)
                    | (_, Err(ServeError::EpochEvicted { .. })) => {}
                    (a, b) => panic!("unexpected pinned ANN results {a:?} / {b:?}"),
                }
            }
            out
        })
    };
    for t in writers {
        t.join().unwrap();
    }
    done.store(true, Ordering::Release);
    recorded.extend(reader.join().unwrap());
    assert!(!recorded.is_empty());
    // Re-query every recorded pin now that the dust settled: identical
    // answers, bit for bit (the 64-deep ring retained all 40 epochs).
    for (epoch, q, want) in &recorded {
        let again = engine
            .similar_with("g", *q, 10, Some(*epoch), None)
            .unwrap();
        let bits = |r: &Vec<(u32, f64)>| -> Vec<(u32, u64)> {
            r.iter().map(|&(v, d)| (v, d.to_bits())).collect()
        };
        assert_eq!(
            bits(&again),
            bits(want),
            "epoch {epoch} q {q}: pinned ANN answer changed after churn"
        );
    }
}

#[test]
fn dirty_shard_reindex_shares_clean_shard_indexes() {
    // The CoW contract extended to indexes: a single-shard edge batch
    // republishes one block, so the new epoch re-indexes exactly that
    // shard and *shares* every other shard's cached index by pointer.
    const AN: usize = 1600;
    let (el, labels) = ann_fixture(AN);
    let registry = Registry::with_config(RegistryConfig {
        default_shards: 4,
        search: SearchPolicy::ann(4),
        ..RegistryConfig::default()
    })
    .unwrap();
    let parent = registry.register("g", &el, &labels).unwrap();
    assert_eq!(parent.warm_ann_indexes(), 4, "every shard indexes");
    // Both endpoints inside shard 0 (1600 / 4 = 400 per shard).
    let (_, child) = registry
        .apply_updates("g", &[Update::InsertEdge { u: 1, v: 2, w: 3.0 }])
        .unwrap();
    // Clean blocks share the cached index without rebuilding anything.
    for i in 1..4 {
        let a = child.blocks()[i].ann_index_cached().expect("index cached");
        let b = parent.blocks()[i].ann_index_cached().expect("index cached");
        assert!(Arc::ptr_eq(&a, &b), "shard {i}: clean index must be shared");
    }
    // The dirty block was rebuilt: its cache starts empty and re-indexes
    // on demand into a distinct index.
    assert!(
        child.blocks()[0].ann_index_cached().is_none(),
        "dirty shard starts unindexed"
    );
    child.warm_ann_indexes();
    let rebuilt = child.blocks()[0].ann_index_cached().unwrap();
    let old = parent.blocks()[0].ann_index_cached().unwrap();
    assert!(
        !Arc::ptr_eq(&rebuilt, &old),
        "dirty shard re-indexes (fresh rows, fresh index)"
    );
    // A label no-op batch shares every block, indexes included.
    let (v, c) = labels.iter_labeled().next().unwrap();
    let (_, noop) = registry
        .apply_updates("g", &[Update::SetLabel { v, label: Some(c) }])
        .unwrap();
    for i in 0..4 {
        let a = noop.blocks()[i].ann_index_cached().expect("shared cache");
        let b = child.blocks()[i].ann_index_cached().unwrap();
        assert!(Arc::ptr_eq(&a, &b), "shard {i}: no-op shares the index");
    }
}

#[test]
fn held_snapshots_survive_heavy_concurrent_eviction() {
    // A reader holding a snapshot Arc keeps a fully consistent view even
    // after the ring evicted its epoch and writers rebuilt every block
    // many times over.
    let (el, labels) = fixture();
    let registry = Arc::new(
        Registry::with_config(RegistryConfig {
            default_shards: SHARDS,
            history: HistoryPolicy::keep(2),
            ..RegistryConfig::default()
        })
        .unwrap(),
    );
    registry.register("g", &el, &labels).unwrap();
    let (_, held) = registry
        .apply_updates("g", &[Update::InsertEdge { u: 3, v: 4, w: 2.0 }])
        .unwrap();
    let held_fp = fingerprint(&held);
    let held_epoch = held.epoch;
    let writers: Vec<_> = (0..3)
        .map(|w| {
            let registry = registry.clone();
            std::thread::spawn(move || {
                for i in 0..40 {
                    let batch = gen_batch(w + 100, i);
                    registry.apply_updates("g", &batch).unwrap();
                }
            })
        })
        .collect();
    for t in writers {
        t.join().unwrap();
    }
    assert_eq!(fingerprint(&held), held_fp, "held view never moves");
    assert_internally_consistent(&held);
    assert!(
        matches!(
            registry.snapshot_at("g", held_epoch),
            Err(ServeError::EpochEvicted { .. })
        ),
        "the epoch itself was long evicted from the ring"
    );
}
