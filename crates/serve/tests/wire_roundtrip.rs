//! Wire-encoding round-trip property: `decode(encode(x)) == x` for every
//! `Request` / `Response` / `ServeError` / frame variant, over seeded
//! random instances plus the empty and maximal-size payloads the
//! generators would rarely hit.

use gee_serve::wire::{decode, encode, ClientFrame, ServerFrame};
use gee_serve::{
    Envelope, ErrorCode, GraphReport, HistogramReport, MetricsReport, ReplicationReport,
    ReplicationRole, Request, Response, SearchPolicy, ServeError, Update,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Characters chosen to stress JSON escaping: quotes, backslashes,
/// control characters, multi-byte UTF-8.
const CHAR_PALETTE: [char; 16] = [
    'a', 'Z', '0', '_', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{1}', '\u{7f}', 'é', '🦀', '{',
];

fn arb_string() -> impl Strategy<Value = String> {
    vec(0usize..CHAR_PALETTE.len(), 0..12)
        .prop_map(|ids| ids.into_iter().map(|i| CHAR_PALETTE[i]).collect())
}

fn arb_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1e9f64..1e9,
        Just(0.0),
        Just(-1.0),
        Just(1e308),
        Just(5e-324),
        Just(1e18), // integral float beyond the integer-print cutoff
    ]
}

fn arb_update() -> impl Strategy<Value = Update> {
    prop_oneof![
        (any::<u32>(), any::<u32>(), arb_f64()).prop_map(|(u, v, w)| Update::InsertEdge {
            u,
            v,
            w
        }),
        (any::<u32>(), any::<u32>(), arb_f64()).prop_map(|(u, v, w)| Update::RemoveEdge {
            u,
            v,
            w
        }),
        (
            any::<u32>(),
            prop_oneof![Just(None), any::<u32>().prop_map(Some)]
        )
            .prop_map(|(v, label)| Update::SetLabel { v, label }),
    ]
}

fn arb_epoch_pin() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![
        Just(None),
        any::<u64>().prop_map(Some),
        Just(Some(0)),
        Just(Some(u64::MAX)),
    ]
}

fn arb_search() -> impl Strategy<Value = Option<SearchPolicy>> {
    prop_oneof![
        Just(None),
        Just(Some(SearchPolicy::Exact)),
        (any::<usize>(), any::<usize>())
            .prop_map(|(nprobe, refine)| Some(SearchPolicy::Ann { nprobe, refine })),
        Just(Some(SearchPolicy::Ann {
            nprobe: 0,
            refine: usize::MAX,
        })),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (
            vec(any::<u32>(), 0..8),
            any::<usize>(),
            arb_epoch_pin(),
            arb_search()
        )
            .prop_map(|(vertices, k, at_epoch, search)| Request::Classify {
                vertices,
                k,
                at_epoch,
                search,
            }),
        (any::<u32>(), any::<usize>(), arb_epoch_pin(), arb_search()).prop_map(
            |(vertex, top, at_epoch, search)| {
                Request::Similar {
                    vertex,
                    top,
                    at_epoch,
                    search,
                }
            }
        ),
        (any::<u32>(), arb_epoch_pin())
            .prop_map(|(vertex, at_epoch)| Request::EmbedRow { vertex, at_epoch }),
        vec(arb_update(), 0..6).prop_map(|updates| Request::ApplyUpdates { updates }),
        arb_epoch_pin().prop_map(|at_epoch| Request::Stats { at_epoch }),
        Just(Request::Metrics),
    ]
}

fn arb_replication() -> impl Strategy<Value = Option<ReplicationReport>> {
    prop_oneof![
        Just(None),
        (
            any::<bool>(),
            any::<bool>(),
            (any::<u64>(), any::<u64>(), any::<u64>()),
            (any::<u64>(), any::<u64>(), any::<u64>()),
            (any::<u64>(), any::<bool>()),
        )
            .prop_map(
                |(
                    leader,
                    connected,
                    (shipped_records, shipped_bytes, follower_conns),
                    lags,
                    (leader_epoch, fenced),
                )| {
                    Some(ReplicationReport {
                        role: if leader {
                            ReplicationRole::Leader
                        } else {
                            ReplicationRole::Follower
                        },
                        connected,
                        shipped_records,
                        shipped_bytes,
                        follower_conns,
                        lag_epochs: lags.0,
                        lag_lsns: lags.1,
                        last_durable_lsn: lags.2,
                        leader_epoch,
                        fenced,
                    })
                }
            ),
    ]
}

fn arb_report() -> impl Strategy<Value = GraphReport> {
    (
        arb_string(),
        (any::<u64>(), any::<u64>()),
        (
            any::<usize>(),
            any::<usize>(),
            any::<usize>(),
            any::<usize>(),
            any::<usize>(),
        ),
        (any::<u64>(), any::<u64>()),
        arb_replication(),
    )
        .prop_map(
            |(
                graph,
                (epoch, oldest_epoch),
                (num_vertices, dim, num_shards, num_labeled, ann_indexed_shards),
                (q, u),
                replication,
            )| {
                GraphReport {
                    graph,
                    epoch,
                    oldest_epoch,
                    num_vertices,
                    dim,
                    num_shards,
                    num_labeled,
                    ann_indexed_shards,
                    queries_served: q,
                    updates_applied: u,
                    replication,
                }
            },
        )
}

fn arb_histogram() -> impl Strategy<Value = HistogramReport> {
    prop_oneof![
        Just(HistogramReport::empty()),
        (vec(any::<u64>(), 0..8), any::<u64>(), any::<u64>()).prop_map(|(buckets, count, sum)| {
            HistogramReport {
                buckets,
                count,
                sum,
            }
        }),
    ]
}

fn arb_metrics_report() -> impl Strategy<Value = MetricsReport> {
    (
        (arb_string(), any::<u64>(), any::<u64>(), any::<usize>()),
        (any::<usize>(), any::<u64>(), any::<u64>()),
        vec(arb_histogram(), 7..8),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        arb_replication(),
    )
        .prop_map(
            |(
                (graph, epoch, oldest_epoch, history_depth),
                (ann_indexed_shards, queries_served, updates_applied),
                mut hists,
                (overloaded, wal_fsyncs, ivf_builds, ivf_hits),
                replication,
            )| {
                MetricsReport {
                    graph,
                    epoch,
                    oldest_epoch,
                    history_depth,
                    ann_indexed_shards,
                    queries_served,
                    updates_applied,
                    classify_us: hists.pop().unwrap(),
                    similar_us: hists.pop().unwrap(),
                    embed_row_us: hists.pop().unwrap(),
                    stats_us: hists.pop().unwrap(),
                    metrics_us: hists.pop().unwrap(),
                    apply_updates_us: hists.pop().unwrap(),
                    coalesce: hists.pop().unwrap(),
                    overloaded,
                    wal_fsyncs,
                    ivf_builds,
                    ivf_hits,
                    replication,
                }
            },
        )
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        vec(any::<u32>(), 0..10).prop_map(Response::Classes),
        vec((any::<u32>(), arb_f64()), 0..10).prop_map(Response::Neighbors),
        vec(arb_f64(), 0..10).prop_map(Response::Row),
        (any::<usize>(), any::<u64>())
            .prop_map(|(applied, epoch)| Response::Applied { applied, epoch }),
        arb_report().prop_map(Response::Stats),
        arb_metrics_report().prop_map(Response::Metrics),
    ]
}

fn arb_error() -> impl Strategy<Value = ServeError> {
    prop_oneof![
        arb_string().prop_map(|graph| ServeError::UnknownGraph { graph }),
        (any::<u32>(), any::<usize>()).prop_map(|(vertex, num_vertices)| {
            ServeError::VertexOutOfRange {
                vertex,
                num_vertices,
            }
        }),
        (any::<u32>(), any::<usize>())
            .prop_map(|(class, num_classes)| ServeError::ClassOutOfRange { class, num_classes }),
        arb_string().prop_map(|param| ServeError::ZeroLimit { param }),
        arb_string().prop_map(|graph| ServeError::NoLabeledVertices { graph }),
        arb_string().prop_map(|param| ServeError::NonFinite { param }),
        (any::<usize>(), any::<usize>())
            .prop_map(|(bytes, max_bytes)| ServeError::ResponseTooLarge { bytes, max_bytes }),
        (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()).prop_map(
            |(client_min, client_max, server_min, server_max)| ServeError::VersionUnsupported {
                client_min,
                client_max,
                server_min,
                server_max,
            }
        ),
        arb_string().prop_map(|detail| ServeError::Protocol { detail }),
        arb_string().prop_map(|detail| ServeError::Transport { detail }),
        (arb_string(), arb_string())
            .prop_map(|(path, detail)| ServeError::Corrupt { path, detail }),
        arb_string().prop_map(|detail| ServeError::Storage { detail }),
        (arb_string(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(graph, epoch, oldest, newest)| ServeError::EpochEvicted {
                graph,
                epoch,
                oldest,
                newest,
            }
        ),
        (arb_string(), any::<usize>(), any::<usize>()).prop_map(|(graph, pending, max_pending)| {
            ServeError::Overloaded {
                graph,
                pending,
                max_pending,
            }
        }),
        (arb_string(), arb_string())
            .prop_map(|(graph, leader)| ServeError::ReadOnlyReplica { graph, leader }),
    ]
}

fn arb_envelope() -> impl Strategy<Value = Envelope> {
    (arb_string(), arb_request()).prop_map(|(graph, request)| Envelope { graph, request })
}

fn arb_client_frame() -> impl Strategy<Value = ClientFrame> {
    prop_oneof![
        (any::<u32>(), any::<u32>()).prop_map(|(min_version, max_version)| ClientFrame::Hello {
            min_version,
            max_version
        }),
        (any::<u64>(), vec(arb_envelope(), 0..5))
            .prop_map(|(id, requests)| ClientFrame::Batch { id, requests }),
        Just(ClientFrame::Goodbye),
    ]
}

fn arb_server_frame() -> impl Strategy<Value = ServerFrame> {
    let result = prop_oneof![arb_response().prop_map(Ok), arb_error().prop_map(Err),];
    prop_oneof![
        any::<u32>().prop_map(|version| ServerFrame::HelloAck { version }),
        (any::<u64>(), vec(result, 0..5))
            .prop_map(|(id, results)| ServerFrame::Batch { id, results }),
        arb_error().prop_map(|error| ServerFrame::Error { error }),
    ]
}

fn assert_round_trip<T>(x: &T)
where
    T: serde::Serialize + serde::Deserialize + PartialEq + std::fmt::Debug,
{
    let bytes = encode(x);
    let back: T = decode(&bytes).unwrap_or_else(|e| {
        panic!(
            "decode failed for {x:?}: {e} (frame: {})",
            String::from_utf8_lossy(&bytes)
        )
    });
    assert_eq!(&back, x);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_round_trip(x in arb_request()) {
        assert_round_trip(&x);
    }

    #[test]
    fn responses_round_trip(x in arb_response()) {
        assert_round_trip(&x);
    }

    #[test]
    fn errors_round_trip(x in arb_error()) {
        assert_round_trip(&x);
        // The error code survives the wire too (it is derived, but that
        // derivation must agree on both sides).
        let back: ServeError = decode(&encode(&x)).unwrap();
        prop_assert_eq!(back.code(), x.code());
    }

    #[test]
    fn error_codes_round_trip(x in arb_error()) {
        let code: ErrorCode = decode(&encode(&x.code())).unwrap();
        prop_assert_eq!(code, x.code());
    }

    #[test]
    fn client_frames_round_trip(x in arb_client_frame()) {
        assert_round_trip(&x);
    }

    #[test]
    fn server_frames_round_trip(x in arb_server_frame()) {
        assert_round_trip(&x);
    }
}

#[test]
fn empty_payloads_round_trip() {
    assert_round_trip(&Request::classify(vec![], 0));
    assert_round_trip(&Request::ApplyUpdates { updates: vec![] });
    assert_round_trip(&Response::Classes(vec![]));
    assert_round_trip(&Response::Neighbors(vec![]));
    assert_round_trip(&Response::Row(vec![]));
    assert_round_trip(&Envelope::new("", Request::stats()));
    assert_round_trip(&ClientFrame::Batch {
        id: 0,
        requests: vec![],
    });
    assert_round_trip(&ServerFrame::Batch {
        id: 0,
        results: vec![],
    });
}

#[test]
fn extreme_integers_round_trip() {
    assert_round_trip(&Response::Applied {
        applied: usize::MAX,
        epoch: u64::MAX,
    });
    assert_round_trip(&ClientFrame::Batch {
        id: u64::MAX,
        requests: vec![],
    });
    assert_round_trip(&ServeError::VertexOutOfRange {
        vertex: u32::MAX,
        num_vertices: usize::MAX,
    });
}

#[test]
fn maximal_size_payloads_round_trip() {
    // A frame the size of a real bulk answer: 100k-row classify, a 50k-f64
    // embedding row, and a dense neighbor list.
    let vertices: Vec<u32> = (0..100_000u32).collect();
    assert_round_trip(&Request::classify(vertices, usize::MAX));
    let row: Vec<f64> = (0..50_000).map(|i| (i as f64).sin() * 1e6).collect();
    assert_round_trip(&Response::Row(row));
    let neighbors: Vec<(u32, f64)> = (0..20_000u32).map(|v| (v, f64::from(v) * 0.125)).collect();
    assert_round_trip(&Response::Neighbors(neighbors));
    let updates: Vec<Update> = (0..30_000u32)
        .map(|i| Update::InsertEdge {
            u: i,
            v: i.wrapping_mul(2_654_435_761),
            w: 1.0,
        })
        .collect();
    assert_round_trip(&ClientFrame::Batch {
        id: 1,
        requests: vec![Envelope::new("bulk", Request::ApplyUpdates { updates })],
    });
}

#[test]
fn unpinned_requests_keep_the_v1_byte_encoding() {
    // The at_epoch extension is additive: a request without a pin must
    // encode to exactly the frame a v1 peer produced (no `at_epoch`
    // key; `Stats` stays a bare string), or pinning would break every
    // deployed v1 decoder.
    let cases: [(Request, &str); 4] = [
        (
            Request::classify(vec![3, 1], 5),
            r#"{"Classify":{"vertices":[3,1],"k":5}}"#,
        ),
        (
            Request::similar(7, 10),
            r#"{"Similar":{"vertex":7,"top":10}}"#,
        ),
        (Request::embed_row(9), r#"{"EmbedRow":{"vertex":9}}"#),
        (Request::stats(), r#""Stats""#),
    ];
    for (req, want) in cases {
        assert_eq!(String::from_utf8(encode(&req)).unwrap(), want, "{req:?}");
    }
}

#[test]
fn pinned_requests_add_only_the_at_epoch_key() {
    let cases: [(Request, &str); 4] = [
        (
            Request::classify(vec![3], 5).pinned(8),
            r#"{"Classify":{"vertices":[3],"k":5,"at_epoch":8}}"#,
        ),
        (
            Request::similar(7, 10).pinned(0),
            r#"{"Similar":{"vertex":7,"top":10,"at_epoch":0}}"#,
        ),
        (
            Request::embed_row(9).pinned(u64::MAX),
            r#"{"EmbedRow":{"vertex":9,"at_epoch":18446744073709551615}}"#,
        ),
        (Request::stats().pinned(2), r#"{"Stats":{"at_epoch":2}}"#),
    ];
    for (req, want) in cases {
        assert_eq!(String::from_utf8(encode(&req)).unwrap(), want, "{req:?}");
        assert_round_trip(&req);
    }
}

#[test]
fn search_overrides_add_only_the_search_key() {
    // The v3 extension: a `search` override appends one key after any
    // `at_epoch` pin; everything before it is the v2 (or v1) byte
    // encoding unchanged.
    let cases: [(Request, &str); 5] = [
        (
            Request::similar(7, 10).with_search(SearchPolicy::Exact),
            r#"{"Similar":{"vertex":7,"top":10,"search":"Exact"}}"#,
        ),
        (
            Request::similar(7, 10).with_search(SearchPolicy::Ann {
                nprobe: 4,
                refine: 2,
            }),
            r#"{"Similar":{"vertex":7,"top":10,"search":{"Ann":{"nprobe":4,"refine":2}}}}"#,
        ),
        (
            Request::classify(vec![3], 5).with_search(SearchPolicy::ann(8)),
            r#"{"Classify":{"vertices":[3],"k":5,"search":{"Ann":{"nprobe":8,"refine":8}}}}"#,
        ),
        (
            Request::classify(vec![3], 5)
                .pinned(9)
                .with_search(SearchPolicy::Exact),
            r#"{"Classify":{"vertices":[3],"k":5,"at_epoch":9,"search":"Exact"}}"#,
        ),
        (
            Request::similar(1, 2)
                .pinned(u64::MAX)
                .with_search(SearchPolicy::Ann {
                    nprobe: usize::MAX,
                    refine: 1,
                }),
            r#"{"Similar":{"vertex":1,"top":2,"at_epoch":18446744073709551615,"search":{"Ann":{"nprobe":18446744073709551615,"refine":1}}}}"#,
        ),
    ];
    for (req, want) in cases {
        assert_eq!(String::from_utf8(encode(&req)).unwrap(), want, "{req:?}");
        assert_round_trip(&req);
    }
    // `with_search` is a no-op on requests that don't search, keeping
    // their frames untouched.
    assert_eq!(
        encode(&Request::embed_row(9).with_search(SearchPolicy::ann(2))),
        encode(&Request::embed_row(9)),
    );
    assert_eq!(
        encode(&Request::stats().with_search(SearchPolicy::Exact)),
        encode(&Request::stats()),
    );
}

#[test]
fn v2_frames_decode_with_no_search_override() {
    // Frames captured from a v2 peer (pins, no `search` key) must decode
    // with `search: None` — and an explicit null maps to None too.
    let cases: [(&str, Request); 3] = [
        (
            r#"{"Classify":{"vertices":[0,2],"k":3,"at_epoch":4}}"#,
            Request::classify(vec![0, 2], 3).pinned(4),
        ),
        (
            r#"{"Similar":{"vertex":1,"top":4}}"#,
            Request::similar(1, 4),
        ),
        (
            r#"{"Similar":{"vertex":1,"top":4,"search":null}}"#,
            Request::similar(1, 4),
        ),
    ];
    for (bytes, want) in cases {
        let got: Request = decode(bytes.as_bytes()).unwrap();
        assert_eq!(got, want, "{bytes}");
        assert!(got.search().is_none());
    }
}

#[test]
fn v1_frames_decode_with_no_pin() {
    // Frames captured from a v1 peer (no at_epoch anywhere) must decode
    // into the extended types with `at_epoch: None`.
    let cases: [(&str, Request); 4] = [
        (
            r#"{"Classify":{"vertices":[0,2],"k":3}}"#,
            Request::classify(vec![0, 2], 3),
        ),
        (
            r#"{"Similar":{"vertex":1,"top":4}}"#,
            Request::similar(1, 4),
        ),
        (r#"{"EmbedRow":{"vertex":5}}"#, Request::embed_row(5)),
        (r#""Stats""#, Request::stats()),
    ];
    for (bytes, want) in cases {
        let got: Request = decode(bytes.as_bytes()).unwrap();
        assert_eq!(got, want, "{bytes}");
    }
    // An explicit null pin (what a naive deriver would emit) also maps
    // to None.
    let got: Request = decode(br#"{"Stats":{"at_epoch":null}}"#).unwrap();
    assert_eq!(got, Request::stats());
}

#[test]
fn v4_metrics_request_pins_its_byte_encoding() {
    // The v4 extension is a brand-new request variant: it encodes as the
    // bare string `"Metrics"` (the same unit-variant shape `Stats` uses),
    // and every pre-v4 request frame stays byte-identical — a v3 client
    // and a v4 client produce the same bytes for the same v3 request.
    assert_eq!(
        String::from_utf8(encode(&Request::Metrics)).unwrap(),
        r#""Metrics""#
    );
    let got: Request = decode(br#""Metrics""#).unwrap();
    assert_eq!(got, Request::Metrics);
    assert_round_trip(&Request::Metrics);

    // Metrics never pins or searches: the builders are no-ops, so no
    // optional key can ever leak into the frame.
    assert_eq!(
        encode(&Request::Metrics.pinned(7).with_search(SearchPolicy::ann(2))),
        encode(&Request::Metrics),
    );

    // Inside a batch envelope, the position a server sees it.
    assert_eq!(
        String::from_utf8(encode(&ClientFrame::Batch {
            id: 3,
            requests: vec![Envelope::new("g", Request::Metrics)],
        }))
        .unwrap(),
        r#"{"Batch":{"id":3,"requests":[{"graph":"g","request":"Metrics"}]}}"#,
    );
}

#[test]
fn v3_request_frames_are_byte_identical_under_v4() {
    // Captured v1/v2/v3 frames (one per protocol extension) must encode
    // and decode unchanged now that the codec also knows `Metrics`.
    let cases: [(Request, &str); 3] = [
        (Request::stats(), r#""Stats""#),
        (
            Request::embed_row(9).pinned(4),
            r#"{"EmbedRow":{"vertex":9,"at_epoch":4}}"#,
        ),
        (
            Request::similar(7, 10).with_search(SearchPolicy::Exact),
            r#"{"Similar":{"vertex":7,"top":10,"search":"Exact"}}"#,
        ),
    ];
    for (req, want) in cases {
        assert_eq!(String::from_utf8(encode(&req)).unwrap(), want, "{req:?}");
        let got: Request = decode(want.as_bytes()).unwrap();
        assert_eq!(got, req);
    }
}

#[test]
fn v4_metrics_response_round_trips_fully_populated() {
    let report = MetricsReport {
        graph: "g".into(),
        epoch: 12,
        oldest_epoch: 3,
        history_depth: 10,
        ann_indexed_shards: 4,
        queries_served: 1_000_000,
        updates_applied: 5_000,
        classify_us: HistogramReport {
            buckets: vec![0, 2, 5, 1],
            count: 8,
            sum: 431,
        },
        similar_us: HistogramReport::empty(),
        embed_row_us: HistogramReport {
            buckets: vec![1],
            count: 1,
            sum: 0,
        },
        stats_us: HistogramReport::empty(),
        metrics_us: HistogramReport::empty(),
        apply_updates_us: HistogramReport {
            buckets: vec![0, 0, 0, 0, 7],
            count: 7,
            sum: 77,
        },
        coalesce: HistogramReport {
            buckets: vec![0, 3, 4],
            count: 7,
            sum: 19,
        },
        overloaded: 2,
        wal_fsyncs: 40,
        ivf_builds: 4,
        ivf_hits: 31,
        replication: None,
    };
    assert_round_trip(&Response::Metrics(report.clone()));
    assert_round_trip(&ServerFrame::Batch {
        id: 9,
        results: vec![Ok(Response::Metrics(report))],
    });
}

#[test]
fn new_error_frames_round_trip_with_stable_codes() {
    let evicted = ServeError::EpochEvicted {
        graph: "g".into(),
        epoch: 2,
        oldest: 5,
        newest: 9,
    };
    let overloaded = ServeError::Overloaded {
        graph: "g".into(),
        pending: 32,
        max_pending: 32,
    };
    assert_round_trip(&evicted);
    assert_round_trip(&overloaded);
    assert_eq!(evicted.code().as_u16(), 13);
    assert_eq!(overloaded.code().as_u16(), 14);
    // And inside a server Batch frame, the position a client sees them.
    assert_round_trip(&ServerFrame::Batch {
        id: 7,
        results: vec![Err(evicted), Err(overloaded)],
    });
}

/// The pre-v5 stats frame, byte for byte: what a v4 server sent (and a
/// v4 client expects) for a standalone (non-replicated) registry.
const V4_STATS_FRAME: &str = concat!(
    r#"{"Stats":{"graph":"g","epoch":7,"oldest_epoch":2,"num_vertices":100,"dim":16,"#,
    r#""num_shards":4,"num_labeled":10,"ann_indexed_shards":4,"queries_served":55,"#,
    r#""updates_applied":9}}"#
);

fn v4_stats_report() -> GraphReport {
    GraphReport {
        graph: "g".into(),
        epoch: 7,
        oldest_epoch: 2,
        num_vertices: 100,
        dim: 16,
        num_shards: 4,
        num_labeled: 10,
        ann_indexed_shards: 4,
        queries_served: 55,
        updates_applied: 9,
        replication: None,
    }
}

#[test]
fn v5_replication_block_is_additive_on_stats() {
    // Without replication, the v5 encoder must reproduce the v4 frame
    // byte for byte — and the v5 decoder must accept a captured v4
    // frame, mapping the absent key to None.
    let report = v4_stats_report();
    assert_eq!(
        String::from_utf8(encode(&Response::Stats(report.clone()))).unwrap(),
        V4_STATS_FRAME,
    );
    let got: Response = decode(V4_STATS_FRAME.as_bytes()).unwrap();
    assert_eq!(got, Response::Stats(report.clone()));

    // With replication, exactly one key is appended at the end.
    let replicated = GraphReport {
        replication: Some(ReplicationReport {
            role: ReplicationRole::Follower,
            connected: true,
            shipped_records: 0,
            shipped_bytes: 0,
            follower_conns: 0,
            lag_epochs: 1,
            lag_lsns: 3,
            last_durable_lsn: 42,
            leader_epoch: 2,
            fenced: false,
        }),
        ..report
    };
    let want = format!(
        "{}{}{}",
        &V4_STATS_FRAME[..V4_STATS_FRAME.len() - 2],
        concat!(
            r#","replication":{"role":"Follower","connected":true,"shipped_records":0,"#,
            r#""shipped_bytes":0,"follower_conns":0,"lag_epochs":1,"lag_lsns":3,"#,
            r#""last_durable_lsn":42,"leader_epoch":2,"fenced":false}"#
        ),
        "}}",
    );
    assert_eq!(
        String::from_utf8(encode(&Response::Stats(replicated.clone()))).unwrap(),
        want,
    );
    assert_round_trip(&Response::Stats(replicated));
}

#[test]
fn v5_replication_block_round_trips_on_metrics() {
    let leader = ReplicationReport {
        role: ReplicationRole::Leader,
        connected: true,
        shipped_records: 1_000,
        shipped_bytes: 65_536,
        follower_conns: 2,
        lag_epochs: 0,
        lag_lsns: 0,
        last_durable_lsn: 0,
        leader_epoch: 3,
        fenced: true,
    };
    assert_round_trip(&leader);
    assert_round_trip(&Some(leader.clone()));
    // A v4 metrics frame (no replication key) decodes with None; see
    // `v4_metrics_response_round_trips_fully_populated` for the
    // fully-populated literal this extends.
    let v4 = r#"{"graph":"g","epoch":1,"oldest_epoch":1,"history_depth":1,"ann_indexed_shards":0,"queries_served":0,"updates_applied":0,"classify_us":{"buckets":[],"count":0,"sum":0},"similar_us":{"buckets":[],"count":0,"sum":0},"embed_row_us":{"buckets":[],"count":0,"sum":0},"stats_us":{"buckets":[],"count":0,"sum":0},"metrics_us":{"buckets":[],"count":0,"sum":0},"apply_updates_us":{"buckets":[],"count":0,"sum":0},"coalesce":{"buckets":[],"count":0,"sum":0},"overloaded":0,"wal_fsyncs":0,"ivf_builds":0,"ivf_hits":0}"#;
    let got: MetricsReport = decode(v4.as_bytes()).unwrap();
    assert_eq!(got.replication, None);
    // And a None block re-encodes to the identical v4 bytes.
    assert_eq!(String::from_utf8(encode(&got)).unwrap(), v4);
}

#[test]
fn read_only_replica_error_has_code_15() {
    let err = ServeError::ReadOnlyReplica {
        graph: "g".into(),
        leader: "10.0.0.1:7777".into(),
    };
    assert_eq!(err.code().as_u16(), 15);
    assert_round_trip(&err);
    assert_round_trip(&ServerFrame::Batch {
        id: 11,
        results: vec![Err(err)],
    });
}

#[test]
fn stale_leader_error_has_code_16() {
    let err = ServeError::StaleLeader {
        leader_epoch: 1,
        seen_epoch: 4,
    };
    assert_eq!(err.code().as_u16(), 16);
    assert!(err.to_string().contains("stale"), "{err}");
    assert_round_trip(&err);
    assert_round_trip(&ServerFrame::Batch {
        id: 12,
        results: vec![Err(err)],
    });
}
