//! End-to-end replication: leader→follower WAL shipping over real TCP.
//!
//! The oracle throughout is [`snapshot_fingerprint`]: equal
//! fingerprints ⇔ bit-identical served state, so "the follower
//! converged" always means *every retained epoch* on the follower is
//! byte-identical to the leader's same epoch — not just that the counts
//! match. Scenarios: a follower started from empty under concurrent
//! writer churn, a follower restarted mid-stream that resumes from its
//! own durable log, a follower behind the compaction horizon that must
//! take the checkpoint bootstrap, write rejection (in-process and over
//! the wire), epoch-pinned replica reads compared frame-byte-for-byte
//! against the leader, the lag gauges in `Stats`/`Metrics`, and a full
//! failover: follower promotion to a new leader epoch with the deposed
//! leader fenced on its first post-comeback handshake.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gee_core::Labels;
use gee_gen::LabelSpec;
use gee_graph::EdgeList;
use gee_serve::wire;
use gee_serve::{
    Client, Durability, Engine, ErrorCode, Follower, HistoryPolicy, Registry, RegistryConfig,
    ReplicationListener, ReplicationRole, Request, Response, ServeError, Server, SyncPolicy,
    Update,
};

mod common;
use common::snapshot_fingerprint;

const N: usize = 60;
const K: usize = 4;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gee_replication_{tag}_{}_{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(dir: &PathBuf, checkpoint_every: u64, history: usize) -> RegistryConfig {
    RegistryConfig {
        default_shards: 3,
        history: HistoryPolicy::keep(history),
        durability: Durability::Wal {
            dir: dir.clone(),
            sync: SyncPolicy::Always,
            checkpoint_every,
        },
        ..RegistryConfig::default()
    }
}

fn seed_graph() -> (EdgeList, Labels) {
    let el = gee_gen::erdos_renyi_gnm(N, 320, 11);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(
            N,
            LabelSpec {
                num_classes: K,
                labeled_fraction: 0.4,
            },
            7,
        ),
        K,
    );
    (el, labels)
}

fn scripted_batch(b: u32) -> Vec<Update> {
    let v = |i: u32| (b * 131 + i * 17) % N as u32;
    vec![
        Update::InsertEdge {
            u: v(0),
            v: v(1),
            w: 1.0 + f64::from(b % 5) * 0.25,
        },
        Update::SetLabel {
            v: v(2),
            label: Some(b % K as u32),
        },
        Update::RemoveEdge {
            u: v(0),
            v: v(1),
            w: 1.0 + f64::from(b % 5) * 0.25,
        },
        Update::InsertEdge {
            u: v(3),
            v: v(4),
            w: 0.5,
        },
    ]
}

/// Poll until `f` holds (≤ `secs` seconds), else panic with `what`.
fn wait_until(what: &str, secs: u64, mut f: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !f() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Fully caught up: same durable LSN, and the follower has seen a
/// heartbeat proving the leader has nothing further in flight.
fn wait_converged(leader: &Registry, follower: &Follower, secs: u64) {
    wait_until("follower to converge", secs, || {
        let high = leader.wal_high_water().unwrap();
        follower.registry().wal_high_water().unwrap() == high
            && follower.status().leader_next_lsn() == high
    });
}

/// Assert every epoch retained on *both* sides is fingerprint-identical.
fn assert_epochs_match(leader: &Registry, follower: &Registry, graph: &str) {
    let (l_old, l_new) = leader.epoch_range(graph).unwrap();
    let (f_old, f_new) = follower.epoch_range(graph).unwrap();
    assert_eq!(l_new, f_new, "published epochs diverged");
    let lo = l_old.max(f_old);
    for epoch in lo..=l_new {
        let l = snapshot_fingerprint(&leader.snapshot_at(graph, epoch).unwrap());
        let f = snapshot_fingerprint(&follower.snapshot_at(graph, epoch).unwrap());
        assert_eq!(l, f, "epoch {epoch} fingerprints diverged");
    }
    assert!(lo <= l_new, "no overlapping epochs compared");
}

#[test]
fn follower_converges_from_empty_under_writer_churn() {
    let leader_dir = tmp("churn_leader");
    let follower_dir = tmp("churn_follower");
    let leader = Arc::new(Registry::with_config(config(&leader_dir, 10_000, 8)).unwrap());
    let (el, labels) = seed_graph();
    leader.register("g", &el, &labels).unwrap();

    let listener = ReplicationListener::listen(leader.clone(), "127.0.0.1:0").unwrap();
    let follower = Follower::start(
        config(&follower_dir, 10_000, 8),
        listener.addr().to_string(),
    )
    .unwrap();

    // Writer churn while the follower trails live.
    let writer = {
        let leader = leader.clone();
        std::thread::spawn(move || {
            for b in 0..30u32 {
                leader.apply_updates("g", &scripted_batch(b)).unwrap();
                if b % 10 == 0 {
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        })
    };
    writer.join().unwrap();

    wait_converged(&leader, &follower, 10);
    assert_epochs_match(&leader, follower.registry(), "g");
    assert!(follower.status().is_connected());

    follower.shutdown();
    listener.shutdown();
}

#[test]
fn follower_restarted_mid_stream_resumes_from_durable_lsn() {
    let leader_dir = tmp("resume_leader");
    let follower_dir = tmp("resume_follower");
    let leader = Arc::new(Registry::with_config(config(&leader_dir, 10_000, 6)).unwrap());
    let (el, labels) = seed_graph();
    leader.register("g", &el, &labels).unwrap();
    for b in 0..10u32 {
        leader.apply_updates("g", &scripted_batch(b)).unwrap();
    }

    let listener = ReplicationListener::listen(leader.clone(), "127.0.0.1:0").unwrap();
    let addr = listener.addr().to_string();
    let follower = Follower::start(config(&follower_dir, 10_000, 6), addr.clone()).unwrap();
    wait_converged(&leader, &follower, 10);
    let resumed_from = follower.registry().wal_high_water().unwrap();
    assert!(resumed_from > 0);
    // Stop mid-stream (shutdown is abrupt from the leader's viewpoint:
    // the socket just closes).
    follower.shutdown();

    for b in 10..25u32 {
        leader.apply_updates("g", &scripted_batch(b)).unwrap();
    }

    // Same data dir: the restart must resume from the durable high
    // water, not re-pull from zero.
    let follower = Follower::start(config(&follower_dir, 10_000, 6), addr).unwrap();
    assert_eq!(
        follower.registry().wal_high_water().unwrap(),
        resumed_from,
        "restart must recover the pre-crash durable LSN"
    );
    wait_converged(&leader, &follower, 10);
    assert_epochs_match(&leader, follower.registry(), "g");

    follower.shutdown();
    listener.shutdown();
}

#[test]
fn follower_behind_compaction_horizon_bootstraps_from_checkpoint() {
    let leader_dir = tmp("bootstrap_leader");
    let follower_dir = tmp("bootstrap_follower");
    // Aggressive checkpointing: every 4 records the leader rotates and
    // retires covered segments, so a fresh follower's start LSN of 0
    // falls below the on-disk floor.
    let leader = Arc::new(Registry::with_config(config(&leader_dir, 4, 4)).unwrap());
    let (el, labels) = seed_graph();
    leader.register("g", &el, &labels).unwrap();
    for b in 0..20u32 {
        leader.apply_updates("g", &scripted_batch(b)).unwrap();
    }
    let floor = gee_serve::wal::segment_paths(&leader_dir)
        .unwrap()
        .first()
        .map_or(0, |&(lsn, _)| lsn);
    assert!(
        floor > 0,
        "test needs a compacted prefix to exercise bootstrap"
    );

    let listener = ReplicationListener::listen(leader.clone(), "127.0.0.1:0").unwrap();
    let follower =
        Follower::start(config(&follower_dir, 4, 4), listener.addr().to_string()).unwrap();
    wait_converged(&leader, &follower, 10);
    assert_epochs_match(&leader, follower.registry(), "g");
    // The follower's log provably starts at the checkpoint, not zero.
    assert!(
        follower
            .registry()
            .latest_checkpoint_lsn()
            .unwrap()
            .unwrap()
            >= floor,
        "follower should hold the bootstrap checkpoint"
    );

    follower.shutdown();
    listener.shutdown();
}

#[test]
fn replica_rejects_writes_in_process_and_over_tcp() {
    let leader_dir = tmp("readonly_leader");
    let follower_dir = tmp("readonly_follower");
    let leader = Arc::new(Registry::with_config(config(&leader_dir, 10_000, 4)).unwrap());
    let (el, labels) = seed_graph();
    leader.register("g", &el, &labels).unwrap();

    let listener = ReplicationListener::listen(leader.clone(), "127.0.0.1:0").unwrap();
    let follower = Follower::start(
        config(&follower_dir, 10_000, 4),
        listener.addr().to_string(),
    )
    .unwrap();
    wait_converged(&leader, &follower, 10);

    // In-process: every mutation path is typed ReadOnlyReplica.
    let reject = follower
        .registry()
        .apply_updates("g", &scripted_batch(0))
        .unwrap_err();
    assert!(
        matches!(&reject, ServeError::ReadOnlyReplica { graph, leader }
            if graph == "g" && leader == &listener.addr().to_string()),
        "got {reject:?}"
    );
    assert_eq!(reject.code(), ErrorCode::ReadOnlyReplica);
    assert!(matches!(
        follower.registry().register("h", &el, &labels).unwrap_err(),
        ServeError::ReadOnlyReplica { .. }
    ));
    assert!(matches!(
        follower.registry().deregister("g").unwrap_err(),
        ServeError::ReadOnlyReplica { .. }
    ));

    // Over TCP the same error arrives as a per-request typed result —
    // the connection stays healthy and reads keep working.
    let engine = Arc::new(Engine::new(follower.registry().clone()));
    let handle = Server::listen(engine, "127.0.0.1:0", None).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let err = client.apply_updates("g", scripted_batch(1)).unwrap_err();
    assert_eq!(err.code(), ErrorCode::ReadOnlyReplica);
    let classes = client.classify("g", vec![0, 1, 2], 3).unwrap();
    assert_eq!(classes.len(), 3);

    drop(client);
    handle.shutdown();
    follower.shutdown();
    listener.shutdown();
}

#[test]
fn pinned_replica_reads_are_byte_identical_to_leader_over_tcp() {
    let leader_dir = tmp("pinned_leader");
    let follower_dir = tmp("pinned_follower");
    let leader = Arc::new(Registry::with_config(config(&leader_dir, 10_000, 8)).unwrap());
    let (el, labels) = seed_graph();
    leader.register("g", &el, &labels).unwrap();

    let listener = ReplicationListener::listen(leader.clone(), "127.0.0.1:0").unwrap();
    let follower = Follower::start(
        config(&follower_dir, 10_000, 8),
        listener.addr().to_string(),
    )
    .unwrap();
    for b in 0..12u32 {
        leader.apply_updates("g", &scripted_batch(b)).unwrap();
    }
    wait_converged(&leader, &follower, 10);

    let leader_srv =
        Server::listen(Arc::new(Engine::new(leader.clone())), "127.0.0.1:0", None).unwrap();
    let follower_srv = Server::listen(
        Arc::new(Engine::new(follower.registry().clone())),
        "127.0.0.1:0",
        None,
    )
    .unwrap();
    let mut on_leader = Client::connect(leader_srv.addr()).unwrap();
    let mut on_follower = Client::connect(follower_srv.addr()).unwrap();

    let (oldest, newest) = leader.epoch_range("g").unwrap();
    let (f_oldest, _) = follower.registry().epoch_range("g").unwrap();
    for epoch in oldest.max(f_oldest)..=newest {
        let requests = [
            Request::classify((0..8).collect(), 3).pinned(epoch),
            Request::similar(5, 4).pinned(epoch),
            Request::embed_row(9).pinned(epoch),
        ];
        for request in requests {
            let l = on_leader.execute("g", request.clone()).unwrap();
            let f = on_follower.execute("g", request.clone()).unwrap();
            assert_eq!(
                wire::encode(&l),
                wire::encode(&f),
                "pinned response bytes diverged at epoch {epoch}: {request:?}"
            );
        }
        // Stats agrees field-for-field once the role-specific
        // `replication` block (Leader on one side, Follower on the
        // other, by design) is set aside.
        let strip = |r: Response| match r {
            Response::Stats(mut report) => {
                report.replication = None;
                report
            }
            other => panic!("expected Stats, got {other:?}"),
        };
        let l = strip(
            on_leader
                .execute("g", Request::stats().pinned(epoch))
                .unwrap(),
        );
        let f = strip(
            on_follower
                .execute("g", Request::stats().pinned(epoch))
                .unwrap(),
        );
        assert_eq!(
            wire::encode(&l),
            wire::encode(&f),
            "stats diverged at {epoch}"
        );
    }

    drop(on_leader);
    drop(on_follower);
    leader_srv.shutdown();
    follower_srv.shutdown();
    follower.shutdown();
    listener.shutdown();
}

#[test]
fn replication_lag_is_reported_through_stats_and_metrics() {
    let leader_dir = tmp("lag_leader");
    let follower_dir = tmp("lag_follower");
    let leader = Arc::new(Registry::with_config(config(&leader_dir, 10_000, 4)).unwrap());
    let (el, labels) = seed_graph();
    leader.register("g", &el, &labels).unwrap();

    // Before any listener attaches, a standalone durable registry has no
    // replication block at all (pre-v5 behavior preserved).
    assert_eq!(leader.replication_report(), None);

    let listener = ReplicationListener::listen(leader.clone(), "127.0.0.1:0").unwrap();
    let lr = leader.replication_report().expect("leader block");
    assert_eq!(lr.role, ReplicationRole::Leader);
    assert!(!lr.connected, "no follower yet");

    let follower = Follower::start(
        config(&follower_dir, 10_000, 4),
        listener.addr().to_string(),
    )
    .unwrap();
    for b in 0..8u32 {
        leader.apply_updates("g", &scripted_batch(b)).unwrap();
    }
    wait_converged(&leader, &follower, 10);

    let lr = leader.replication_report().unwrap();
    assert!(lr.connected, "one follower attached");
    assert_eq!(lr.follower_conns, 1);
    assert!(lr.shipped_records >= 9, "register + 8 batches shipped");
    assert!(lr.shipped_bytes > 0);

    let fr = follower.registry().replication_report().unwrap();
    assert_eq!(fr.role, ReplicationRole::Follower);
    assert!(fr.connected);
    assert_eq!(fr.lag_lsns, 0, "converged follower has no LSN lag");
    assert_eq!(fr.lag_epochs, 0, "converged follower has no epoch lag");
    assert_eq!(
        fr.last_durable_lsn,
        leader.wal_high_water().unwrap(),
        "durable high water matches the leader"
    );

    // The engine surfaces the identical block through both endpoints.
    let engine = Engine::new(follower.registry().clone());
    let stats = match engine.execute("g", Request::stats()).unwrap() {
        Response::Stats(r) => r.replication,
        other => panic!("expected Stats, got {other:?}"),
    };
    let metrics = match engine.execute("g", Request::Metrics).unwrap() {
        Response::Metrics(r) => r.replication,
        other => panic!("expected Metrics, got {other:?}"),
    };
    let stats = stats.expect("follower stats carry replication");
    let metrics = metrics.expect("follower metrics carry replication");
    assert_eq!(stats.role, metrics.role);
    assert_eq!(stats.last_durable_lsn, metrics.last_durable_lsn);
    assert_eq!(stats.lag_lsns, metrics.lag_lsns);

    // A dead leader flips `connected` off after the next failed pull.
    // The shutdown itself is a graceful End (not an error); the *error*
    // arrives on the follower's next refused reconnect attempt.
    listener.shutdown();
    wait_until("follower to notice the dead leader", 10, || {
        !follower.status().is_connected()
    });
    let fr = follower.registry().replication_report().unwrap();
    assert!(!fr.connected);
    assert_eq!(fr.lag_lsns, 0, "no phantom lag against a dead leader");
    assert_eq!(fr.lag_epochs, 0, "no phantom lag against a dead leader");
    wait_until("a reconnect attempt to be refused", 10, || {
        follower.status().last_error().is_some()
    });
    follower.shutdown();
}

/// The full failover story, end to end: a leader with two converged
/// followers dies mid-flight (with one unshipped batch — the classic
/// split-brain seed), one follower is promoted to epoch 1 and takes
/// writes, the survivor re-points and converges fingerprint-identically
/// against the new history, and when the deposed epoch-0 leader comes
/// back it is fenced on its first handshake with an epoch-1 follower:
/// its writes fail with the typed StaleLeader error and nothing it
/// holds ever reaches a follower. Split-brain is impossible by
/// construction.
#[test]
fn promotion_fences_deposed_leader_and_repoints_followers() {
    let leader_dir = tmp("failover_leader");
    let f1_dir = tmp("failover_f1");
    let f2_dir = tmp("failover_f2");

    // Epoch 0: a leader with two live followers, all converged.
    let leader = Arc::new(Registry::with_config(config(&leader_dir, 10_000, 4)).unwrap());
    let (el, labels) = seed_graph();
    leader.register("g", &el, &labels).unwrap();
    let listener = ReplicationListener::listen(leader.clone(), "127.0.0.1:0").unwrap();
    let addr = listener.addr().to_string();
    let f1 = Follower::start(config(&f1_dir, 10_000, 4), addr.clone()).unwrap();
    let f2 = Follower::start(config(&f2_dir, 10_000, 4), addr).unwrap();
    for b in 0..6u32 {
        leader.apply_updates("g", &scripted_batch(b)).unwrap();
    }
    wait_converged(&leader, &f1, 10);
    wait_converged(&leader, &f2, 10);

    // The leader "dies": shipping stops, but it sneaks in one last
    // batch that never replicates.
    listener.shutdown();
    leader.apply_updates("g", &scripted_batch(98)).unwrap();
    let deposed_high = leader.wal_high_water().unwrap();
    drop(leader); // release the dir lock; the deposed WAL stays on disk

    // f2 re-points later; stop it cleanly at the converged LSN.
    f2.shutdown();

    // Promote f1: epoch 0 → 1, replica mode off, a fresh listener up.
    let promo = f1.promote(Some("127.0.0.1:0")).unwrap();
    assert_eq!(promo.epoch, 1, "first promotion mints epoch 1");
    let new_leader = promo.registry;
    assert_eq!(new_leader.leader_epoch(), 1);
    let new_listener = promo
        .listener
        .expect("promote with an address warms a listener");
    // Writes flow on the promoted node immediately...
    for b in 20..24u32 {
        new_leader.apply_updates("g", &scripted_batch(b)).unwrap();
    }
    let report = new_leader.replication_report().unwrap();
    assert_eq!(report.role, ReplicationRole::Leader);
    assert_eq!(report.leader_epoch, 1);
    assert!(!report.fenced);

    // ...and the surviving follower re-points and converges against the
    // epoch-1 history, fingerprint-identical, noting the epoch durably.
    let f2 = Follower::start(config(&f2_dir, 10_000, 4), new_listener.addr().to_string()).unwrap();
    wait_converged(&new_leader, &f2, 10);
    assert_epochs_match(&new_leader, f2.registry(), "g");
    assert_eq!(f2.registry().leader_epoch(), 1);
    f2.shutdown();

    // The deposed leader comes back at epoch 0 and tries to serve. The
    // first handshake from a follower that has seen epoch 1 fences it.
    let deposed = Arc::new(Registry::with_config(config(&leader_dir, 10_000, 4)).unwrap());
    assert_eq!(
        deposed.leader_epoch(),
        0,
        "the old leader never saw epoch 1"
    );
    assert_eq!(deposed.wal_high_water().unwrap(), deposed_high);
    let deposed_listener = ReplicationListener::listen(deposed.clone(), "127.0.0.1:0").unwrap();
    let f2 = Follower::start(
        config(&f2_dir, 10_000, 4),
        deposed_listener.addr().to_string(),
    )
    .unwrap();
    let f2_high = f2.registry().wal_high_water().unwrap();
    wait_until("the deposed leader to self-fence", 10, || {
        deposed.fenced_by() == Some(1)
    });
    let err = deposed.apply_updates("g", &scripted_batch(99)).unwrap_err();
    assert_eq!(err.code().as_u16(), 16, "fenced writes are StaleLeader");
    assert!(err.to_string().contains("stale"), "{err}");
    let report = deposed.replication_report().unwrap();
    assert!(report.fenced, "the fence is visible in the report");
    assert_eq!(report.leader_epoch, 0);
    // The epoch-1 follower applied nothing from the epoch-0 has-been.
    assert_eq!(f2.registry().wal_high_water().unwrap(), f2_high);
    assert_eq!(f2.registry().leader_epoch(), 1);
    f2.shutdown();
    deposed_listener.shutdown();
    new_listener.shutdown();
}
