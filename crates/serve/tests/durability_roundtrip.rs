//! Durable-format round-trip properties, mirroring `wire_roundtrip.rs`
//! for the on-disk side: `decode(encode(x)) == x` for every WAL record
//! and checkpoint frame over seeded random instances — arbitrary
//! `Update` sequences, empty batches, adversarial names — plus the
//! 100k-row states the generators would rarely hit. Decoding is also
//! hammered with truncations and random bytes: it must return typed
//! errors, never panic, and (for framed files) never mistake corruption
//! for a clean result.

use gee_core::{DynamicGee, DynamicGeeState, Labels};
use gee_graph::io::frame;
use gee_serve::checkpoint::{self, Checkpoint, GraphCheckpoint};
use gee_serve::wal::{decode_record, encode_record, WalRecord};
use gee_serve::Update;
use proptest::collection::vec;
use proptest::prelude::*;

/// Characters chosen to stress name encoding: control characters,
/// multi-byte UTF-8, path-ish separators.
const CHAR_PALETTE: [char; 16] = [
    'a', 'Z', '0', '_', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{1}', '\u{7f}', 'é', '🦀', '.',
];

fn arb_name() -> impl Strategy<Value = String> {
    vec(0usize..CHAR_PALETTE.len(), 0..12)
        .prop_map(|ids| ids.into_iter().map(|i| CHAR_PALETTE[i]).collect())
}

/// Weights including the bit patterns JSON cannot carry — the binary
/// format must round-trip NaN, infinities, and negative zero bit-exactly.
fn arb_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1e9f64..1e9,
        Just(0.0),
        Just(-0.0),
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(1e308),
        Just(5e-324),
    ]
}

fn arb_update() -> impl Strategy<Value = Update> {
    prop_oneof![
        (any::<u32>(), any::<u32>(), arb_f64()).prop_map(|(u, v, w)| Update::InsertEdge {
            u,
            v,
            w
        }),
        (any::<u32>(), any::<u32>(), arb_f64()).prop_map(|(u, v, w)| Update::RemoveEdge {
            u,
            v,
            w
        }),
        (
            any::<u32>(),
            prop_oneof![Just(None), any::<u32>().prop_map(Some)]
        )
            .prop_map(|(v, label)| Update::SetLabel { v, label }),
    ]
}

fn arb_record() -> impl Strategy<Value = WalRecord> {
    let register = (
        arb_name(),
        any::<u32>(),
        0usize..20,
        1u32..6,
        vec((any::<u32>(), any::<u32>(), arb_f64()), 0..16),
    )
        .prop_map(|(name, shards, n, k, edges)| {
            let labels: Vec<i32> = (0..n).map(|v| (v as i32 % (k as i32 + 1)) - 1).collect();
            WalRecord::Register {
                name,
                shards,
                num_vertices: n as u64,
                num_classes: k,
                labels,
                edges,
            }
        });
    prop_oneof![
        register,
        (arb_name(), vec(arb_update(), 0..10))
            .prop_map(|(name, updates)| WalRecord::Batch { name, updates }),
        arb_name().prop_map(|name| WalRecord::Deregister { name }),
    ]
}

fn arb_state() -> impl Strategy<Value = DynamicGeeState> {
    (2usize..24, 1usize..5, any::<u64>()).prop_map(|(n, k, seed)| {
        let el = gee_gen::erdos_renyi_gnm(n, n * 3, seed);
        let opts: Vec<Option<u32>> = (0..n)
            .map(|v| (v % 3 != 0).then_some((v % k) as u32))
            .collect();
        let mut dg = DynamicGee::new(&el, &Labels::from_options_with_k(&opts, k));
        if n > 2 {
            dg.insert_edge(0, (seed % n as u64) as u32, 1.5);
            dg.set_label(1, Some(((seed >> 8) % k as u64) as u32));
        }
        dg.export_state()
    })
}

fn arb_checkpoint() -> impl Strategy<Value = Checkpoint> {
    (
        any::<u64>(),
        any::<u64>(),
        vec(
            (
                arb_name(),
                any::<u32>(),
                any::<u64>(),
                any::<u64>(),
                arb_state(),
            ),
            0..4,
        ),
    )
        .prop_map(|(lsn, leader_epoch, graphs)| Checkpoint {
            lsn,
            leader_epoch,
            graphs: graphs
                .into_iter()
                .map(
                    |(name, shards, epoch, updates_applied, state)| GraphCheckpoint {
                        name,
                        shards,
                        epoch,
                        updates_applied,
                        state,
                    },
                )
                .collect(),
        })
}

/// Bit-exact equality: `PartialEq` on f64 would treat NaN != NaN and
/// -0.0 == 0.0, both wrong for a durability format.
fn assert_records_bit_equal(a: &WalRecord, b: &WalRecord) {
    assert_eq!(
        encode_record(a),
        encode_record(b),
        "round-trip must preserve every bit: {a:?} vs {b:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wal_records_round_trip(record in arb_record()) {
        let back = decode_record(&encode_record(&record)).unwrap();
        assert_records_bit_equal(&record, &back);
    }

    #[test]
    fn checkpoint_frames_round_trip(ckpt in arb_checkpoint()) {
        let back = checkpoint::decode(&checkpoint::encode(&ckpt)).unwrap();
        prop_assert_eq!(
            checkpoint::encode(&back),
            checkpoint::encode(&ckpt),
            "round-trip must preserve every bit"
        );
    }

    #[test]
    fn wal_record_truncations_never_panic(record in arb_record(), cut in 0usize..4096) {
        let bytes = encode_record(&record);
        let cut = cut % bytes.len().max(1);
        // Typed error or — only when the prefix happens to be a complete
        // record itself — a shorter record; never a panic.
        let _ = decode_record(&bytes[..cut]);
    }

    #[test]
    fn random_bytes_never_panic_either_decoder(bytes in vec(any::<u8>(), 0..256)) {
        let _ = decode_record(&bytes);
        let _ = checkpoint::decode(&bytes);
    }

    #[test]
    fn framed_records_reject_any_single_flip(record in arb_record(), flip in any::<usize>()) {
        let framed = frame::encode_frame(&encode_record(&record));
        let mut bad = framed.clone();
        let i = flip % bad.len();
        bad[i] ^= 0x01;
        // Inside a frame, a flipped bit is *always* caught: either the
        // CRC fails, or the length prefix no longer matches the stream.
        prop_assert!(
            frame::read_frame(bad.as_slice(), usize::MAX).is_err(),
            "flip at {} survived framing", i
        );
    }
}

#[test]
fn empty_and_edgeless_payloads_round_trip() {
    for record in [
        WalRecord::Batch {
            name: String::new(),
            updates: vec![],
        },
        WalRecord::Register {
            name: String::new(),
            shards: 0,
            num_vertices: 0,
            num_classes: 0,
            labels: vec![],
            edges: vec![],
        },
        WalRecord::Deregister {
            name: String::new(),
        },
    ] {
        let back = decode_record(&encode_record(&record)).unwrap();
        assert_records_bit_equal(&record, &back);
    }
    let empty = Checkpoint {
        lsn: 0,
        leader_epoch: 0,
        graphs: vec![],
    };
    assert_eq!(
        checkpoint::decode(&checkpoint::encode(&empty)).unwrap(),
        empty
    );
}

#[test]
fn hundred_thousand_row_state_round_trips() {
    // A checkpoint the size of a real serving graph: 100k vertices,
    // K = 8 → an 800k-cell accumulator plus labels and adjacency.
    let n = 100_000usize;
    let k = 8usize;
    let el = gee_gen::erdos_renyi_gnm(n, 400_000, 99);
    let opts: Vec<Option<u32>> = (0..n)
        .map(|v| (v % 4 != 0).then_some((v % k) as u32))
        .collect();
    let dg = DynamicGee::new(&el, &Labels::from_options_with_k(&opts, k));
    let ckpt = Checkpoint {
        lsn: u64::MAX,
        leader_epoch: u64::MAX,
        graphs: vec![GraphCheckpoint {
            name: "big".into(),
            shards: 16,
            epoch: u64::MAX,
            updates_applied: u64::MAX,
            state: dg.export_state(),
        }],
    };
    let bytes = checkpoint::encode(&ckpt);
    assert!(bytes.len() > n * k * 8, "accumulator dominates the frame");
    let back = checkpoint::decode(&bytes).unwrap();
    assert_eq!(checkpoint::encode(&back), bytes, "bit-exact round-trip");

    // And the WAL side at the same scale: a 100k-vertex Register record.
    let record = WalRecord::Register {
        name: "big".into(),
        shards: 16,
        num_vertices: n as u64,
        num_classes: k as u32,
        labels: (0..n).map(|v| (v % (k + 1)) as i32 - 1).collect(),
        edges: el.edges().iter().map(|e| (e.u, e.v, e.w)).collect(),
    };
    let back = decode_record(&encode_record(&record)).unwrap();
    assert_records_bit_equal(&record, &back);
}

#[test]
fn extreme_integers_round_trip() {
    let record = WalRecord::Register {
        name: "x".into(),
        shards: u32::MAX,
        num_vertices: 1,
        num_classes: u32::MAX,
        labels: vec![i32::MIN],
        edges: vec![(u32::MAX, 0, f64::MIN_POSITIVE)],
    };
    // num_classes far beyond the label range is representable (the
    // replayer, not the codec, enforces semantics).
    let back = decode_record(&encode_record(&record)).unwrap();
    assert_records_bit_equal(&record, &back);
}
