//! Engine-vs-Client equivalence: the same workload executed in-process
//! and across the wire must produce identical (`==`) results — over the
//! in-process duplex transport, over loopback TCP, and under pipelining.

use std::sync::Arc;

use gee_core::Labels;
use gee_serve::{
    duplex, Client, Engine, Envelope, Registry, Request, Response, ServeError, Server,
    TcpTransport, Transport, Update, PROTOCOL_VERSION,
};
use proptest::collection::vec;
use proptest::prelude::*;

const N: usize = 120;
const K: usize = 5;

/// Two engines built from identical inputs: one to serve remotely, one to
/// answer in-process as the oracle.
fn twin_engines(shards: usize) -> (Arc<Engine>, Engine) {
    let make = || {
        let el = gee_gen::erdos_renyi_gnm(N, 900, 21);
        let labels = Labels::from_options_with_k(
            &gee_gen::random_labels(
                N,
                gee_gen::LabelSpec {
                    num_classes: K,
                    labeled_fraction: 0.3,
                },
                3,
            ),
            K,
        );
        let reg = Registry::new(shards);
        reg.register("g", &el, &labels).unwrap();
        Engine::new(Arc::new(reg))
    };
    (Arc::new(make()), make())
}

/// Serve `server_engine` on one end of a duplex pair in a background
/// thread; return a handshaken client on the other end.
fn duplex_client(server_engine: Arc<Engine>) -> (Client, std::thread::JoinHandle<()>) {
    let (server_end, client_end) = duplex();
    let handle = std::thread::spawn(move || {
        let mut transport = server_end;
        let _ = Server::new(server_engine).serve_connection(&mut transport);
    });
    (
        Client::over(client_end).expect("handshake succeeds"),
        handle,
    )
}

/// A mixed read/write/error workload batch, deterministic in `case`.
fn workload_batch(case: u32) -> Vec<Envelope> {
    let v = |i: u32| (case.wrapping_mul(31).wrapping_add(i * 7)) % N as u32;
    let mut batch = vec![
        Envelope::new("g", Request::classify(vec![v(0), v(1), v(2)], 3)),
        Envelope::new("g", Request::similar(v(3), 5)),
        Envelope::new("g", Request::embed_row(v(4))),
        Envelope::new(
            "g",
            Request::ApplyUpdates {
                updates: vec![
                    Update::InsertEdge {
                        u: v(5),
                        v: v(6),
                        w: 1.0 + f64::from(case % 4),
                    },
                    Update::SetLabel {
                        v: v(7),
                        label: Some(case % K as u32),
                    },
                ],
            },
        ),
        Envelope::new("g", Request::classify(vec![v(0), v(1), v(2)], 3)),
        Envelope::new("g", Request::stats()),
    ];
    if case % 3 == 0 {
        // Per-request failures must be equivalent too.
        batch.push(Envelope::new("missing", Request::stats()));
        batch.push(Envelope::new("g", Request::embed_row(u32::MAX)));
        batch.push(Envelope::new("g", Request::similar(v(8), 0)));
    }
    batch
}

#[test]
fn duplex_client_equals_engine_on_scripted_workload() {
    let (remote, local) = twin_engines(4);
    let (mut client, server_thread) = duplex_client(remote);
    assert_eq!(client.protocol_version(), PROTOCOL_VERSION);
    for case in 0..12u32 {
        let batch = workload_batch(case);
        let over_wire = client.execute_batch(batch.clone()).unwrap();
        let in_process = local.execute_batch(batch);
        assert_eq!(over_wire, in_process, "case {case}");
    }
    client.goodbye().unwrap();
    server_thread.join().unwrap();
}

#[test]
fn duplex_client_equals_engine_on_random_batches() {
    // Property check over random envelope batches (including nonsense
    // parameters — equivalence must hold for errors as much as answers).
    let arb_batch = vec(
        (
            0usize..5,
            vec(0u32..(2 * N as u32), 0..4),
            0usize..4,
            1usize..7,
        )
            .prop_map(|(kind, vs, top, k)| {
                let graph = if kind == 4 { "nope" } else { "g" };
                let request = match kind {
                    0 => Request::classify(vs, k),
                    1 => Request::similar(vs.first().copied().unwrap_or(0), top),
                    2 => Request::embed_row(vs.first().copied().unwrap_or(0)),
                    3 => Request::ApplyUpdates {
                        updates: vs
                            .iter()
                            .map(|&u| Update::InsertEdge {
                                u: u % N as u32,
                                v: (u / 2) % N as u32,
                                w: 1.0,
                            })
                            .collect(),
                    },
                    _ => Request::stats(),
                };
                Envelope::new(graph, request)
            }),
        0..8,
    );
    let (remote, local) = twin_engines(3);
    let (mut client, server_thread) = duplex_client(remote);
    for case in 0..64u32 {
        let mut rng = proptest::case_rng(case);
        let batch = arb_batch.new_value(&mut rng);
        let over_wire = client.execute_batch(batch.clone()).unwrap();
        let in_process = local.execute_batch(batch.clone());
        assert_eq!(over_wire, in_process, "case {case}: {batch:?}");
    }
    drop(client);
    server_thread.join().unwrap();
}

#[test]
fn named_client_methods_equal_named_engine_methods() {
    let (remote, local) = twin_engines(2);
    let (mut client, server_thread) = duplex_client(remote);
    assert_eq!(
        client.classify("g", vec![0, 1, 2], 5),
        local.classify("g", vec![0, 1, 2], 5)
    );
    assert_eq!(client.similar("g", 7, 10), local.similar("g", 7, 10));
    assert_eq!(client.embed_row("g", 3), local.embed_row("g", 3));
    let updates = vec![Update::InsertEdge { u: 1, v: 2, w: 2.0 }];
    assert_eq!(
        client.apply_updates("g", updates.clone()),
        local.apply_updates("g", updates)
    );
    assert_eq!(client.stats("g"), local.stats("g"));
    // Typed errors come through the named methods unchanged too.
    assert_eq!(client.similar("g", 0, 0), local.similar("g", 0, 0));
    assert_eq!(client.stats("missing"), local.stats("missing"));
    // Non-finite weights (which JSON cannot carry) are rejected with the
    // same typed error on both paths — equivalence holds even here.
    let nan_update = vec![Update::InsertEdge {
        u: 0,
        v: 1,
        w: f64::NAN,
    }];
    let remote_err = client.apply_updates("g", nan_update.clone());
    assert_eq!(remote_err, local.apply_updates("g", nan_update));
    assert!(
        matches!(remote_err, Err(ServeError::NonFinite { .. })),
        "{remote_err:?}"
    );
    drop(client);
    server_thread.join().unwrap();
}

#[test]
fn tcp_client_equals_engine_and_pipelines() {
    let (remote, local) = twin_engines(4);
    let handle = Server::listen(remote, "127.0.0.1:0", None).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Sequential equivalence.
    for case in 0..4u32 {
        let batch = workload_batch(case);
        assert_eq!(
            client.execute_batch(batch.clone()).unwrap(),
            local.execute_batch(batch)
        );
    }

    // Pipelined equivalence: all batches sent before any reply is read.
    let batches: Vec<Vec<Envelope>> = (4..10u32).map(workload_batch).collect();
    let over_wire = client.pipeline(batches.clone()).unwrap();
    let in_process: Vec<_> = batches
        .into_iter()
        .map(|b| local.execute_batch(b))
        .collect();
    assert_eq!(over_wire, in_process);

    // Two clients on one server: the second sees the first's writes.
    let mut second = Client::connect(handle.addr()).unwrap();
    let epoch_now = second.stats("g").unwrap().epoch;
    assert_eq!(epoch_now, local.stats("g").unwrap().epoch);

    client.goodbye().unwrap();
    second.goodbye().unwrap();
    handle.shutdown();
}

#[test]
fn handshake_rejects_unsupported_version_range() {
    let (remote, _) = twin_engines(1);
    let handle = Server::listen(remote, "127.0.0.1:0", None).unwrap();
    // Hand-rolled hello demanding a future protocol.
    let mut t = TcpTransport::connect(handle.addr()).unwrap();
    t.send(gee_serve::wire::encode(&gee_serve::ClientFrame::Hello {
        min_version: PROTOCOL_VERSION + 1,
        max_version: PROTOCOL_VERSION + 5,
    }))
    .unwrap();
    let reply = t.recv().unwrap().expect("server answers before closing");
    match gee_serve::wire::decode::<gee_serve::ServerFrame>(&reply).unwrap() {
        gee_serve::ServerFrame::Error { error } => {
            assert_eq!(
                error,
                ServeError::VersionUnsupported {
                    client_min: PROTOCOL_VERSION + 1,
                    client_max: PROTOCOL_VERSION + 5,
                    server_min: gee_serve::wire::MIN_PROTOCOL_VERSION,
                    server_max: PROTOCOL_VERSION,
                }
            );
        }
        other => panic!("expected Error frame, got {other:?}"),
    }
    assert_eq!(
        t.recv().unwrap(),
        None,
        "server closes after rejecting the handshake"
    );
    handle.shutdown();
}

#[test]
fn malformed_frame_is_rejected_with_a_typed_error() {
    let (remote, _) = twin_engines(1);
    let (server_end, mut raw) = duplex();
    let thread = std::thread::spawn(move || {
        let mut transport = server_end;
        Server::new(remote).serve_connection(&mut transport)
    });
    raw.send(b"this is not json".to_vec()).unwrap();
    let reply = raw.recv().unwrap().unwrap();
    match gee_serve::wire::decode::<gee_serve::ServerFrame>(&reply).unwrap() {
        gee_serve::ServerFrame::Error { error } => {
            assert!(matches!(error, ServeError::Protocol { .. }), "{error}");
        }
        other => panic!("expected Error frame, got {other:?}"),
    }
    let served = thread.join().unwrap();
    assert!(matches!(served, Err(ServeError::Protocol { .. })));
}

#[test]
fn responses_are_equal_when_roundtripped_through_wire_bytes() {
    // Byte-level check: serialize the in-process responses with the same
    // wire encoding the server uses and confirm the client-received
    // values decode from exactly those semantics.
    let (remote, local) = twin_engines(2);
    let (mut client, server_thread) = duplex_client(remote);
    let batch = workload_batch(1);
    let over_wire = client.execute_batch(batch.clone()).unwrap();
    let in_process = local.execute_batch(batch);
    let wire_bytes_local = gee_serve::wire::encode(&in_process);
    let wire_bytes_remote = gee_serve::wire::encode(&over_wire);
    assert_eq!(
        wire_bytes_local, wire_bytes_remote,
        "byte-identical on the wire"
    );
    let decoded: Vec<Result<Response, ServeError>> =
        gee_serve::wire::decode(&wire_bytes_local).unwrap();
    assert_eq!(decoded, in_process);
    drop(client);
    server_thread.join().unwrap();
}

#[test]
fn time_travel_reads_are_byte_identical_across_engine_duplex_and_tcp() {
    // Twin engines with a 4-epoch history ring; the same pinned reads
    // must answer identically in-process, over the in-process duplex,
    // and over loopback TCP — compared on encoded wire bytes, so every
    // f64 bit counts.
    let make = || {
        let el = gee_gen::erdos_renyi_gnm(N, 900, 21);
        let labels = Labels::from_options_with_k(
            &gee_gen::random_labels(
                N,
                gee_gen::LabelSpec {
                    num_classes: K,
                    labeled_fraction: 0.3,
                },
                3,
            ),
            K,
        );
        let engine = Engine::with_config(gee_serve::RegistryConfig {
            default_shards: 4,
            history: gee_serve::HistoryPolicy::keep(4),
            ..gee_serve::RegistryConfig::default()
        })
        .unwrap();
        engine.registry().register("g", &el, &labels).unwrap();
        for i in 0..3u32 {
            engine
                .apply_updates(
                    "g",
                    vec![
                        Update::InsertEdge {
                            u: i % N as u32,
                            v: (i * 13 + 2) % N as u32,
                            w: 1.0 + f64::from(i),
                        },
                        Update::SetLabel {
                            v: (i * 7 + 1) % N as u32,
                            label: Some(i % K as u32),
                        },
                    ],
                )
                .unwrap();
        }
        engine
    };
    // One twin engine per path: the read suites below must hit each
    // engine exactly once per round or the Stats query counters diverge.
    let local = make();
    let remote_dup = Arc::new(make());
    let remote_tcp = Arc::new(make());

    let pinned_suite = |epoch: Option<u64>| -> Vec<Envelope> {
        let reqs = vec![
            Request::classify(vec![0, 5, 9], 3),
            Request::similar(7, 6),
            Request::embed_row(11),
            Request::stats(),
        ];
        reqs.into_iter()
            .map(|r| {
                let r = match epoch {
                    Some(e) => r.pinned(e),
                    None => r,
                };
                Envelope::new("g", r)
            })
            .collect()
    };

    let handle = Server::listen(remote_tcp, "127.0.0.1:0", None).unwrap();
    let mut tcp = Client::connect(handle.addr()).unwrap();
    assert_eq!(tcp.protocol_version(), PROTOCOL_VERSION);
    let (mut dup, server_thread) = duplex_client(remote_dup);

    // Every retained epoch, plus the unpinned present, plus two evicted
    // pins (one too old once epochs advance past keep, one future).
    for epoch in [None, Some(0), Some(1), Some(2), Some(3), Some(9)] {
        let batch = pinned_suite(epoch);
        let in_process = local.execute_batch(batch.clone());
        let over_duplex = dup.execute_batch(batch.clone()).unwrap();
        let over_tcp = tcp.execute_batch(batch).unwrap();
        let bytes = |r: &Vec<Result<Response, ServeError>>| gee_serve::wire::encode(r);
        assert_eq!(
            bytes(&in_process),
            bytes(&over_duplex),
            "duplex, epoch {epoch:?}"
        );
        assert_eq!(bytes(&in_process), bytes(&over_tcp), "tcp, epoch {epoch:?}");
        if epoch == Some(9) {
            for r in &in_process {
                assert!(
                    matches!(r, Err(ServeError::EpochEvicted { newest: 3, .. })),
                    "{r:?}"
                );
            }
        }
    }

    // Named *_at methods agree across the three paths too. (These are
    // asymmetric — they don't hit every engine — so the stats check
    // below compares snapshot-shaped fields, not query counters.)
    assert_eq!(
        local.classify_at("g", vec![0, 1], 3, Some(1)),
        dup.classify_at("g", vec![0, 1], 3, Some(1))
    );
    assert_eq!(
        local.embed_row_at("g", 4, Some(2)),
        tcp.embed_row_at("g", 4, Some(2))
    );
    assert_eq!(
        local.similar_at("g", 3, 5, Some(0)),
        tcp.similar_at("g", 3, 5, Some(0))
    );
    let l = local.stats_at("g", Some(3)).unwrap();
    let d = dup.stats_at("g", Some(3)).unwrap();
    assert_eq!(
        (l.epoch, l.oldest_epoch, l.num_labeled, l.num_shards),
        (d.epoch, d.oldest_epoch, d.num_labeled, d.num_shards)
    );
    // Writes keep flowing while pinned readers look at the past: the
    // new epoch enters the ring, the oldest leaves.
    local
        .apply_updates("g", vec![Update::InsertEdge { u: 0, v: 1, w: 9.0 }])
        .unwrap();
    tcp.apply_updates("g", vec![Update::InsertEdge { u: 0, v: 1, w: 9.0 }])
        .unwrap();
    assert_eq!(
        local.stats("g").unwrap().oldest_epoch,
        tcp.stats("g").unwrap().oldest_epoch
    );
    assert!(matches!(
        tcp.embed_row_at("g", 0, Some(0)),
        Err(ServeError::EpochEvicted { .. })
    ));

    dup.goodbye().unwrap();
    server_thread.join().unwrap();
    tcp.goodbye().unwrap();
    handle.shutdown();
}

#[test]
fn overloaded_travels_the_wire_as_a_typed_per_request_error() {
    let el = gee_gen::erdos_renyi_gnm(N, 500, 5);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(
            N,
            gee_gen::LabelSpec {
                num_classes: K,
                labeled_fraction: 0.3,
            },
            3,
        ),
        K,
    );
    let engine = Arc::new(
        Engine::with_config(gee_serve::RegistryConfig {
            default_shards: 2,
            backpressure: gee_serve::BackpressurePolicy::max_pending(1),
            ..gee_serve::RegistryConfig::default()
        })
        .unwrap(),
    );
    engine.registry().register("g", &el, &labels).unwrap();
    let slot = engine.registry().hold_write_slot("g").unwrap();
    let (mut client, server_thread) = duplex_client(engine.clone());
    let err = client
        .apply_updates("g", vec![Update::InsertEdge { u: 0, v: 1, w: 1.0 }])
        .unwrap_err();
    assert_eq!(
        err,
        ServeError::Overloaded {
            graph: "g".into(),
            pending: 1,
            max_pending: 1,
        }
    );
    assert_eq!(err.code().as_u16(), 14);
    // The connection survives the rejection; reads still flow.
    assert!(client.stats("g").is_ok());
    drop(slot);
    assert_eq!(
        client
            .apply_updates("g", vec![Update::InsertEdge { u: 0, v: 1, w: 1.0 }])
            .unwrap(),
        (1, 1)
    );
    drop(client);
    server_thread.join().unwrap();
}

#[test]
fn ann_search_is_byte_identical_across_engine_duplex_and_tcp() {
    // Approximate search is still a deterministic function of the
    // snapshot (the index is built deterministically from block
    // content), so twin engines must answer ANN requests identically
    // in-process, over duplex, and over TCP — compared on encoded wire
    // bytes. The graph is large enough that every shard really indexes.
    use gee_serve::SearchPolicy;
    const AN: usize = 1600;
    let make = || {
        let el = gee_gen::erdos_renyi_gnm(AN, AN * 5, 43);
        let labels = Labels::from_options_with_k(
            &gee_gen::random_labels(
                AN,
                gee_gen::LabelSpec {
                    num_classes: K,
                    labeled_fraction: 0.3,
                },
                3,
            ),
            K,
        );
        let engine = Engine::with_config(gee_serve::RegistryConfig {
            default_shards: 4,
            search: SearchPolicy::ann(4),
            ..gee_serve::RegistryConfig::default()
        })
        .unwrap();
        engine.registry().register("g", &el, &labels).unwrap();
        engine
    };
    let local = make();
    let remote_dup = Arc::new(make());
    let remote_tcp = Arc::new(make());
    let handle = Server::listen(remote_tcp, "127.0.0.1:0", None).unwrap();
    let mut tcp = Client::connect(handle.addr()).unwrap();
    assert_eq!(tcp.protocol_version(), PROTOCOL_VERSION);
    let (mut dup, server_thread) = duplex_client(remote_dup);

    // Default (ANN) policy, per-request ANN overrides, the exact escape
    // hatch, and an invalid nprobe that must fail typed on every path.
    let suite: Vec<Envelope> = vec![
        Envelope::new("g", Request::similar(7, 10)),
        Envelope::new("g", Request::classify(vec![0, 5, 9, 1000], 5)),
        Envelope::new(
            "g",
            Request::similar(9, 10).with_search(SearchPolicy::ann(2)),
        ),
        Envelope::new(
            "g",
            Request::similar(9, 10).with_search(SearchPolicy::Exact),
        ),
        Envelope::new(
            "g",
            Request::classify(vec![3, 4], 3).with_search(SearchPolicy::Ann {
                nprobe: 1,
                refine: 64,
            }),
        ),
        Envelope::new(
            "g",
            Request::similar(2, 4).with_search(SearchPolicy::Ann {
                nprobe: 0,
                refine: 1,
            }),
        ),
    ];
    let in_process = local.execute_batch(suite.clone());
    let over_duplex = dup.execute_batch(suite.clone()).unwrap();
    let over_tcp = tcp.execute_batch(suite).unwrap();
    let bytes = |r: &Vec<Result<Response, ServeError>>| gee_serve::wire::encode(r);
    assert_eq!(bytes(&in_process), bytes(&over_duplex), "duplex");
    assert_eq!(bytes(&in_process), bytes(&over_tcp), "tcp");
    assert!(matches!(in_process[5], Err(ServeError::ZeroLimit { .. })));

    // The named *_with mirrors agree across paths too.
    assert_eq!(
        local.similar_with("g", 11, 8, None, Some(SearchPolicy::ann(3))),
        dup.similar_with("g", 11, 8, None, Some(SearchPolicy::ann(3))),
    );
    assert_eq!(
        local.classify_with("g", vec![1, 2], 3, None, Some(SearchPolicy::Exact)),
        tcp.classify_with("g", vec![1, 2], 3, None, Some(SearchPolicy::Exact)),
    );

    dup.goodbye().unwrap();
    server_thread.join().unwrap();
    tcp.goodbye().unwrap();
    handle.shutdown();
}

#[test]
fn v5_capped_client_speaks_json_against_a_v6_server() {
    // A client whose advertised range stops below the binary-frame
    // version negotiates down and the connection stays JSON end to end;
    // answers are identical to a full-version (binary) client's.
    let (remote, local) = twin_engines(3);
    let handle = Server::listen(remote, "127.0.0.1:0", None).unwrap();
    let mut v6 = Client::connect(handle.addr()).unwrap();
    assert_eq!(v6.protocol_version(), PROTOCOL_VERSION);
    let mut v5 = Client::over_versions(
        TcpTransport::connect(handle.addr()).unwrap(),
        gee_serve::wire::MIN_PROTOCOL_VERSION,
        gee_serve::wire::BINARY_FRAME_VERSION - 1,
    )
    .unwrap();
    assert_eq!(v5.protocol_version(), 5, "capped range negotiates down");
    // Read-only suites (writes would advance the shared engine's epoch
    // between the two executions): both codecs must carry bit-identical
    // answers, and both must match the in-process oracle.
    for case in 0..6u32 {
        let v = |i: u32| (case.wrapping_mul(17).wrapping_add(i * 5)) % N as u32;
        let batch = vec![
            Envelope::new("g", Request::classify(vec![v(0), v(1), v(2)], 3)),
            Envelope::new("g", Request::similar(v(3), 6)),
            Envelope::new("g", Request::embed_row(v(4))),
            Envelope::new("missing", Request::embed_row(0)),
            Envelope::new("g", Request::similar(v(5), 0)),
        ];
        let over_v5 = v5.execute_batch(batch.clone()).unwrap();
        let over_v6 = v6.execute_batch(batch.clone()).unwrap();
        let in_process = local.execute_batch(batch);
        assert_eq!(over_v5, over_v6, "case {case}: codecs agree");
        assert_eq!(over_v5, in_process, "case {case}: wire equals engine");
    }
    v5.goodbye().unwrap();
    v6.goodbye().unwrap();
    handle.shutdown();
}

#[test]
fn shutdown_unblocks_when_bound_to_an_unspecified_address() {
    // `0.0.0.0:0` binds every interface; the shutdown self-connection
    // must target the loopback (connecting to 0.0.0.0 fails on some
    // platforms), or this test hangs forever.
    let (remote, _) = twin_engines(2);
    let handle = Server::listen(remote, "0.0.0.0:0", None).unwrap();
    assert!(handle.addr().ip().is_unspecified());
    let port = handle.addr().port();
    let mut client = Client::connect(("127.0.0.1", port)).unwrap();
    assert!(client.stats("g").is_ok());
    client.goodbye().unwrap();
    handle.shutdown(); // must return, not hang
}

#[test]
fn connection_burst_returns_to_pool_at_rest() {
    // Regression for the unbounded-JoinHandle accept loop: after a
    // burst of connections closes, the server holds no per-connection
    // state — the live gauge returns to zero and the thread pool stays
    // at its fixed size.
    let (remote, _) = twin_engines(2);
    let handle = Server::listen_with(remote, "127.0.0.1:0", None, 2).unwrap();
    assert_eq!(handle.workers(), 2);

    for _round in 0..3 {
        let mut clients: Vec<Client> = (0..12)
            .map(|_| Client::connect(handle.addr()).unwrap())
            .collect();
        for c in &mut clients {
            assert!(c.stats("g").is_ok());
        }
        assert!(handle.live_connections() >= 1, "burst is visible");
        for c in clients {
            c.goodbye().unwrap();
        }
        // The workers observe the goodbyes/EOFs asynchronously.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while handle.live_connections() > 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "stuck at {} live connections",
                handle.live_connections()
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    }
    assert_eq!(handle.workers(), 2, "pool size is burst-invariant");
    handle.shutdown();
}

#[test]
fn pipelining_survives_response_too_large_substitution() {
    // A batch whose encoded reply overflows MAX_FRAME_LEN gets a typed
    // ResponseTooLarge error in *every* slot (count preserved), and the
    // connection keeps working: a pipelined follow-up batch and further
    // sequential batches still succeed.
    const BIG_K: usize = 256; // dim == num_classes, so rows are 256 f64s
    const VERTICES: usize = 64;
    let el = gee_gen::erdos_renyi_gnm(VERTICES, 300, 11);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(
            VERTICES,
            gee_gen::LabelSpec {
                num_classes: BIG_K,
                labeled_fraction: 0.5,
            },
            3,
        ),
        BIG_K,
    );
    let reg = Registry::new(2);
    reg.register("g", &el, &labels).unwrap();
    let engine = Arc::new(Engine::new(Arc::new(reg)));
    let handle = Server::listen(engine, "127.0.0.1:0", None).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // ~34k rows x ~2KB each overflows the 64 MiB reply frame.
    let huge: Vec<Envelope> = (0..34_000u32)
        .map(|i| Envelope::new("g", Request::embed_row(i % VERTICES as u32)))
        .collect();
    let huge_len = huge.len();
    let small = workload_batch(1);
    let small_len = small.len();

    let mut replies = client.pipeline(vec![huge, small]).unwrap();
    assert_eq!(replies.len(), 2);
    let small_reply = replies.pop().unwrap();
    let huge_reply = replies.pop().unwrap();

    assert_eq!(huge_reply.len(), huge_len, "slot count preserved");
    for slot in &huge_reply {
        assert!(
            matches!(slot, Err(ServeError::ResponseTooLarge { max_bytes, .. })
                if *max_bytes == gee_serve::wire::MAX_FRAME_LEN),
            "{slot:?}"
        );
    }
    assert_eq!(small_reply.len(), small_len);
    assert!(small_reply[0].is_ok(), "pipelined follow-up still answered");

    // And the connection remains usable afterwards.
    assert!(client.stats("g").is_ok());
    client.goodbye().unwrap();
    handle.shutdown();
}
