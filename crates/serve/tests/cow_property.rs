//! Copy-on-write publication properties (seeded, compat proptest):
//!
//! * every CoW-published snapshot is **element-wise identical** (f64 bit
//!   patterns, labels, train sets) to a from-scratch full rebuild of the
//!   same writer state;
//! * blocks of shards a batch did not dirty are **structurally shared**
//!   with the parent epoch (`Arc::ptr_eq`), and dirty shards are not;
//! * blocks rebuilt for rows alone share the parent's labels slice (the
//!   train-set regrouping is skipped);
//! * the history ring retains exactly the `keep` newest epochs and
//!   evicts exactly the oldest.

use std::collections::HashSet;
use std::sync::Arc;

use gee_core::{DynamicGee, Labels};
use gee_gen::LabelSpec;
use gee_serve::{
    HistoryPolicy, Registry, RegistryConfig, ServeError, ShardLayout, Snapshot, Update,
};
use proptest::collection::vec;
use proptest::prelude::*;

const N: usize = 96;
const K: usize = 4;

fn fixture() -> (gee_graph::EdgeList, Labels) {
    let el = gee_gen::erdos_renyi_gnm(N, 500, 13);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(
            N,
            LabelSpec {
                num_classes: K,
                labeled_fraction: 0.4,
            },
            3,
        ),
        K,
    );
    (el, labels)
}

fn arb_update() -> impl Strategy<Value = Update> {
    let vertex = 0u32..N as u32;
    prop_oneof![
        (vertex.clone(), 0u32..N as u32, 1usize..5).prop_map(|(u, v, w)| Update::InsertEdge {
            u,
            v,
            w: w as f64 * 0.5,
        }),
        // Remove either a plausible fixture edge weight or a weight that
        // almost surely misses — both the hit and the no-op path.
        (vertex.clone(), 0u32..N as u32, 0usize..2).prop_map(|(u, v, w)| Update::RemoveEdge {
            u,
            v,
            w: if w == 0 { 1.0 } else { 77.77 },
        }),
        (
            vertex,
            prop_oneof![Just(None), (0u32..K as u32).prop_map(Some)]
        )
            .prop_map(|(v, label)| Update::SetLabel { v, label }),
    ]
}

/// The dirty set the registry must have computed, derived independently
/// from an oracle writer mirroring the pre-batch state.
fn expected_dirty(
    oracle: &DynamicGee,
    layout: &ShardLayout,
    batch: &[Update],
) -> (Vec<bool>, Vec<bool>) {
    let s = layout.num_shards();
    let (mut rows, mut labels) = (vec![false; s], vec![false; s]);
    let mut probe = oracle.clone();
    for u in batch {
        match *u {
            Update::InsertEdge { u, v, w } => {
                probe.insert_edge(u, v, w);
                rows[layout.shard_of(u)] = true;
                rows[layout.shard_of(v)] = true;
            }
            Update::RemoveEdge { u, v, w } => {
                if probe.remove_edge(u, v, w) {
                    rows[layout.shard_of(u)] = true;
                    rows[layout.shard_of(v)] = true;
                }
            }
            Update::SetLabel { v, label } => {
                if probe.label(v) != label {
                    rows.iter_mut().for_each(|d| *d = true);
                    labels[layout.shard_of(v)] = true;
                }
                probe.set_label(v, label);
            }
        }
    }
    (rows, labels)
}

/// Assert `snap` equals a from-scratch rebuild of `writer`, bit for bit.
fn assert_matches_full_rebuild(snap: &Snapshot, writer: &DynamicGee, layout: &ShardLayout) {
    let rebuilt = Snapshot::new(snap.epoch, writer.embedding(), writer.labels(), layout);
    assert_eq!(snap.num_shards(), rebuilt.num_shards());
    for (got, want) in snap.blocks().iter().zip(rebuilt.blocks()) {
        assert_eq!(got.range(), want.range());
        let got_bits: Vec<u64> = got.rows().iter().map(|x| x.to_bits()).collect();
        let want_bits: Vec<u64> = want.rows().iter().map(|x| x.to_bits()).collect();
        assert_eq!(got_bits, want_bits, "rows of shard {:?}", got.range());
        assert_eq!(got.labels(), want.labels(), "labels of {:?}", got.range());
        assert_eq!(got.train(), want.train(), "train of {:?}", got.range());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cow_publication_equals_full_rebuild_and_shares_exactly_the_clean_shards(
        batches in vec(vec(arb_update(), 1..8), 1..10),
        shards in 1usize..9,
    ) {
        let (el, labels) = fixture();
        let reg = Registry::with_config(RegistryConfig {
            default_shards: shards,
            history: HistoryPolicy::keep(2), // parent + child both held
            ..RegistryConfig::default()
        }).unwrap();
        reg.register("g", &el, &labels).unwrap();
        let layout = ShardLayout::new(N, shards);
        let mut oracle = DynamicGee::new(&el, &labels);
        for batch in &batches {
            let parent = reg.snapshot("g").unwrap();
            let (rows_dirty, labels_dirty) = expected_dirty(&oracle, &layout, batch);
            let (_, snap) = reg.apply_updates("g", batch).unwrap();
            // Mirror the batch into the oracle writer (identical op
            // order → identical f64 accumulation).
            for u in batch {
                match *u {
                    Update::InsertEdge { u, v, w } => oracle.insert_edge(u, v, w),
                    Update::RemoveEdge { u, v, w } => {
                        oracle.remove_edge(u, v, w);
                    }
                    Update::SetLabel { v, label } => oracle.set_label(v, label),
                }
            }
            assert_matches_full_rebuild(&snap, &oracle, &layout);
            for (i, (child, parent_block)) in
                snap.blocks().iter().zip(parent.blocks()).enumerate()
            {
                let clean = !rows_dirty[i] && !labels_dirty[i];
                prop_assert_eq!(
                    Arc::ptr_eq(child, parent_block),
                    clean,
                    "shard {} (rows_dirty {}, labels_dirty {})",
                    i, rows_dirty[i], labels_dirty[i]
                );
                prop_assert_eq!(
                    child.shares_labels_with(parent_block),
                    !labels_dirty[i],
                    "labels slice of shard {}", i
                );
            }
        }
    }

    #[test]
    fn history_ring_retains_exactly_the_newest_keep_epochs(
        keep in 1usize..6,
        published in 0usize..12,
    ) {
        let (el, labels) = fixture();
        let reg = Registry::with_config(RegistryConfig {
            default_shards: 4,
            history: HistoryPolicy::keep(keep),
            ..RegistryConfig::default()
        }).unwrap();
        reg.register("g", &el, &labels).unwrap();
        for i in 0..published as u32 {
            reg.apply_updates("g", &[Update::InsertEdge {
                u: i % N as u32,
                v: (i * 7 + 1) % N as u32,
                w: 1.0,
            }]).unwrap();
        }
        let newest = published as u64;
        let oldest = newest.saturating_sub(keep as u64 - 1);
        prop_assert_eq!(reg.epoch_range("g").unwrap(), (oldest, newest));
        for e in 0..=newest {
            let got = reg.snapshot_at("g", e);
            if e >= oldest {
                prop_assert_eq!(got.unwrap().epoch, e);
            } else {
                prop_assert!(matches!(
                    got,
                    Err(ServeError::EpochEvicted { oldest: o, newest: n, .. })
                        if o == oldest && n == newest
                ));
            }
        }
        prop_assert!(matches!(
            reg.snapshot_at("g", newest + 1),
            Err(ServeError::EpochEvicted { .. })
        ), "future epochs are not retained either");
    }
}

#[test]
fn single_shard_batch_on_16_shards_republishes_exactly_one_block() {
    // The acceptance criterion, verbatim: a single-shard update batch on
    // a 16-shard graph republishes exactly 1 ShardBlock; the other 15
    // are Arc::ptr_eq to the parent epoch's.
    let el = gee_gen::erdos_renyi_gnm(160, 800, 17);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(
            160,
            LabelSpec {
                num_classes: K,
                labeled_fraction: 0.4,
            },
            5,
        ),
        K,
    );
    let reg = Registry::with_config(RegistryConfig {
        default_shards: 16,
        history: HistoryPolicy::keep(2),
        ..RegistryConfig::default()
    })
    .unwrap();
    let parent = reg.register_with_shards("g", &el, &labels, 16).unwrap();
    assert_eq!(parent.num_shards(), 16);
    // 160 vertices / 16 shards → vertices 0..10 all live in shard 0.
    let (_, snap) = reg
        .apply_updates(
            "g",
            &[
                Update::InsertEdge { u: 2, v: 7, w: 1.5 },
                Update::InsertEdge { u: 0, v: 9, w: 2.5 },
            ],
        )
        .unwrap();
    let republished: Vec<usize> = snap
        .blocks()
        .iter()
        .zip(parent.blocks())
        .enumerate()
        .filter(|(_, (a, b))| !Arc::ptr_eq(a, b))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(republished, vec![0], "exactly one block republished");
    assert_eq!(
        snap.blocks()
            .iter()
            .zip(parent.blocks())
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count(),
        15
    );
    // And the one rebuilt block still shares its labels slice — no
    // label moved, so no train regrouping happened.
    assert!(snap.blocks()[0].shares_labels_with(&parent.blocks()[0]));
}

#[test]
fn pinned_epochs_stay_frozen_while_history_advances() {
    let (el, labels) = fixture();
    let reg = Registry::with_config(RegistryConfig {
        default_shards: 4,
        history: HistoryPolicy::keep(4),
        ..RegistryConfig::default()
    })
    .unwrap();
    reg.register("g", &el, &labels).unwrap();
    let mut frozen: Vec<(u64, Vec<u64>)> = Vec::new(); // (epoch, row-0 bits)
    for i in 0..3u32 {
        let (_, snap) = reg
            .apply_updates(
                "g",
                &[Update::InsertEdge {
                    u: 0,
                    v: (i * 11 + 1) % N as u32,
                    w: 3.0,
                }],
            )
            .unwrap();
        frozen.push((
            snap.epoch,
            snap.row(0).iter().map(|x| x.to_bits()).collect(),
        ));
    }
    for (epoch, bits) in &frozen {
        let snap = reg.snapshot_at("g", *epoch).unwrap();
        let now: Vec<u64> = snap.row(0).iter().map(|x| x.to_bits()).collect();
        assert_eq!(&now, bits, "epoch {epoch} must serve its frozen data");
    }
    // Distinct epochs of the ring are distinct snapshots.
    let uniq: HashSet<u64> = (1..=3)
        .map(|e| reg.snapshot_at("g", e).unwrap().epoch)
        .collect();
    assert_eq!(uniq.len(), 3);
}
