//! Helpers shared by the serve integration-test binaries.

use gee_serve::Snapshot;

/// Content fingerprint of one snapshot (FNV-1a over row bit patterns,
/// raw labels, and train pairs): equal fingerprints ⇔ bit-identical
/// served state. Used by the concurrency stress suite and the
/// durability harness so "equal" always means the same thing.
pub fn snapshot_fingerprint(snap: &Snapshot) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |b: u64| {
        h ^= b;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for block in snap.blocks() {
        for &x in block.rows() {
            eat(x.to_bits());
        }
        for &l in block.labels() {
            eat(l as u64);
        }
        for &(v, c) in block.train() {
            eat((u64::from(v) << 32) | u64::from(c));
        }
    }
    h
}
