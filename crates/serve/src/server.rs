//! Network front end: accept connections, decode batches, feed the
//! engine.
//!
//! [`Server`] is transport-agnostic — [`Server::serve_connection`] drives
//! the full protocol (handshake, batch loop, typed errors) over any
//! [`Transport`], so the same code path is exercised by in-process duplex
//! tests and real sockets. [`Server::listen`] adds the TCP shell: an
//! accept loop handing each connection to its own thread (connections are
//! independent; batches *within* one connection execute in order, which
//! is what makes client-side pipelining safe).
//!
//! Epoch-pinned reads (protocol v2's `at_epoch`) and back-pressure need
//! no special handling here: pins resolve inside
//! [`Engine::execute_batch`] against the registry's history ring, and an
//! overloaded write comes back as a per-request
//! [`ServeError::Overloaded`](crate::ServeError::Overloaded) result —
//! the connection itself is never throttled.

use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::engine::Engine;
use crate::transport::{TcpTransport, Transport};
use crate::wire::{self, ClientFrame, ServerFrame, MAX_FRAME_LEN};
use crate::ServeError;

/// Serves an [`Engine`] over the wire protocol (v5 current, v1–v4 spoken).
#[derive(Clone)]
pub struct Server {
    engine: Arc<Engine>,
}

/// What one connection did, for logs and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectionReport {
    /// Batch frames answered.
    pub batches: u64,
    /// Individual requests executed across those batches.
    pub requests: u64,
}

impl Server {
    pub fn new(engine: Arc<Engine>) -> Server {
        Server { engine }
    }

    /// The served engine (shared with any in-process callers).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Drive one connection to completion: handshake, then answer batch
    /// frames until the peer says goodbye or closes.
    ///
    /// Returns an error only for connection-fatal conditions (handshake
    /// failure, malformed frame, transport failure); per-request errors
    /// travel back inside `ServerFrame::Batch` results.
    pub fn serve_connection(
        &self,
        transport: &mut dyn Transport,
    ) -> Result<ConnectionReport, ServeError> {
        // -- Handshake.
        let hello = transport
            .recv()?
            .ok_or_else(|| ServeError::protocol("connection closed before Hello"))?;
        let (min_version, max_version) = match wire::decode::<ClientFrame>(&hello) {
            Ok(ClientFrame::Hello {
                min_version,
                max_version,
            }) => (min_version, max_version),
            Ok(_) => {
                let error = ServeError::protocol("first frame must be Hello");
                transport.send(wire::encode(&ServerFrame::Error {
                    error: error.clone(),
                }))?;
                return Err(error);
            }
            Err(error) => {
                transport.send(wire::encode(&ServerFrame::Error {
                    error: error.clone(),
                }))?;
                return Err(error);
            }
        };
        match wire::negotiate(min_version, max_version) {
            Ok(version) => {
                transport.send(wire::encode(&ServerFrame::HelloAck { version }))?;
            }
            Err(error) => {
                transport.send(wire::encode(&ServerFrame::Error {
                    error: error.clone(),
                }))?;
                return Err(error);
            }
        }

        // -- Batch loop.
        let mut report = ConnectionReport {
            batches: 0,
            requests: 0,
        };
        while let Some(frame) = transport.recv()? {
            match wire::decode::<ClientFrame>(&frame) {
                Ok(ClientFrame::Batch { id, requests }) => {
                    report.batches += 1;
                    report.requests += requests.len() as u64;
                    let num_requests = requests.len();
                    let results = self.engine.execute_batch(requests);
                    let mut frame = wire::encode(&ServerFrame::Batch { id, results });
                    if frame.len() > MAX_FRAME_LEN {
                        // A valid request can legitimately produce an
                        // over-cap response (e.g. many EmbedRow queries
                        // on a wide embedding). Keep the connection: put
                        // a typed error in every result slot so the
                        // count still matches and the client can resend
                        // in smaller batches.
                        let error = ServeError::ResponseTooLarge {
                            bytes: frame.len(),
                            max_bytes: MAX_FRAME_LEN,
                        };
                        let results: Vec<Result<crate::engine::Response, ServeError>> =
                            (0..num_requests).map(|_| Err(error.clone())).collect();
                        frame = wire::encode(&ServerFrame::Batch { id, results });
                        if frame.len() > MAX_FRAME_LEN {
                            // Even the substituted errors overflow
                            // (astronomically many requests): fatal.
                            transport.send(wire::encode(&ServerFrame::Error {
                                error: error.clone(),
                            }))?;
                            return Err(error);
                        }
                    }
                    transport.send(frame)?;
                }
                Ok(ClientFrame::Goodbye) => break,
                Ok(ClientFrame::Hello { .. }) => {
                    let error = ServeError::protocol("duplicate Hello after handshake");
                    transport.send(wire::encode(&ServerFrame::Error {
                        error: error.clone(),
                    }))?;
                    return Err(error);
                }
                Err(error) => {
                    // The stream may be desynchronized; close rather than
                    // guess at the next frame boundary.
                    transport.send(wire::encode(&ServerFrame::Error {
                        error: error.clone(),
                    }))?;
                    return Err(error);
                }
            }
        }
        Ok(report)
    }

    /// Bind `addr` and serve connections on background threads until the
    /// returned handle is shut down (or, with `max_conns`, until that
    /// many connections have been accepted and served).
    pub fn listen(
        engine: Arc<Engine>,
        addr: impl ToSocketAddrs,
        max_conns: Option<usize>,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let server = Server::new(engine);
        let accept_thread = spawn_accept_loop(listener, stop.clone(), max_conns, move |stream| {
            if let Ok(mut transport) = TcpTransport::from_stream(stream) {
                // Peer-caused failures are the peer's problem; this
                // thread just ends.
                let _ = server.serve_connection(&mut transport);
            }
        });
        Ok(ServerHandle {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }
}

/// TCP accept-loop scaffolding shared by [`Server::listen`] and the
/// replication listener
/// ([`ReplicationListener`](crate::replicate::ReplicationListener)):
/// accept until `stop` is raised (or `max_conns` connections have been
/// accepted), back off on accept errors, and hand each stream to
/// `handle` on its own thread, reaping finished threads as it goes.
/// Raising `stop` takes effect at the next accept; the owner unblocks
/// the loop with a self-connection (see [`ServerHandle`]).
pub(crate) fn spawn_accept_loop(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    max_conns: Option<usize>,
    handle: impl Fn(TcpStream) + Clone + Send + 'static,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
        let mut accepted = 0usize;
        while max_conns.is_none_or(|m| accepted < m) {
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(_) => {
                    // Persistent accept failures (EMFILE under fd
                    // pressure, EINTR storms) must not busy-spin the
                    // core; back off briefly and retry.
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                }
            };
            if stop.load(Ordering::SeqCst) {
                break; // the shutdown self-connection
            }
            accepted += 1;
            // Reap handles of finished connections so a long-lived
            // server doesn't accumulate one JoinHandle per connection
            // ever accepted.
            conn_threads.retain(|t| !t.is_finished());
            let handle = handle.clone();
            conn_threads.push(std::thread::spawn(move || handle(stream)));
        }
        for t in conn_threads {
            let _ = t.join();
        }
    })
}

/// Owner of a listening server; dropping it shuts the server down.
pub struct ServerHandle {
    local_addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Assemble a handle around an accept loop spawned with
    /// [`spawn_accept_loop`] (shared with the replication listener).
    pub(crate) fn from_parts(
        local_addr: std::net::SocketAddr,
        stop: Arc<AtomicBool>,
        accept_thread: JoinHandle<()>,
    ) -> ServerHandle {
        ServerHandle {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
        }
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Stop accepting, wait for in-flight connections to finish.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    /// Wait for the accept loop to end on its own (only terminates when
    /// `listen` was given `max_conns`).
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    fn shutdown_in_place(&mut self) {
        let Some(accept_thread) = self.accept_thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Unblock `accept` so the loop observes the stop flag.
        let _ = TcpStream::connect(self.local_addr);
        let _ = accept_thread.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}
