//! Network front end: accept connections, decode batches, feed the
//! engine.
//!
//! [`Server`] is transport-agnostic — [`Server::serve_connection`] drives
//! the full protocol (handshake, batch loop, typed errors) over any
//! [`Transport`], so the same code path is exercised by in-process duplex
//! tests and real sockets. Both it and the TCP front end share one
//! frame-at-a-time state machine (`ConnProtocol`), so the protocol has
//! exactly one implementation regardless of how bytes arrive.
//!
//! [`Server::listen`] adds the TCP shell: a fixed **worker pool** of
//! [`--workers`](Server::listen_with) threads, each multiplexing many
//! nonblocking connections via readiness polling (`poller`).
//! An accept thread hands each new connection to a worker round-robin;
//! the worker owns it until close. Compared to the thread-per-connection
//! design this replaces, idle connections cost a pollfd instead of a
//! thread stack, the thread count is a constant chosen at bind time
//! rather than one per connection ever accepted, and there is no
//! per-burst `JoinHandle` backlog to reap. Connections stay independent;
//! batches *within* one connection still execute in order (the worker
//! services one frame at a time per connection), which is what makes
//! client-side pipelining safe.
//!
//! Epoch-pinned reads (protocol v2's `at_epoch`) and back-pressure need
//! no special handling here: pins resolve inside
//! [`Engine::execute_batch`] against the registry's history ring, and an
//! overloaded write comes back as a per-request
//! [`ServeError::Overloaded`](crate::ServeError::Overloaded) result —
//! the connection itself is never throttled.

use std::io::{Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::codec::FrameCodec;
use crate::engine::Engine;
use crate::poller::{self, Interest, Source, WakeRx, Waker};
use crate::transport::Transport;
use crate::wire::{self, ClientFrame, ServerFrame, MAX_FRAME_LEN};
use crate::ServeError;

/// Serves an [`Engine`] over the wire protocol (v6 current, v1–v5 spoken).
#[derive(Clone)]
pub struct Server {
    engine: Arc<Engine>,
}

/// What one connection did, for logs and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectionReport {
    /// Batch frames answered.
    pub batches: u64,
    /// Individual requests executed across those batches.
    pub requests: u64,
}

/// What [`ConnProtocol::step`] wants done with the connection after one
/// frame.
pub(crate) enum Step {
    /// Send these bytes; the connection stays open.
    Reply(Vec<u8>),
    /// Peer said goodbye: close cleanly, nothing to send.
    Goodbye,
    /// Send these bytes, then close; the error is connection-fatal.
    Fatal(Vec<u8>, ServeError),
}

/// The per-connection protocol state machine, shared by the blocking
/// [`Server::serve_connection`] and the worker pool: one encoded client
/// frame in, one [`Step`] out. Owns the handshake (always JSON) and the
/// post-handshake codec choice (binary from protocol v6, JSON below).
pub(crate) struct ConnProtocol {
    server: Server,
    version: Option<u32>,
    codec: FrameCodec,
    report: ConnectionReport,
}

impl ConnProtocol {
    pub(crate) fn new(server: Server) -> ConnProtocol {
        ConnProtocol {
            server,
            version: None,
            // Until the handshake resolves, everything (including a
            // version-refusal Error frame) is JSON.
            codec: FrameCodec::Json,
            report: ConnectionReport {
                batches: 0,
                requests: 0,
            },
        }
    }

    pub(crate) fn handshaken(&self) -> bool {
        self.version.is_some()
    }

    pub(crate) fn report(&self) -> ConnectionReport {
        self.report
    }

    fn fatal(&self, error: ServeError) -> Step {
        let frame = self.codec.encode_server(&ServerFrame::Error {
            error: error.clone(),
        });
        Step::Fatal(frame, error)
    }

    /// Advance the connection by one frame.
    pub(crate) fn step(&mut self, frame: &[u8]) -> Step {
        let Some(_) = self.version else {
            return self.handshake(frame);
        };
        match self.codec.decode_client(frame) {
            Ok(ClientFrame::Batch { id, requests }) => self.batch(id, requests),
            Ok(ClientFrame::Goodbye) => Step::Goodbye,
            Ok(ClientFrame::Hello { .. }) => {
                self.fatal(ServeError::protocol("duplicate Hello after handshake"))
            }
            // The stream may be desynchronized; close rather than guess
            // at the next frame boundary.
            Err(error) => self.fatal(error),
        }
    }

    fn handshake(&mut self, frame: &[u8]) -> Step {
        let (min_version, max_version) = match wire::decode::<ClientFrame>(frame) {
            Ok(ClientFrame::Hello {
                min_version,
                max_version,
            }) => (min_version, max_version),
            Ok(_) => return self.fatal(ServeError::protocol("first frame must be Hello")),
            Err(error) => return self.fatal(error),
        };
        match wire::negotiate(min_version, max_version) {
            Ok(version) => {
                // The ack itself rides JSON; every frame after it rides
                // the codec the negotiated version implies.
                let ack = wire::encode(&ServerFrame::HelloAck { version });
                self.version = Some(version);
                self.codec = FrameCodec::for_version(version);
                Step::Reply(ack)
            }
            Err(error) => self.fatal(error),
        }
    }

    fn batch(&mut self, id: u64, requests: Vec<crate::engine::Envelope>) -> Step {
        self.report.batches += 1;
        self.report.requests += requests.len() as u64;
        let num_requests = requests.len();
        let results = self.server.engine.execute_batch(requests);
        let mut frame = self
            .codec
            .encode_server(&ServerFrame::Batch { id, results });
        if frame.len() > MAX_FRAME_LEN {
            // A valid request can legitimately produce an over-cap
            // response (e.g. many EmbedRow queries on a wide embedding).
            // Keep the connection: put a typed error in every result
            // slot so the count still matches and the client can resend
            // in smaller batches.
            let error = ServeError::ResponseTooLarge {
                bytes: frame.len(),
                max_bytes: MAX_FRAME_LEN,
            };
            let results: Vec<Result<crate::engine::Response, ServeError>> =
                (0..num_requests).map(|_| Err(error.clone())).collect();
            frame = self
                .codec
                .encode_server(&ServerFrame::Batch { id, results });
            if frame.len() > MAX_FRAME_LEN {
                // Even the substituted errors overflow (astronomically
                // many requests): fatal.
                return self.fatal(error);
            }
        }
        Step::Reply(frame)
    }
}

impl Server {
    pub fn new(engine: Arc<Engine>) -> Server {
        Server { engine }
    }

    /// The served engine (shared with any in-process callers).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Drive one connection to completion: handshake, then answer batch
    /// frames until the peer says goodbye or closes.
    ///
    /// Returns an error only for connection-fatal conditions (handshake
    /// failure, malformed frame, transport failure); per-request errors
    /// travel back inside `ServerFrame::Batch` results.
    pub fn serve_connection(
        &self,
        transport: &mut dyn Transport,
    ) -> Result<ConnectionReport, ServeError> {
        let mut proto = ConnProtocol::new(self.clone());
        while let Some(frame) = transport.recv()? {
            match proto.step(&frame) {
                Step::Reply(bytes) => transport.send(bytes)?,
                Step::Goodbye => return Ok(proto.report()),
                Step::Fatal(bytes, error) => {
                    transport.send(bytes)?;
                    return Err(error);
                }
            }
        }
        if !proto.handshaken() {
            return Err(ServeError::protocol("connection closed before Hello"));
        }
        Ok(proto.report())
    }

    /// Bind `addr` and serve connections on the default-sized worker
    /// pool until the returned handle is shut down (or, with
    /// `max_conns`, until that many connections have been accepted and
    /// served).
    pub fn listen(
        engine: Arc<Engine>,
        addr: impl ToSocketAddrs,
        max_conns: Option<usize>,
    ) -> std::io::Result<ServerHandle> {
        Self::listen_with(engine, addr, max_conns, default_workers())
    }

    /// [`Server::listen`] with an explicit worker-pool size (`gee serve
    /// --workers N`). Each worker multiplexes its share of the
    /// connections; `workers` is clamped to at least 1.
    pub fn listen_with(
        engine: Arc<Engine>,
        addr: impl ToSocketAddrs,
        max_conns: Option<usize>,
        workers: usize,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let server = Server::new(engine);
        let pool = Arc::new(PoolShared {
            draining: AtomicBool::new(false),
            live: AtomicUsize::new(0),
        });

        let workers = workers.max(1);
        let mut lanes = Vec::with_capacity(workers);
        let mut worker_threads = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (waker, wake_rx) = poller::wake_channel()?;
            let queue: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
            lanes.push(Lane {
                waker,
                queue: queue.clone(),
            });
            let server = server.clone();
            let pool = pool.clone();
            worker_threads.push(std::thread::spawn(move || {
                worker_loop(server, pool, queue, wake_rx)
            }));
        }

        let accept_pool = pool.clone();
        let accept_stop = stop.clone();
        let accept_thread = std::thread::spawn(move || {
            let mut accepted = 0usize;
            let mut next_lane = 0usize;
            while max_conns.is_none_or(|m| accepted < m) {
                let stream = match listener.accept() {
                    Ok((stream, _)) => stream,
                    Err(_) => {
                        // Persistent accept failures (EMFILE under fd
                        // pressure, EINTR storms) must not busy-spin the
                        // core; back off briefly and retry.
                        if accept_stop.load(Ordering::SeqCst) {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(10));
                        continue;
                    }
                };
                if accept_stop.load(Ordering::SeqCst) {
                    break; // the shutdown self-connection
                }
                accepted += 1;
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    continue;
                }
                accept_pool.live.fetch_add(1, Ordering::SeqCst);
                let lane = &lanes[next_lane % lanes.len()];
                next_lane = next_lane.wrapping_add(1);
                lane.queue.lock().expect("lane queue poisoned").push(stream);
                lane.waker.wake();
            }
            // Drain: workers finish their live connections, then exit.
            accept_pool.draining.store(true, Ordering::SeqCst);
            for lane in &lanes {
                lane.waker.wake();
            }
            for t in worker_threads {
                let _ = t.join();
            }
        });

        Ok(ServerHandle {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
            pool: Some(PoolStats {
                shared: pool,
                workers,
            }),
        })
    }
}

/// Default worker-pool size: one worker per available core, bounded so
/// a huge machine doesn't spawn hundreds of mostly-idle pollers.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 16)
}

/// State shared between the accept thread and every worker.
struct PoolShared {
    /// No more connections will arrive; finish the live ones and exit.
    draining: AtomicBool,
    /// Connections currently owned by some worker (accepted, not yet
    /// closed) — the at-rest gauge the reap regression test watches.
    live: AtomicUsize,
}

/// The accept thread's handle on one worker.
struct Lane {
    waker: Waker,
    queue: Arc<Mutex<Vec<TcpStream>>>,
}

/// One multiplexed connection owned by a worker.
struct Conn {
    stream: TcpStream,
    proto: ConnProtocol,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    /// No more input will be processed (Goodbye, fatal error, or EOF);
    /// flush `outbuf`, then close.
    closing: bool,
    /// Torn down now, regardless of unflushed output.
    dead: bool,
}

const READ_CHUNK: usize = 64 * 1024;

impl Conn {
    fn new(stream: TcpStream, server: Server) -> Conn {
        Conn {
            stream,
            proto: ConnProtocol::new(server),
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            closing: false,
            dead: false,
        }
    }

    fn interest(&self) -> Interest {
        Interest {
            readable: !self.closing,
            writable: !self.outbuf.is_empty(),
        }
    }

    fn finished(&self) -> bool {
        self.dead || (self.closing && self.outbuf.is_empty())
    }

    /// Queue one already-encoded frame behind the transport's
    /// big-endian length prefix (mirrors [`TcpTransport::send`]).
    fn push_frame(&mut self, frame: Vec<u8>) {
        if frame.len() > MAX_FRAME_LEN {
            // Nothing valid can be sent; the peer would reject it too.
            self.dead = true;
            return;
        }
        self.outbuf
            .extend_from_slice(&(frame.len() as u32).to_be_bytes());
        self.outbuf.extend_from_slice(&frame);
    }

    /// Pull whatever the socket has, then run complete frames through
    /// the protocol.
    fn service_readable(&mut self) {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // EOF between frames is a clean close; mid-frame,
                    // the peer crashed — either way input is over.
                    self.closing = true;
                    break;
                }
                Ok(n) => {
                    self.inbuf.extend_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        self.process_frames();
    }

    fn process_frames(&mut self) {
        while !self.closing && self.inbuf.len() >= 4 {
            let len =
                u32::from_be_bytes([self.inbuf[0], self.inbuf[1], self.inbuf[2], self.inbuf[3]])
                    as usize;
            if len > MAX_FRAME_LEN {
                let error = ServeError::protocol(format!(
                    "peer announced {len}-byte frame (max {MAX_FRAME_LEN})"
                ));
                let frame = self
                    .proto
                    .codec
                    .encode_server(&ServerFrame::Error { error });
                self.push_frame(frame);
                self.closing = true;
                break;
            }
            if self.inbuf.len() < 4 + len {
                break;
            }
            let frame: Vec<u8> = self.inbuf.drain(..4 + len).skip(4).collect();
            match self.proto.step(&frame) {
                Step::Reply(bytes) => self.push_frame(bytes),
                Step::Goodbye => self.closing = true,
                Step::Fatal(bytes, _) => {
                    self.push_frame(bytes);
                    self.closing = true;
                }
            }
        }
    }

    /// Flush as much of `outbuf` as the socket accepts.
    fn service_writable(&mut self) {
        let mut written = 0usize;
        while written < self.outbuf.len() {
            match self.stream.write(&self.outbuf[written..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        self.outbuf.drain(..written);
    }
}

fn worker_loop(
    server: Server,
    pool: Arc<PoolShared>,
    queue: Arc<Mutex<Vec<TcpStream>>>,
    wake: WakeRx,
) {
    let mut conns: Vec<Conn> = Vec::new();
    loop {
        // Adopt newly-assigned connections.
        for stream in queue.lock().expect("lane queue poisoned").drain(..) {
            conns.push(Conn::new(stream, server.clone()));
        }
        if conns.is_empty() {
            if pool.draining.load(Ordering::SeqCst)
                && queue.lock().expect("lane queue poisoned").is_empty()
            {
                break;
            }
        }

        let mut sources: Vec<(Source<'_>, Interest)> = Vec::with_capacity(conns.len() + 1);
        let wake_slots = match wake.source() {
            Some(source) => {
                sources.push((
                    source,
                    Interest {
                        readable: true,
                        writable: false,
                    },
                ));
                1
            }
            None => 0,
        };
        for conn in &conns {
            sources.push((Source::Tcp(&conn.stream), conn.interest()));
        }
        let ready = poller::wait(&sources, Duration::from_millis(200));
        drop(sources);
        wake.drain();

        for (i, conn) in conns.iter_mut().enumerate() {
            let r = ready[wake_slots + i];
            if r.error {
                // Hangup may still have final bytes queued in the
                // kernel; a read drains them (and observes EOF).
                conn.service_readable();
                if !conn.outbuf.is_empty() {
                    conn.service_writable();
                }
                if conn.closing && !conn.dead && !conn.outbuf.is_empty() {
                    conn.dead = true; // peer is gone; don't wait to flush
                }
                continue;
            }
            if r.writable {
                conn.service_writable();
            }
            if r.readable {
                conn.service_readable();
                // Replies produced by the frames just processed: try an
                // eager flush so the common request→reply cycle needs
                // no second poll round.
                if !conn.outbuf.is_empty() {
                    conn.service_writable();
                }
            }
        }
        let before = conns.len();
        conns.retain(|c| !c.finished());
        let closed = before - conns.len();
        if closed > 0 {
            pool.live.fetch_sub(closed, Ordering::SeqCst);
        }
    }
}

/// TCP accept-loop scaffolding for the replication listener
/// ([`ReplicationListener`](crate::replicate::ReplicationListener)),
/// which keeps thread-per-connection: follower connections are few,
/// long-lived, and block in `send` back-pressure. Accept until `stop`
/// is raised (or `max_conns` connections have been accepted), back off
/// on accept errors, and hand each stream to `handle` on its own
/// thread, reaping finished threads as it goes. Raising `stop` takes
/// effect at the next accept; the owner unblocks the loop with a
/// self-connection (see [`ServerHandle`]).
pub(crate) fn spawn_accept_loop(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    max_conns: Option<usize>,
    handle: impl Fn(TcpStream) + Clone + Send + 'static,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
        let mut accepted = 0usize;
        while max_conns.is_none_or(|m| accepted < m) {
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(_) => {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                }
            };
            if stop.load(Ordering::SeqCst) {
                break; // the shutdown self-connection
            }
            accepted += 1;
            // Reap handles of finished connections so a long-lived
            // listener doesn't accumulate one JoinHandle per connection
            // ever accepted.
            conn_threads.retain(|t| !t.is_finished());
            let handle = handle.clone();
            conn_threads.push(std::thread::spawn(move || handle(stream)));
        }
        for t in conn_threads {
            let _ = t.join();
        }
    })
}

/// Pool observability carried by the handle.
struct PoolStats {
    shared: Arc<PoolShared>,
    workers: usize,
}

/// Owner of a listening server; dropping it shuts the server down.
pub struct ServerHandle {
    local_addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    pool: Option<PoolStats>,
}

impl ServerHandle {
    /// Assemble a handle around an accept loop spawned with
    /// [`spawn_accept_loop`] (used by the replication listener).
    pub(crate) fn from_parts(
        local_addr: std::net::SocketAddr,
        stop: Arc<AtomicBool>,
        accept_thread: JoinHandle<()>,
    ) -> ServerHandle {
        ServerHandle {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
            pool: None,
        }
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Connections currently open on the worker pool (0 for
    /// non-pooled listeners). At rest this returns to 0 no matter how
    /// large the preceding burst — connections are owned by the fixed
    /// workers, not by per-connection threads.
    pub fn live_connections(&self) -> usize {
        self.pool
            .as_ref()
            .map_or(0, |p| p.shared.live.load(Ordering::SeqCst))
    }

    /// Size of the worker pool serving this listener (0 for non-pooled
    /// listeners).
    pub fn workers(&self) -> usize {
        self.pool.as_ref().map_or(0, |p| p.workers)
    }

    /// Stop accepting, wait for in-flight connections to finish.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    /// Wait for the accept loop to end on its own (only terminates when
    /// `listen` was given `max_conns`).
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    fn shutdown_in_place(&mut self) {
        let Some(accept_thread) = self.accept_thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Unblock `accept` so the loop observes the stop flag. A socket
        // bound to an unspecified address (`0.0.0.0:p` / `[::]:p`) is
        // not connectable *to* that address on every platform, so aim
        // the self-connection at the matching loopback instead.
        let mut target = self.local_addr;
        if target.ip().is_unspecified() {
            target.set_ip(match target.ip() {
                IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(target);
        let _ = accept_thread.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}
