//! `gee-serve` — a sharded, batch-serving embedding query engine.
//!
//! The paper frames GEE as the fast front half of a pipeline whose back
//! half is *subsequent inference*: vertex classification and clustering
//! over the embedding. This crate is that back half as a long-lived
//! service. It stitches the workspace's ingredients — [`gee_core`]'s
//! embeddings and [`DynamicGee`](gee_core::DynamicGee) incremental
//! maintenance, [`gee_eval`]'s kNN semantics — into an in-memory,
//! multi-graph store plus query engine:
//!
//! * [`Registry`] owns named graphs, their labels, and epoch-versioned
//!   [`Snapshot`]s of the embedding. Writes serialize through a
//!   `DynamicGee` writer (O(1) per edge op — GEE is a linear sketch) and
//!   publish a new epoch atomically; readers holding a snapshot are never
//!   disturbed.
//! * [`ShardLayout`] partitions vertices across `S` contiguous shards so
//!   snapshot materialization, kNN scans, and `Similar` sweeps run
//!   shard-parallel via rayon.
//! * [`Engine`] answers typed requests — [`Request::Classify`],
//!   [`Request::Similar`], [`Request::EmbedRow`],
//!   [`Request::ApplyUpdates`], [`Request::Stats`] — and
//!   [`Engine::execute_batch`] coalesces read runs against one consistent
//!   snapshot per graph while keeping batch results identical to
//!   one-at-a-time execution.
//!
//! ```
//! use std::sync::Arc;
//! use gee_core::Labels;
//! use gee_serve::{Engine, Envelope, Registry, Request, Response, Update};
//!
//! let sbm = gee_gen::sbm(&gee_gen::SbmParams::balanced(3, 40, 0.3, 0.02), 7);
//! let labels = Labels::from_options_with_k(&gee_gen::subsample_labels(&sbm.truth, 0.5, 1), 3);
//!
//! let registry = Arc::new(Registry::new(4)); // 4 shards
//! registry.register("social", &sbm.edges, &labels);
//! let engine = Engine::new(registry);
//!
//! let answers = engine.execute_batch(vec![
//!     Envelope::new("social", Request::Classify { vertices: vec![0, 1, 2], k: 5 }),
//!     Envelope::new("social", Request::ApplyUpdates {
//!         updates: vec![Update::InsertEdge { u: 0, v: 1, w: 1.0 }],
//!     }),
//!     Envelope::new("social", Request::Similar { vertex: 0, top: 3 }),
//! ]);
//! assert!(answers.iter().all(Result::is_ok));
//! # if let Ok(Response::Classes(c)) = &answers[0] { assert_eq!(c.len(), 3); }
//! ```

pub mod engine;
pub mod registry;
pub mod shard;
pub mod snapshot;

pub use engine::{Engine, Envelope, GraphReport, Request, Response};
pub use registry::{Registry, Update};
pub use shard::ShardLayout;
pub use snapshot::Snapshot;

/// Errors a serving request can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// No graph registered under this name.
    UnknownGraph(String),
    /// A vertex id at or beyond the graph's vertex count.
    VertexOutOfRange { vertex: u32, num_vertices: usize },
    /// A class label at or beyond the registered `K`.
    ClassOutOfRange { class: u32, num_classes: usize },
    /// Request parameters that can never succeed (k = 0, no labels, …).
    BadRequest(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownGraph(name) => write!(f, "unknown graph {name:?}"),
            ServeError::VertexOutOfRange { vertex, num_vertices } => {
                write!(f, "vertex {vertex} out of range (graph has {num_vertices} vertices)")
            }
            ServeError::ClassOutOfRange { class, num_classes } => {
                write!(f, "class {class} out of range (graph has K={num_classes})")
            }
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}
