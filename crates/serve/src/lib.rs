//! `gee-serve` — a sharded, batch-serving embedding query engine.
//!
//! The paper frames GEE as the fast front half of a pipeline whose back
//! half is *subsequent inference*: vertex classification and clustering
//! over the embedding. This crate is that back half as a long-lived
//! service. It stitches the workspace's ingredients — [`gee_core`]'s
//! embeddings and [`DynamicGee`](gee_core::DynamicGee) incremental
//! maintenance, [`gee_eval`]'s kNN semantics — into an in-memory,
//! multi-graph store plus query engine:
//!
//! * [`Registry`] owns named graphs, their labels, and epoch-versioned
//!   [`Snapshot`]s of the embedding. Writes serialize through a
//!   `DynamicGee` writer (O(1) per edge op — GEE is a linear sketch) and
//!   publish a new epoch atomically; readers holding a snapshot are never
//!   disturbed.
//! * [`ShardLayout`] partitions vertices across `S` contiguous shards so
//!   snapshot materialization, kNN scans, and `Similar` sweeps run
//!   shard-parallel via rayon.
//! * A [`Snapshot`] is a set of per-shard [`ShardBlock`]s published
//!   **copy-on-write**: an update batch re-materializes only the shards
//!   it dirtied and structurally shares the rest with the parent epoch
//!   (see `registry`'s module docs for the exact dirty rules).
//! * [`Engine`] answers typed requests — [`Request::Classify`],
//!   [`Request::Similar`], [`Request::EmbedRow`],
//!   [`Request::ApplyUpdates`], [`Request::Stats`] — and
//!   [`Engine::execute_batch`] coalesces read runs against one consistent
//!   snapshot per graph while keeping batch results identical to
//!   one-at-a-time execution.
//!
//! # Wire protocol
//!
//! Every serve type doubles as a versioned public wire contract, so the
//! engine can be driven across a process boundary with answers provably
//! equal to in-process execution:
//!
//! * **Frame layout** — a frame is one [`wire::ClientFrame`] or
//!   [`wire::ServerFrame`], serialized by the negotiated
//!   [`FrameCodec`]: compact JSON (serde's externally-tagged enum
//!   encoding) below protocol v6, a CRC-guarded binary encoding
//!   ([`codec`]) from v6 up. The handshake frames themselves are always
//!   JSON, so negotiation never depends on its own outcome. On stream
//!   transports (TCP) each frame is length-prefixed with a big-endian
//!   `u32` byte count, capped at [`wire::MAX_FRAME_LEN`]; the
//!   in-process [`transport::duplex`] moves the encoded frames through
//!   a channel without copying.
//! * **Version negotiation** — a connection starts with
//!   `ClientFrame::Hello { min_version, max_version }`; the server picks
//!   the highest mutually supported version (currently
//!   [`wire::PROTOCOL_VERSION`] = 6; v1–v5 are still spoken, and the
//!   v2 `at_epoch` / v3 `search` / v4 `Metrics` / v5 replication / v6
//!   binary-frame extensions are additive — see [`wire`]'s module docs
//!   for the per-version table) and answers `ServerFrame::HelloAck`, or
//!   a typed [`ServeError::VersionUnsupported`] and closes.
//! * **Requests** — `ClientFrame::Batch { id, requests }` carries an
//!   ordered [`Envelope`] batch that the server feeds to
//!   [`Engine::execute_batch`]; the response echoes the `id`, which lets
//!   a client pipeline many batches on one connection before reading any
//!   reply ([`Client::pipeline`]).
//! * **Errors** — failures travel as [`ServeError`] values with stable
//!   numeric [`ErrorCode`]s (see [`ErrorCode::as_u16`]), never as bare
//!   strings, so clients can branch without parsing messages.
//!
//! [`Server`] accepts connections (any [`Transport`]) — the TCP listener
//! multiplexes them over a fixed worker pool of nonblocking readiness
//! loops ([`Server::listen_with`], `gee serve --workers N`) — and
//! [`Client`] mirrors [`Engine`]'s methods one-for-one (`classify`, `similar`,
//! `embed_row`, `apply_updates`, `stats`, `metrics`, `execute_batch`),
//! which makes Engine-vs-Client equivalence property-testable. The
//! serving stack also keeps registry-wide observability counters
//! ([`metrics`]) snapshotted by the protocol-v4 [`Request::Metrics`]
//! probe as a [`MetricsReport`] — the data source for `gee bench`'s
//! server-side samples. See
//! `examples/network_serving.rs` for the end-to-end proof and the
//! `wire_overhead` bench binary for in-process vs duplex vs loopback-TCP
//! throughput.
//!
//! # Epoch pinning and back-pressure
//!
//! A registry opened via [`Registry::with_config`] takes two serving
//! policies alongside durability:
//!
//! * **[`HistoryPolicy`]** — how many published epochs each graph
//!   retains (default 1: newest only). Read requests carry an optional
//!   `at_epoch` pin ([`Request::Classify`], [`Request::Similar`],
//!   [`Request::EmbedRow`], [`Request::Stats`], or the `*_at` methods on
//!   [`Engine`]/[`Client`]): a pinned read answers against exactly that
//!   retained epoch — time-travel — no matter how many writes have
//!   landed since. Repeated reads of the same pinned epoch are
//!   byte-identical for as long as the epoch is retained. A pin outside
//!   the retained ring (evicted *or* not yet published) fails with the
//!   typed [`ServeError::EpochEvicted`] ([`ErrorCode::EpochEvicted`] =
//!   13) naming the retained range, so clients can re-pin. Retention is
//!   cheap: consecutive epochs share every [`ShardBlock`] their batch
//!   did not dirty.
//! * **[`BackpressurePolicy`]** — a bound on update batches in flight
//!   per graph. Writers that outpace publication are rejected up front
//!   with [`ServeError::Overloaded`] ([`ErrorCode::Overloaded`] = 14)
//!   *before* taking any lock, instead of queueing unboundedly on the
//!   writer mutex; the batch is guaranteed unapplied (and, on a durable
//!   registry, unlogged), so the caller can simply retry. Reads are
//!   never back-pressured. [`Registry::hold_write_slot`] reserves a
//!   slot as a write fence for maintenance windows.
//!
//! `tests/concurrency.rs` stress-tests both policies under concurrent
//! writers and readers, and `tests/cow_property.rs` property-tests that
//! CoW-published epochs are element-wise identical to from-scratch
//! rebuilds with exactly the untouched blocks shared.
//!
//! # Approximate search (IVF)
//!
//! `Similar` and `Classify` are exact shard-parallel scans by default —
//! O(n) per query, which stops holding up at millions of vertices. A
//! registry configured with [`SearchPolicy::Ann`] (or a request carrying
//! a `search` override — protocol v3, additive) answers from per-shard
//! **IVF indexes** instead ([`index`], [`IvfIndex`]): each
//! [`ShardBlock`] lazily builds and caches a k-means coarse quantizer
//! over its own rows, and a query ranks every shard's centroids in one
//! global ordering and scans only the `nprobe` nearest inverted lists.
//! The trade-off dial is explicit: more probes → higher recall, more
//! work; the `refine` factor sets a minimum candidate pool
//! (`refine × top`); and probing everything *equals* the exact scan,
//! ties included, because candidates are ranked by the same
//! `(distance, id)` total order. Guard rails keep approximation honest:
//! shards under [`ANN_MIN_SHARD_ROWS`] rows and queries whose `top`/`k`
//! covers the pool **fall back to the exact scan automatically**, and
//! [`SearchPolicy::Exact`] per request (`gee query --exact`) is the
//! escape hatch no server configuration can override. Because CoW
//! publication shares clean blocks between epochs, an update batch
//! re-indexes only the shards it dirtied — clean shards carry the parent
//! epoch's cached index (`Arc::ptr_eq`-provable), and a pinned epoch's
//! ANN answers are frozen for as long as it is retained. The build is
//! deterministic in block content, so crash recovery reproduces the same
//! index structure and the same ANN answers. `tests/ann_recall.rs`
//! measures recall@top against the exact oracle across graphs, shard
//! counts, and `nprobe` budgets; `serve_throughput` reports exact-vs-ANN
//! q/s **with** measured recall.
//!
//! # Durability
//!
//! A registry opened with [`Durability::Wal`] survives process death.
//! Every mutation is committed to an append-only, CRC-checksummed
//! **write-ahead log** ([`wal`] documents the exact record layout —
//! magic `GEEWAL1\0`, version 1, length-prefixed frames) *before*
//! in-memory state changes; every N batches the complete writer state is
//! captured in an atomically-renamed **checkpoint** ([`checkpoint`]) and
//! the covered WAL segments are retired. Recovery
//! ([`Registry::open`]/[`Engine::open`]) loads the latest checkpoint,
//! truncates a torn tail left by a crash mid-append, replays the WAL
//! tail, and arrives at snapshots **bit-identical** to the pre-crash
//! process — `tests/durability.rs` is a reusable crash harness (fault
//! injection at every byte offset, flipped bytes, stray segments) that
//! proves it on encoded wire frames. Damaged durable state is a typed
//! [`ServeError::Corrupt`] ([`ErrorCode::Corrupt`] = 11), storage I/O
//! failure a [`ServeError::Storage`] (12); recovery never panics. See
//! `examples/durable_serving.rs` and the `durability_overhead` bench
//! binary, and `gee serve --data-dir` / `gee recover` on the command
//! line.
//!
//! ## Group commit
//!
//! [`SyncPolicy`] picks the commit point on the WAL:
//! [`SyncPolicy::Always`] fsyncs inside every append — each batch pays
//! the full disk round trip — while [`SyncPolicy::Never`] leaves
//! flushing to the OS. [`SyncPolicy::Group`] (`gee serve --sync group`)
//! is the middle ground for concurrent writers: a committing batch
//! appends under the log lock, releases it, and then waits for a
//! **shared fsync**. The first waiter with no sync in flight becomes
//! the leader — it sleeps out the configured window collecting
//! arrivals, samples the log's high water, and issues one fsync *with
//! the log lock released*, so other writers keep appending (and queue
//! for the next sync) while the disk works. Every waiter below the
//! sampled high water is acknowledged by that single fsync; the
//! durability guarantee is unchanged (no batch is acknowledged before
//! an fsync covers it — only the fsync is shared). The coalescing is
//! observable as the protocol-v4 `wal_fsyncs` metric staying far below
//! the committed batch count, and the `durability_overhead` bench's
//! group-commit phase measures the throughput win at 8 writers.
//!
//! # Replication
//!
//! The WAL doubles as a replication stream ([`replicate`]): a durable
//! **leader** exposes a [`ReplicationListener`] that ships committed WAL
//! records — CRC-framed, LSN-addressed — to any number of
//! **followers**, each a [`Follower`] opened with its own
//! [`Durability::Wal`] directory (`gee serve --follow <addr>` on the
//! command line). A follower persists every shipped record through its
//! own WAL before replaying it through the same dirty-tracking apply
//! path the leader ran, so every published epoch on the follower is
//! **fingerprint-identical** to the leader's — epoch-pinned reads answer
//! byte-for-byte the same on either node. A follower that requests
//! history behind the leader's compaction horizon is bootstrapped from
//! the leader's latest checkpoint first. Followers serve all reads
//! (pins, ANN policies, `Stats`/`Metrics`) while trailing, reject writes
//! with the typed [`ServeError::ReadOnlyReplica`]
//! ([`ErrorCode::ReadOnlyReplica`] = 15), reconnect with backoff, and
//! resume from their durable high-water LSN after a crash. Replication
//! lag (epochs and LSNs) and shipped-record counters surface through the
//! additive `replication` block of [`GraphReport`]/[`MetricsReport`]
//! (protocol v5). `tests/replication.rs` proves convergence under
//! concurrent writer churn; `tests/replication_frames.rs` fuzzes the
//! stream framing and injects torn/bit-flipped streams.
//!
//! ## Promotion & fencing
//!
//! When a leader dies, any follower can take over:
//! [`Follower::promote`] stops the pull loop at the durable high water,
//! durably bumps the **leader epoch** — a monotonically increasing
//! fencing token persisted in the data dir and carried in every
//! replication handshake and heartbeat (stream v2) — and flips the
//! registry writable, optionally warming a fresh [`ReplicationListener`]
//! so the surviving followers re-point and resume from their own LSNs
//! (`gee promote` on the command line). The epoch makes split brain
//! impossible: a follower rejects any leader advertising an epoch below
//! the highest it has durably seen, and a deposed leader greeted by a
//! follower that names a newer epoch **self-fences** — it stops shipping,
//! refuses writes, and both sides surface the typed
//! [`ServeError::StaleLeader`] ([`ErrorCode::StaleLeader`] = 16, with
//! `fenced: true` in the leader's `replication` report). What fencing
//! does *not* change: replication stays asynchronous, so writes the old
//! leader acknowledged but never shipped are lost on failover (the
//! quorum-ack follow-on in ROADMAP.md addresses that); promotion is
//! manual/operator-driven — there is no failure detector or election.
//!
//! ```
//! use std::sync::Arc;
//! use gee_core::Labels;
//! use gee_serve::{Engine, Envelope, Registry, Request, Response, Update};
//!
//! let sbm = gee_gen::sbm(&gee_gen::SbmParams::balanced(3, 40, 0.3, 0.02), 7);
//! let labels = Labels::from_options_with_k(&gee_gen::subsample_labels(&sbm.truth, 0.5, 1), 3);
//!
//! let registry = Arc::new(Registry::new(4)); // 4 shards
//! registry.register("social", &sbm.edges, &labels).unwrap();
//! let engine = Engine::new(registry);
//!
//! let answers = engine.execute_batch(vec![
//!     Envelope::new("social", Request::classify(vec![0, 1, 2], 5)),
//!     Envelope::new("social", Request::ApplyUpdates {
//!         updates: vec![Update::InsertEdge { u: 0, v: 1, w: 1.0 }],
//!     }),
//!     Envelope::new("social", Request::similar(0, 3)),
//! ]);
//! assert!(answers.iter().all(Result::is_ok));
//! # if let Ok(Response::Classes(c)) = &answers[0] { assert_eq!(c.len(), 3); }
//! ```

use serde::{Deserialize, Serialize};

pub mod checkpoint;
pub mod client;
pub mod codec;
pub mod engine;
pub mod index;
pub mod metrics;
pub(crate) mod poller;
pub mod registry;
pub mod replicate;
pub mod server;
pub mod shard;
pub mod snapshot;
pub mod transport;
pub mod wal;
pub mod wire;

pub use client::Client;
pub use codec::FrameCodec;
pub use engine::{Engine, Envelope, GraphReport, Request, Response};
pub use index::{IvfIndex, SearchPolicy, ANN_MIN_SHARD_ROWS};
pub use metrics::{HistogramReport, MetricsReport, ReplicationReport, ReplicationRole};
pub use registry::{
    BackpressurePolicy, HistoryPolicy, Registry, RegistryConfig, Update, WriteSlot,
};
pub use replicate::{Follower, Promotion, ReplicationListener};
pub use server::{Server, ServerHandle};
pub use shard::ShardLayout;
pub use snapshot::{ShardBlock, Snapshot};
pub use transport::{duplex, DuplexTransport, TcpTransport, Transport};
pub use wal::{Durability, FaultPoint, SyncPolicy};
pub use wire::{ClientFrame, ServerFrame, PROTOCOL_VERSION};

/// Errors a serving request can produce.
///
/// Every variant is part of the versioned wire contract: it serializes
/// with serde's externally-tagged encoding and maps to a stable numeric
/// [`ErrorCode`], so remote clients get the same typed failures as
/// in-process callers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServeError {
    /// No graph registered under this name.
    UnknownGraph { graph: String },
    /// A vertex id at or beyond the graph's vertex count.
    VertexOutOfRange { vertex: u32, num_vertices: usize },
    /// A class label at or beyond the registered `K`.
    ClassOutOfRange { class: u32, num_classes: usize },
    /// A count parameter (`k`, `top`, …) that must be >= 1 was 0.
    ZeroLimit { param: String },
    /// `Classify` against a graph whose train set is empty.
    NoLabeledVertices { graph: String },
    /// A numeric parameter that must be finite was NaN or infinite
    /// (e.g. an update weight — JSON cannot carry non-finite values, and
    /// a NaN weight would poison every distance computation).
    NonFinite { param: String },
    /// A batch's encoded response exceeded the frame-size cap; resend as
    /// smaller batches. The request itself was valid — every result slot
    /// of the batch carries this error and the connection stays open.
    ResponseTooLarge { bytes: usize, max_bytes: usize },
    /// Handshake failure: no protocol version in the client's range is
    /// supported by the server.
    VersionUnsupported {
        client_min: u32,
        client_max: u32,
        server_min: u32,
        server_max: u32,
    },
    /// The peer violated the wire protocol (malformed frame, oversized
    /// frame, missing handshake, out-of-order response, …).
    Protocol { detail: String },
    /// The underlying transport failed (connection reset, closed pipe).
    Transport { detail: String },
    /// Durable state failed validation during recovery: a WAL segment or
    /// checkpoint with a checksum mismatch, an undecodable record,
    /// segments that do not tile the LSN space, or history that was
    /// retired without a covering checkpoint. Recovery refuses to guess —
    /// it reports exactly what is damaged and where.
    Corrupt { path: String, detail: String },
    /// Durable storage I/O failed (WAL append, fsync, checkpoint write,
    /// directory scan). With [`SyncPolicy::Always`] an update batch that
    /// returns this error was *not* committed.
    Storage { detail: String },
    /// An `at_epoch`-pinned read named an epoch outside the graph's
    /// retained history ring — either evicted (older than `oldest`) or
    /// not yet published (newer than `newest`). Retention is set by
    /// [`HistoryPolicy`]; re-issue without `at_epoch` for the newest
    /// state.
    EpochEvicted {
        graph: String,
        epoch: u64,
        oldest: u64,
        newest: u64,
    },
    /// An update batch was rejected by back-pressure: the graph already
    /// has [`BackpressurePolicy::max_pending_batches`] batches in
    /// flight. The batch was **not** applied (and not WAL-logged);
    /// retry later or batch coarser.
    Overloaded {
        graph: String,
        pending: usize,
        max_pending: usize,
    },
    /// A write (`ApplyUpdates`, `register`, `deregister`) was sent to a
    /// read-only replica. Replicas apply mutations only through the
    /// replication stream from their leader ([`replicate`]); direct
    /// writes must go to the leader named here.
    ReadOnlyReplica { graph: String, leader: String },
    /// The leader epoch (replication fencing token) `leader_epoch` is
    /// stale: a peer proved epoch `seen_epoch` (higher) exists. A
    /// deposed leader returns this for writes after it is fenced; a
    /// follower returns it to a deposed leader's replication stream
    /// before applying anything. See [`replicate`] on promotion.
    StaleLeader { leader_epoch: u64, seen_epoch: u64 },
}

impl ServeError {
    pub(crate) fn protocol(detail: impl Into<String>) -> ServeError {
        ServeError::Protocol {
            detail: detail.into(),
        }
    }

    pub(crate) fn transport(detail: impl Into<String>) -> ServeError {
        ServeError::Transport {
            detail: detail.into(),
        }
    }

    pub(crate) fn storage(detail: impl Into<String>) -> ServeError {
        ServeError::Storage {
            detail: detail.into(),
        }
    }

    /// The stable error code for this error.
    pub fn code(&self) -> ErrorCode {
        match self {
            ServeError::UnknownGraph { .. } => ErrorCode::UnknownGraph,
            ServeError::VertexOutOfRange { .. } => ErrorCode::VertexOutOfRange,
            ServeError::ClassOutOfRange { .. } => ErrorCode::ClassOutOfRange,
            ServeError::ZeroLimit { .. } => ErrorCode::ZeroLimit,
            ServeError::NoLabeledVertices { .. } => ErrorCode::NoLabeledVertices,
            ServeError::NonFinite { .. } => ErrorCode::NonFinite,
            ServeError::ResponseTooLarge { .. } => ErrorCode::ResponseTooLarge,
            ServeError::VersionUnsupported { .. } => ErrorCode::VersionUnsupported,
            ServeError::Protocol { .. } => ErrorCode::Protocol,
            ServeError::Transport { .. } => ErrorCode::Transport,
            ServeError::Corrupt { .. } => ErrorCode::Corrupt,
            ServeError::Storage { .. } => ErrorCode::Storage,
            ServeError::EpochEvicted { .. } => ErrorCode::EpochEvicted,
            ServeError::Overloaded { .. } => ErrorCode::Overloaded,
            ServeError::ReadOnlyReplica { .. } => ErrorCode::ReadOnlyReplica,
            ServeError::StaleLeader { .. } => ErrorCode::StaleLeader,
        }
    }
}

/// Stable numeric identifiers for [`ServeError`] variants — the wire
/// contract clients may branch on. Values are append-only: a code is
/// never renumbered or reused once a protocol version has shipped it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorCode {
    UnknownGraph,
    VertexOutOfRange,
    ClassOutOfRange,
    ZeroLimit,
    NoLabeledVertices,
    VersionUnsupported,
    Protocol,
    Transport,
    NonFinite,
    ResponseTooLarge,
    Corrupt,
    Storage,
    EpochEvicted,
    Overloaded,
    ReadOnlyReplica,
    StaleLeader,
}

impl ErrorCode {
    /// The stable numeric code.
    pub const fn as_u16(self) -> u16 {
        match self {
            ErrorCode::UnknownGraph => 1,
            ErrorCode::VertexOutOfRange => 2,
            ErrorCode::ClassOutOfRange => 3,
            ErrorCode::ZeroLimit => 4,
            ErrorCode::NoLabeledVertices => 5,
            ErrorCode::VersionUnsupported => 6,
            ErrorCode::Protocol => 7,
            ErrorCode::Transport => 8,
            ErrorCode::NonFinite => 9,
            ErrorCode::ResponseTooLarge => 10,
            ErrorCode::Corrupt => 11,
            ErrorCode::Storage => 12,
            ErrorCode::EpochEvicted => 13,
            ErrorCode::Overloaded => 14,
            ErrorCode::ReadOnlyReplica => 15,
            ErrorCode::StaleLeader => 16,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownGraph { graph } => write!(f, "unknown graph {graph:?}"),
            ServeError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => {
                write!(
                    f,
                    "vertex {vertex} out of range (graph has {num_vertices} vertices)"
                )
            }
            ServeError::ClassOutOfRange { class, num_classes } => {
                write!(f, "class {class} out of range (graph has K={num_classes})")
            }
            ServeError::ZeroLimit { param } => {
                write!(f, "parameter {param:?} must be at least 1")
            }
            ServeError::NoLabeledVertices { graph } => {
                write!(
                    f,
                    "graph {graph:?} has no labeled vertices to classify against"
                )
            }
            ServeError::VersionUnsupported {
                client_min,
                client_max,
                server_min,
                server_max,
            } => {
                write!(
                    f,
                    "no common protocol version: client supports {client_min}..={client_max}, \
                     server supports {server_min}..={server_max}"
                )
            }
            ServeError::NonFinite { param } => {
                write!(
                    f,
                    "parameter {param:?} must be finite (got NaN or infinity)"
                )
            }
            ServeError::ResponseTooLarge { bytes, max_bytes } => {
                write!(
                    f,
                    "encoded response is {bytes} bytes (max {max_bytes}); resend as smaller batches"
                )
            }
            ServeError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
            ServeError::Transport { detail } => write!(f, "transport failure: {detail}"),
            ServeError::Corrupt { path, detail } => {
                write!(f, "durable state corrupt at {path}: {detail}")
            }
            ServeError::Storage { detail } => write!(f, "durable storage failure: {detail}"),
            ServeError::EpochEvicted {
                graph,
                epoch,
                oldest,
                newest,
            } => {
                write!(
                    f,
                    "epoch {epoch} of graph {graph:?} is not retained \
                     (history holds {oldest}..={newest})"
                )
            }
            ServeError::Overloaded {
                graph,
                pending,
                max_pending,
            } => {
                write!(
                    f,
                    "graph {graph:?} is overloaded: {pending} update batch(es) already in \
                     flight (max {max_pending}); retry later"
                )
            }
            ServeError::ReadOnlyReplica { graph, leader } => {
                write!(
                    f,
                    "graph {graph:?} is served by a read-only replica; \
                     send writes to the leader at {leader}"
                )
            }
            ServeError::StaleLeader {
                leader_epoch,
                seen_epoch,
            } => {
                write!(
                    f,
                    "leader epoch {leader_epoch} is stale: a newer leader at \
                     epoch {seen_epoch} exists (this node is fenced)"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_are_stable() {
        // The wire contract: these numbers must never change.
        let expected: [(ErrorCode, u16); 16] = [
            (ErrorCode::UnknownGraph, 1),
            (ErrorCode::VertexOutOfRange, 2),
            (ErrorCode::ClassOutOfRange, 3),
            (ErrorCode::ZeroLimit, 4),
            (ErrorCode::NoLabeledVertices, 5),
            (ErrorCode::VersionUnsupported, 6),
            (ErrorCode::Protocol, 7),
            (ErrorCode::Transport, 8),
            (ErrorCode::NonFinite, 9),
            (ErrorCode::ResponseTooLarge, 10),
            (ErrorCode::Corrupt, 11),
            (ErrorCode::Storage, 12),
            (ErrorCode::EpochEvicted, 13),
            (ErrorCode::Overloaded, 14),
            (ErrorCode::ReadOnlyReplica, 15),
            (ErrorCode::StaleLeader, 16),
        ];
        for (code, n) in expected {
            assert_eq!(code.as_u16(), n, "{code:?}");
        }
    }

    #[test]
    fn every_error_maps_to_its_code() {
        let cases = [
            (
                ServeError::UnknownGraph { graph: "g".into() },
                ErrorCode::UnknownGraph,
            ),
            (
                ServeError::VertexOutOfRange {
                    vertex: 9,
                    num_vertices: 3,
                },
                ErrorCode::VertexOutOfRange,
            ),
            (
                ServeError::ClassOutOfRange {
                    class: 9,
                    num_classes: 3,
                },
                ErrorCode::ClassOutOfRange,
            ),
            (
                ServeError::ZeroLimit { param: "k".into() },
                ErrorCode::ZeroLimit,
            ),
            (
                ServeError::NoLabeledVertices { graph: "g".into() },
                ErrorCode::NoLabeledVertices,
            ),
            (
                ServeError::VersionUnsupported {
                    client_min: 2,
                    client_max: 3,
                    server_min: 1,
                    server_max: 1,
                },
                ErrorCode::VersionUnsupported,
            ),
            (ServeError::protocol("x"), ErrorCode::Protocol),
            (ServeError::transport("x"), ErrorCode::Transport),
            (
                ServeError::NonFinite { param: "w".into() },
                ErrorCode::NonFinite,
            ),
            (
                ServeError::ResponseTooLarge {
                    bytes: 99,
                    max_bytes: 9,
                },
                ErrorCode::ResponseTooLarge,
            ),
            (
                ServeError::Corrupt {
                    path: "wal-0.log".into(),
                    detail: "x".into(),
                },
                ErrorCode::Corrupt,
            ),
            (ServeError::storage("x"), ErrorCode::Storage),
            (
                ServeError::EpochEvicted {
                    graph: "g".into(),
                    epoch: 1,
                    oldest: 3,
                    newest: 7,
                },
                ErrorCode::EpochEvicted,
            ),
            (
                ServeError::Overloaded {
                    graph: "g".into(),
                    pending: 4,
                    max_pending: 4,
                },
                ErrorCode::Overloaded,
            ),
            (
                ServeError::ReadOnlyReplica {
                    graph: "g".into(),
                    leader: "10.0.0.1:7070".into(),
                },
                ErrorCode::ReadOnlyReplica,
            ),
            (
                ServeError::StaleLeader {
                    leader_epoch: 1,
                    seen_epoch: 2,
                },
                ErrorCode::StaleLeader,
            ),
        ];
        for (err, code) in cases {
            assert_eq!(err.code(), code, "{err}");
        }
    }
}
